"""GGM computation-tree helpers shared by DPF evaluation strategies.

The paper (§3.2, Fig. 6) evaluates the DPF through a Goldreich-Goldwasser-
Micali (GGM) binary tree: every node holds a 128-bit seed and a control bit,
and expanding a node with the length-doubling PRG yields its two children.
Correction words (one per level, part of the DPF key) are conditionally mixed
into the children depending on the parent's control bit.

This module provides the vectorised "expand one level" primitive that the
correction-word DPF (:mod:`repro.dpf.dpf`) and the traversal strategies
(:mod:`repro.dpf.traversal`) both build on, plus a small :class:`GGMTree`
convenience used in tests and analysis to reason about node counts and depths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.dpf.prf import SEED_BYTES, LengthDoublingPRG


@dataclass(frozen=True)
class CorrectionWord:
    """Per-level correction word of the correction-word DPF.

    Attributes
    ----------
    seed:
        16-byte seed correction XORed into a child when the parent's control
        bit is set.
    t_left, t_right:
        Control-bit corrections for the left and right child respectively.
    """

    seed: bytes
    t_left: int
    t_right: int

    def __post_init__(self) -> None:
        if len(self.seed) != SEED_BYTES:
            raise ValueError("correction word seed must be 16 bytes")
        if self.t_left not in (0, 1) or self.t_right not in (0, 1):
            raise ValueError("control-bit corrections must be 0 or 1")

    def seed_array(self) -> np.ndarray:
        """The seed correction as a ``(16,)`` uint8 array."""
        return np.frombuffer(self.seed, dtype=np.uint8)


def expand_level(
    prg: LengthDoublingPRG,
    seeds: np.ndarray,
    control_bits: np.ndarray,
    correction: CorrectionWord,
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand one GGM level for a batch of nodes.

    Parameters
    ----------
    prg:
        Length-doubling PRG backend.
    seeds:
        ``(m, 16)`` uint8 array holding the seeds of ``m`` sibling-ordered
        nodes at the current level.
    control_bits:
        ``(m,)`` uint8 array of the nodes' control bits.
    correction:
        The level's correction word from the DPF key.

    Returns
    -------
    (child_seeds, child_bits):
        ``(2m, 16)`` and ``(2m,)`` arrays with children interleaved as
        ``[node0.left, node0.right, node1.left, node1.right, ...]`` so that
        leaf order equals natural index order when bits are consumed MSB
        first.
    """
    seeds = np.ascontiguousarray(seeds, dtype=np.uint8)
    control_bits = np.ascontiguousarray(control_bits, dtype=np.uint8)
    if seeds.ndim != 2 or seeds.shape[1] != SEED_BYTES:
        raise ValueError("seeds must have shape (m, 16)")
    if control_bits.shape != (seeds.shape[0],):
        raise ValueError("control_bits must have shape (m,)")

    left, right, t_left, t_right = prg.expand(seeds)

    mask = control_bits.astype(bool)
    if mask.any():
        cw_seed = correction.seed_array()
        left[mask] ^= cw_seed
        right[mask] ^= cw_seed
        t_left = t_left.copy()
        t_right = t_right.copy()
        t_left[mask] ^= np.uint8(correction.t_left)
        t_right[mask] ^= np.uint8(correction.t_right)

    count = seeds.shape[0]
    child_seeds = np.empty((2 * count, SEED_BYTES), dtype=np.uint8)
    child_bits = np.empty(2 * count, dtype=np.uint8)
    child_seeds[0::2] = left
    child_seeds[1::2] = right
    child_bits[0::2] = t_left
    child_bits[1::2] = t_right
    return child_seeds, child_bits


def expand_level_many(
    prg: LengthDoublingPRG,
    seeds: np.ndarray,
    control_bits: np.ndarray,
    corrections: Sequence[CorrectionWord],
    nodes_per_key: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand one GGM level for several keys' node fronts in one PRG sweep.

    The fronts are stacked key-major: key ``i``'s ``nodes_per_key`` sibling-
    ordered nodes occupy rows ``[i * nodes_per_key, (i+1) * nodes_per_key)``
    of ``seeds``/``control_bits``, and ``corrections[i]`` is that key's
    correction word for this level.  One :meth:`prg.expand` call covers every
    node of every key (``B x 2^level`` seeds instead of ``2^level`` seeds
    ``B`` times), with each key's correction broadcast over its rows.

    Children come back key-major with the same sibling interleave as
    :func:`expand_level`, so each key's slice of the output is bit-identical
    to expanding that key alone.
    """
    seeds = np.ascontiguousarray(seeds, dtype=np.uint8)
    control_bits = np.ascontiguousarray(control_bits, dtype=np.uint8)
    num_keys = len(corrections)
    if nodes_per_key <= 0:
        raise ValueError("nodes_per_key must be positive")
    if seeds.ndim != 2 or seeds.shape[1] != SEED_BYTES:
        raise ValueError("seeds must have shape (m, 16)")
    if seeds.shape[0] != num_keys * nodes_per_key:
        raise ValueError(
            f"seeds hold {seeds.shape[0]} nodes, expected "
            f"{num_keys} keys x {nodes_per_key} nodes"
        )
    if control_bits.shape != (seeds.shape[0],):
        raise ValueError("control_bits must have shape (m,)")

    left, right, t_left, t_right = prg.expand(seeds)

    if control_bits.any():
        # The fronts are key-major and contiguous, so a reshape exposes the
        # (key, node) structure and one broadcast XOR applies every key's
        # correction at once: ``control_bits`` gates each node (0 or 1) and
        # multiplying it into the per-key correction rows zeroes the rows of
        # unset nodes.  No per-key Python loop, no masked gather/scatter —
        # those dominate the level cost once fronts hold thousands of nodes.
        cw_seeds = np.stack([word.seed_array() for word in corrections])
        t_left_cw = np.fromiter(
            (word.t_left for word in corrections), dtype=np.uint8, count=num_keys
        )
        t_right_cw = np.fromiter(
            (word.t_right for word in corrections), dtype=np.uint8, count=num_keys
        )
        gate = control_bits.reshape(num_keys, nodes_per_key, 1)
        seed_correction = gate * cw_seeds[:, None, :]
        left.reshape(num_keys, nodes_per_key, SEED_BYTES)[...] ^= seed_correction
        right.reshape(num_keys, nodes_per_key, SEED_BYTES)[...] ^= seed_correction
        t_left = t_left.copy()
        t_right = t_right.copy()
        bit_gate = control_bits.reshape(num_keys, nodes_per_key)
        t_left.reshape(num_keys, nodes_per_key)[...] ^= bit_gate * t_left_cw[:, None]
        t_right.reshape(num_keys, nodes_per_key)[...] ^= bit_gate * t_right_cw[:, None]

    count = seeds.shape[0]
    child_seeds = np.empty((2 * count, SEED_BYTES), dtype=np.uint8)
    child_bits = np.empty(2 * count, dtype=np.uint8)
    child_seeds[0::2] = left
    child_seeds[1::2] = right
    child_bits[0::2] = t_left
    child_bits[1::2] = t_right
    return child_seeds, child_bits


def descend_one(
    prg: LengthDoublingPRG,
    seed: np.ndarray,
    control_bit: int,
    correction: CorrectionWord,
    direction: int,
) -> Tuple[np.ndarray, int]:
    """Expand a single node and keep only one child.

    ``direction`` is 0 for the left child and 1 for the right child.  Used by
    the branch-parallel and memory-bounded traversals, which walk single paths
    rather than whole levels.
    """
    if direction not in (0, 1):
        raise ValueError("direction must be 0 (left) or 1 (right)")
    seeds = np.ascontiguousarray(seed, dtype=np.uint8).reshape(1, SEED_BYTES)
    bits = np.asarray([control_bit], dtype=np.uint8)
    child_seeds, child_bits = expand_level(prg, seeds, bits, correction)
    index = direction
    return child_seeds[index].copy(), int(child_bits[index])


@dataclass
class GGMTree:
    """Shape of the GGM computation tree for a domain of ``2**depth`` leaves.

    The class does not hold node values; it answers structural questions the
    paper's parallelisation discussion relies on (how many nodes a level has,
    how many PRG calls a traversal performs, how much memory a level needs).
    """

    depth: int

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise ValueError("depth must be non-negative")

    @property
    def num_leaves(self) -> int:
        """Number of leaves (domain size)."""
        return 1 << self.depth

    @property
    def num_internal_nodes(self) -> int:
        """Number of non-leaf nodes."""
        return (1 << self.depth) - 1

    @property
    def num_nodes(self) -> int:
        """Total node count including leaves."""
        return (1 << (self.depth + 1)) - 1

    def nodes_at_level(self, level: int) -> int:
        """Number of nodes at ``level`` (0 is the root)."""
        if not 0 <= level <= self.depth:
            raise ValueError(f"level must be in [0, {self.depth}]")
        return 1 << level

    def level_memory_bytes(self, level: int, per_node_bytes: int = SEED_BYTES + 1) -> int:
        """Bytes required to materialise all nodes of ``level``."""
        return self.nodes_at_level(level) * per_node_bytes

    def prg_calls_level_by_level(self) -> int:
        """PRG expansions for a full level-by-level traversal (one per internal node)."""
        return self.num_internal_nodes

    def prg_calls_branch_parallel(self) -> int:
        """PRG expansions when every leaf path is recomputed independently."""
        return self.num_leaves * self.depth

    def prg_calls_memory_bounded(self, chunk_leaves: int) -> int:
        """PRG expansions for the memory-bounded traversal with ``chunk_leaves``-leaf chunks."""
        if chunk_leaves <= 0:
            raise ValueError("chunk_leaves must be positive")
        chunk_leaves = min(chunk_leaves, self.num_leaves)
        chunk_depth = max(0, (chunk_leaves - 1).bit_length())
        descent_depth = self.depth - chunk_depth
        num_chunks = -(-self.num_leaves // chunk_leaves)
        per_chunk_internal = (1 << chunk_depth) - 1
        return num_chunks * (descent_depth + per_chunk_internal)
