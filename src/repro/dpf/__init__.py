"""Distributed point functions: PRF/PRG backends, GGM tree, DPF, traversals."""

from repro.dpf.dpf import DPF, DPFKey, EvalStats, verify_keys
from repro.dpf.ggm import CorrectionWord, GGMTree, descend_one, expand_level
from repro.dpf.naive import NaiveShare, NaiveXorQueryScheme, xor_select
from repro.dpf.prf import (
    BLOCKS_PER_EXPAND,
    SEED_BYTES,
    AESPRG,
    LengthDoublingPRG,
    NumpyPRG,
    aes128_encrypt_block,
    make_prg,
)
from repro.dpf.traversal import (
    BranchParallelTraversal,
    LevelByLevelTraversal,
    MemoryBoundedTraversal,
    TraversalStats,
    TraversalStrategy,
    available_strategies,
    make_traversal,
)

__all__ = [
    "DPF",
    "DPFKey",
    "EvalStats",
    "verify_keys",
    "CorrectionWord",
    "GGMTree",
    "descend_one",
    "expand_level",
    "NaiveShare",
    "NaiveXorQueryScheme",
    "xor_select",
    "BLOCKS_PER_EXPAND",
    "SEED_BYTES",
    "AESPRG",
    "LengthDoublingPRG",
    "NumpyPRG",
    "aes128_encrypt_block",
    "make_prg",
    "BranchParallelTraversal",
    "LevelByLevelTraversal",
    "MemoryBoundedTraversal",
    "TraversalStats",
    "TraversalStrategy",
    "available_strategies",
    "make_traversal",
]
