"""Two-party distributed point function (DPF) with correction words.

This is the construction of Boyle, Gilboa and Ishai (CCS'16) as deployed by
Google's ``distributed_point_functions`` library (the paper's CPU baseline)
and by Lam et al. (the GPU baseline): keys consist of a random root seed plus
one correction word per tree level and a final output correction word.  Each
key individually is pseudorandom and hides both the target index ``alpha`` and
the payload ``beta``; XORing the two parties' evaluations yields the point
function

    P(x) = beta  if x == alpha else 0.

The payload lives in the XOR group of ``output_bits``-bit strings (1 bit by
default, which is what the PIR selector vectors need; up to 64 bits are
supported so the same code covers payload-carrying DPFs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import KeyMismatchError
from repro.common.rng import make_rng
from repro.dpf.ggm import CorrectionWord, expand_level, expand_level_many
from repro.dpf.prf import SEED_BYTES, LengthDoublingPRG, make_prg

MAX_OUTPUT_BITS = 64


def _convert(seeds: np.ndarray, output_bits: int) -> np.ndarray:
    """Map seeds to elements of the output group (low ``output_bits`` bits).

    ``seeds`` is ``(m, 16)`` uint8; the result is ``(m,)`` uint64.
    """
    lanes = np.ascontiguousarray(seeds, dtype=np.uint8).view(np.uint64).reshape(-1, 2)
    values = lanes[:, 0]
    if output_bits >= 64:
        return values.copy()
    mask = np.uint64((1 << output_bits) - 1)
    return values & mask


@dataclass(frozen=True)
class DPFKey:
    """One party's DPF key.

    Attributes
    ----------
    party:
        0 or 1; evaluation is symmetric but the two keys differ.
    domain_bits:
        The domain is ``[0, 2**domain_bits)``.
    root_seed:
        This party's 16-byte root seed.
    correction_words:
        One :class:`~repro.dpf.ggm.CorrectionWord` per tree level.
    final_correction:
        Output-group correction applied at the leaves when the control bit is
        set.
    output_bits:
        Width of the payload group in bits (1..64).
    """

    party: int
    domain_bits: int
    root_seed: bytes
    correction_words: Tuple[CorrectionWord, ...]
    final_correction: int
    output_bits: int = 1

    def __post_init__(self) -> None:
        if self.party not in (0, 1):
            raise ValueError("party must be 0 or 1")
        if self.domain_bits < 0:
            raise ValueError("domain_bits must be non-negative")
        if len(self.root_seed) != SEED_BYTES:
            raise ValueError("root seed must be 16 bytes")
        if len(self.correction_words) != self.domain_bits:
            raise ValueError("need exactly one correction word per level")
        if not 1 <= self.output_bits <= MAX_OUTPUT_BITS:
            raise ValueError("output_bits must be in [1, 64]")

    @property
    def domain_size(self) -> int:
        """Number of points in the DPF domain."""
        return 1 << self.domain_bits

    @property
    def size_bytes(self) -> int:
        """Serialized key size: seed + per-level correction words + final word.

        Matches the paper's observation that keys are O(lambda * log N) — the
        quantity shipped from the client to each server.
        """
        per_level = SEED_BYTES + 2  # seed correction + two control-bit corrections
        return SEED_BYTES + 1 + len(self.correction_words) * per_level + 8

    def root_seed_array(self) -> np.ndarray:
        """Root seed as a ``(16,)`` uint8 array."""
        return np.frombuffer(self.root_seed, dtype=np.uint8)


@dataclass
class EvalStats:
    """Operation counts gathered during a full-domain evaluation."""

    prg_expansions: int = 0
    aes_block_equivalents: int = 0
    peak_nodes_in_memory: int = 0
    leaves_evaluated: int = 0

    def merge(self, other: "EvalStats") -> None:
        """Accumulate another stats object into this one."""
        self.prg_expansions += other.prg_expansions
        self.aes_block_equivalents += other.aes_block_equivalents
        self.peak_nodes_in_memory = max(self.peak_nodes_in_memory, other.peak_nodes_in_memory)
        self.leaves_evaluated += other.leaves_evaluated


class DPF:
    """Key generation and evaluation for the two-party correction-word DPF."""

    def __init__(
        self,
        domain_bits: int,
        output_bits: int = 1,
        prg: Optional[LengthDoublingPRG] = None,
        seed: Optional[int] = None,
    ) -> None:
        if domain_bits < 0:
            raise ValueError("domain_bits must be non-negative")
        if not 1 <= output_bits <= MAX_OUTPUT_BITS:
            raise ValueError("output_bits must be in [1, 64]")
        self.domain_bits = domain_bits
        self.output_bits = output_bits
        self.prg = prg if prg is not None else make_prg("numpy")
        self._rng = make_rng(seed)

    # -- key generation -----------------------------------------------------

    @property
    def domain_size(self) -> int:
        """Number of points in the DPF domain."""
        return 1 << self.domain_bits

    def gen(self, alpha: int, beta: int = 1) -> Tuple[DPFKey, DPFKey]:
        """Generate the two keys hiding the point function ``P_{alpha,beta}``.

        ``alpha`` must lie in the domain and ``beta`` must fit in
        ``output_bits`` bits (and be non-zero, otherwise the function is
        identically zero and reconstruction becomes ambiguous).
        """
        if not 0 <= alpha < self.domain_size:
            raise ValueError(f"alpha={alpha} outside domain of size {self.domain_size}")
        if beta == 0:
            raise ValueError("beta must be non-zero")
        if beta >= (1 << self.output_bits):
            raise ValueError(f"beta={beta} does not fit in {self.output_bits} bits")

        seed0 = self._rng.integers(0, 256, size=SEED_BYTES, dtype=np.uint8)
        seed1 = self._rng.integers(0, 256, size=SEED_BYTES, dtype=np.uint8)
        s = [seed0.copy(), seed1.copy()]
        t = [0, 1]

        correction_words: List[CorrectionWord] = []
        for level in range(self.domain_bits):
            bit = (alpha >> (self.domain_bits - 1 - level)) & 1
            expansions = []
            for b in (0, 1):
                left, right, t_left, t_right = self.prg.expand(s[b].reshape(1, SEED_BYTES))
                expansions.append((left[0], right[0], int(t_left[0]), int(t_right[0])))

            if bit == 0:
                keep, lose = "left", "right"
            else:
                keep, lose = "right", "left"

            def _part(b: int, side: str) -> Tuple[np.ndarray, int]:
                left, right, t_left, t_right = expansions[b]
                if side == "left":
                    return left, t_left
                return right, t_right

            s0_lose, _ = _part(0, lose)
            s1_lose, _ = _part(1, lose)
            seed_cw = (s0_lose ^ s1_lose).astype(np.uint8)

            _, t0_left = _part(0, "left")
            _, t1_left = _part(1, "left")
            _, t0_right = _part(0, "right")
            _, t1_right = _part(1, "right")
            t_left_cw = t0_left ^ t1_left ^ bit ^ 1
            t_right_cw = t0_right ^ t1_right ^ bit
            correction = CorrectionWord(seed_cw.tobytes(), t_left_cw, t_right_cw)
            correction_words.append(correction)

            t_keep_cw = t_left_cw if keep == "left" else t_right_cw
            for b in (0, 1):
                s_keep, t_keep = _part(b, keep)
                if t[b]:
                    s[b] = (s_keep ^ seed_cw).astype(np.uint8)
                    t[b] = t_keep ^ t_keep_cw
                else:
                    s[b] = s_keep.astype(np.uint8).copy()
                    t[b] = t_keep

        convert0 = int(_convert(s[0].reshape(1, SEED_BYTES), self.output_bits)[0])
        convert1 = int(_convert(s[1].reshape(1, SEED_BYTES), self.output_bits)[0])
        final_correction = convert0 ^ convert1 ^ beta

        keys = tuple(
            DPFKey(
                party=b,
                domain_bits=self.domain_bits,
                root_seed=(seed0 if b == 0 else seed1).tobytes(),
                correction_words=tuple(correction_words),
                final_correction=final_correction,
                output_bits=self.output_bits,
            )
            for b in (0, 1)
        )
        return keys[0], keys[1]

    # -- point evaluation ----------------------------------------------------

    def _check_key(self, key: DPFKey) -> None:
        if key.domain_bits != self.domain_bits or key.output_bits != self.output_bits:
            raise KeyMismatchError(
                "key parameters do not match this DPF instance "
                f"(key: {key.domain_bits} bits/{key.output_bits}-bit output, "
                f"instance: {self.domain_bits} bits/{self.output_bits}-bit output)"
            )

    def eval(self, key: DPFKey, x: int) -> int:
        """Evaluate one party's share at a single point ``x``."""
        self._check_key(key)
        if not 0 <= x < self.domain_size:
            raise ValueError(f"x={x} outside domain of size {self.domain_size}")

        seed = key.root_seed_array().copy()
        control = key.party
        for level in range(self.domain_bits):
            bit = (x >> (self.domain_bits - 1 - level)) & 1
            seeds, bits = expand_level(
                self.prg,
                seed.reshape(1, SEED_BYTES),
                np.asarray([control], dtype=np.uint8),
                key.correction_words[level],
            )
            seed = seeds[bit].copy()
            control = int(bits[bit])

        value = int(_convert(seed.reshape(1, SEED_BYTES), self.output_bits)[0])
        if control:
            value ^= key.final_correction
        return value

    def eval_points(self, key: DPFKey, points: Sequence[int]) -> np.ndarray:
        """Evaluate one party's share at several points (returns uint64 array)."""
        return np.asarray([self.eval(key, int(x)) for x in points], dtype=np.uint64)

    # -- full-domain evaluation ----------------------------------------------

    def eval_full(
        self,
        key: DPFKey,
        num_points: Optional[int] = None,
        stats: Optional[EvalStats] = None,
    ) -> np.ndarray:
        """Evaluate the share on the whole domain (level-by-level traversal).

        Returns a uint64 array of length ``num_points`` (default: the full
        domain).  This is the host-side "Eval" step of Algorithm 1; the
        strategies discussed in §3.2 are available through
        :mod:`repro.dpf.traversal`.
        """
        self._check_key(key)
        if num_points is None:
            num_points = self.domain_size
        if not 0 <= num_points <= self.domain_size:
            raise ValueError("num_points outside the DPF domain")

        before = self.prg.expand_calls
        seeds = key.root_seed_array().reshape(1, SEED_BYTES).copy()
        controls = np.asarray([key.party], dtype=np.uint8)
        peak_nodes = 1
        for level in range(self.domain_bits):
            seeds, controls = expand_level(self.prg, seeds, controls, key.correction_words[level])
            peak_nodes = max(peak_nodes, seeds.shape[0])

        values = _convert(seeds, self.output_bits)
        if controls.any():
            values = values ^ (controls.astype(np.uint64) * np.uint64(key.final_correction))
        values = values[:num_points]

        if stats is not None:
            expansions = self.prg.expand_calls - before
            stats.merge(
                EvalStats(
                    prg_expansions=expansions,
                    aes_block_equivalents=expansions * self.prg.blocks_per_expand,
                    peak_nodes_in_memory=peak_nodes,
                    leaves_evaluated=num_points,
                )
            )
        return values.astype(np.uint64, copy=False)

    def eval_full_many(
        self,
        keys: Sequence[DPFKey],
        num_points: Optional[int] = None,
        stats: Optional[EvalStats] = None,
    ) -> np.ndarray:
        """Evaluate several keys' shares over the whole domain in one sweep.

        The batched counterpart of :meth:`eval_full`: the ``B`` keys' node
        fronts are stacked key-major and every level runs through one
        :func:`~repro.dpf.ggm.expand_level_many` call, so the PRG sees
        ``B x 2^level`` seeds per level instead of ``2^level`` seeds ``B``
        times.  Returns a ``(B, num_points)`` uint64 matrix whose row ``i``
        is bit-identical to ``eval_full(keys[i], num_points)``.

        ``stats`` is charged exactly what ``B`` sequential evaluations
        charge: the PRG expansion counters are seed-counted (identical
        either way) and ``peak_nodes_in_memory`` keeps the per-key meaning
        (sequential calls max-merge to the same value) — batching is a
        wall-clock optimisation, not a cost-model change.
        """
        keys = list(keys)
        if not keys:
            raise ValueError("eval_full_many needs at least one key")
        for key in keys:
            self._check_key(key)
        if num_points is None:
            num_points = self.domain_size
        if not 0 <= num_points <= self.domain_size:
            raise ValueError("num_points outside the DPF domain")

        before = self.prg.expand_calls
        seeds = np.stack([key.root_seed_array() for key in keys])
        controls = np.asarray([key.party for key in keys], dtype=np.uint8)
        nodes_per_key = 1
        peak_nodes = 1
        for level in range(self.domain_bits):
            seeds, controls = expand_level_many(
                self.prg,
                seeds,
                controls,
                [key.correction_words[level] for key in keys],
                nodes_per_key,
            )
            nodes_per_key *= 2
            peak_nodes = max(peak_nodes, nodes_per_key)

        values = _convert(seeds, self.output_bits).reshape(len(keys), -1)
        controls = controls.reshape(len(keys), -1)
        if controls.any():
            finals = np.asarray(
                [key.final_correction for key in keys], dtype=np.uint64
            )
            values = values ^ (controls.astype(np.uint64) * finals[:, None])
        values = np.ascontiguousarray(values[:, :num_points])

        if stats is not None:
            expansions = self.prg.expand_calls - before
            stats.merge(
                EvalStats(
                    prg_expansions=expansions,
                    aes_block_equivalents=expansions * self.prg.blocks_per_expand,
                    peak_nodes_in_memory=peak_nodes,
                    leaves_evaluated=len(keys) * num_points,
                )
            )
        return values.astype(np.uint64, copy=False)

    def eval_full_bits(self, key: DPFKey, num_points: Optional[int] = None) -> np.ndarray:
        """Full-domain evaluation returned as a uint8 0/1 selector vector.

        Only valid for single-bit payloads; this is the representation shipped
        to the DPUs for the dpXOR stage.
        """
        if self.output_bits != 1:
            raise KeyMismatchError("selector vectors require a 1-bit output group")
        return self.eval_full(key, num_points=num_points).astype(np.uint8)


def verify_keys(dpf: DPF, key0: DPFKey, key1: DPFKey, alpha: int, beta: int = 1) -> bool:
    """Check that two keys reconstruct ``P_{alpha,beta}`` over the full domain.

    Intended for tests and examples; a real client never holds both keys of a
    deployed server pair.
    """
    full0 = dpf.eval_full(key0)
    full1 = dpf.eval_full(key1)
    combined = full0 ^ full1
    expected = np.zeros(dpf.domain_size, dtype=np.uint64)
    expected[alpha] = beta
    return bool(np.array_equal(combined, expected))
