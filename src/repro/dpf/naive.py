"""Naive additive-share query encoding (paper §2.3, Fig. 2).

Before introducing DPFs the paper describes the textbook two-server XOR-PIR
scheme: the client draws a uniformly random bit vector ``v1`` and sets
``v2 = v1 XOR e_i`` (the one-hot indicator of the desired index).  Each vector
individually is uniform, so neither server learns anything, but together they
reconstruct the indicator.  Communication is O(N) bits per server instead of
the DPF's O(lambda * log N); the scheme is kept here as a correctness oracle
for the DPF-based path and as the simplest possible example of the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.common.rng import make_rng


@dataclass(frozen=True)
class NaiveShare:
    """One server's share of a naive query: a dense 0/1 selector vector."""

    server_id: int
    bits: np.ndarray

    def __post_init__(self) -> None:
        bits = np.asarray(self.bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ValueError("share bits must be a 1-D vector")
        if not np.isin(bits, (0, 1)).all():
            raise ValueError("share bits must be 0/1")
        object.__setattr__(self, "bits", bits)

    @property
    def num_items(self) -> int:
        """Length of the selector vector (database size)."""
        return int(self.bits.shape[0])

    @property
    def size_bytes(self) -> int:
        """Upload size if bits were packed (one bit per database item)."""
        return (self.num_items + 7) // 8


class NaiveXorQueryScheme:
    """Generates and recombines naive additive shares for ``num_servers`` >= 2.

    For more than two servers the shares XOR to the indicator vector jointly;
    any ``num_servers - 1`` of them remain uniformly random, which is the
    standard t = n - 1 privacy threshold of XOR secret sharing.
    """

    def __init__(self, num_items: int, num_servers: int = 2, seed: Optional[int] = None) -> None:
        if num_items <= 0:
            raise ValueError("num_items must be positive")
        if num_servers < 2:
            raise ValueError("at least two servers are required")
        self.num_items = num_items
        self.num_servers = num_servers
        self._rng = make_rng(seed)

    def share(self, index: int) -> List[NaiveShare]:
        """Split the one-hot indicator of ``index`` into per-server shares."""
        if not 0 <= index < self.num_items:
            raise ValueError(f"index {index} out of range [0, {self.num_items})")
        shares = [
            self._rng.integers(0, 2, size=self.num_items, dtype=np.uint8)
            for _ in range(self.num_servers - 1)
        ]
        combined = np.zeros(self.num_items, dtype=np.uint8)
        for vector in shares:
            combined ^= vector
        last = combined.copy()
        last[index] ^= 1
        shares.append(last)
        return [NaiveShare(server_id=i, bits=bits) for i, bits in enumerate(shares)]

    @staticmethod
    def reconstruct_indicator(shares: List[NaiveShare]) -> np.ndarray:
        """XOR the shares back into the one-hot indicator (test/diagnostic use)."""
        if not shares:
            raise ValueError("need at least one share")
        combined = np.zeros(shares[0].num_items, dtype=np.uint8)
        for share in shares:
            if share.num_items != combined.shape[0]:
                raise ValueError("shares have mismatched lengths")
            combined ^= share.bits
        return combined

    @staticmethod
    def recover_index(shares: List[NaiveShare]) -> int:
        """Return the index encoded by ``shares`` (raises if not one-hot)."""
        indicator = NaiveXorQueryScheme.reconstruct_indicator(shares)
        positions = np.flatnonzero(indicator)
        if positions.size != 1:
            raise ValueError("shares do not reconstruct a one-hot indicator")
        return int(positions[0])


def xor_select(database: np.ndarray, selector_bits: np.ndarray) -> np.ndarray:
    """XOR together the database rows whose selector bit is 1.

    ``database`` is ``(N, record_size)`` uint8; ``selector_bits`` is ``(N,)``
    of 0/1.  This is the reference (single pass, numpy) implementation of the
    paper's ``dpXOR`` operation used by the naive scheme and by tests.
    """
    database = np.asarray(database, dtype=np.uint8)
    selector_bits = np.asarray(selector_bits, dtype=np.uint8)
    if database.ndim != 2:
        raise ValueError("database must be 2-D (records x bytes)")
    if selector_bits.shape != (database.shape[0],):
        raise ValueError("selector length must equal the number of records")
    selected = database[selector_bits.astype(bool)]
    if selected.size == 0:
        return np.zeros(database.shape[1], dtype=np.uint8)
    return np.bitwise_xor.reduce(selected, axis=0)
