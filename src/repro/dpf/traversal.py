"""Full-domain DPF evaluation strategies (paper §3.2, Fig. 7).

The paper contrasts three ways of evaluating every leaf of the GGM tree:

* **branch-parallel** — each worker recomputes the full root-to-leaf path of
  its leaves.  Maximally parallel and needs almost no shared state, but every
  level is recomputed once per leaf (``N * log N`` PRG calls) and the working
  set per worker is the whole path.  The paper rules it out for UPMEM DPUs
  because the per-DPU WRAM (64 KB) cannot hold the needed buffers.
* **level-by-level** — expand the tree breadth-first, keeping one whole level
  in memory (``N - 1`` PRG calls but ``O(N * lambda)`` intermediate memory and
  a synchronisation barrier per level).  On UPMEM this would require
  inter-DPU communication through the host, which the paper shows is
  prohibitive.
* **memory-bounded** — the hybrid used by Lam et al.: split the leaf range
  into fixed-size chunks, descend from the root to each chunk's subtree root,
  then expand that subtree level by level.  Memory is bounded by the chunk
  size at the cost of re-descending ``log(N / chunk)`` levels per chunk.

All three produce bit-identical outputs; they differ only in PRG-call count
and peak memory, which :class:`TraversalStats` captures so the trade-off can
be demonstrated quantitatively (see ``benchmarks/bench_ablation_traversal.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Type

import numpy as np

from repro.dpf.dpf import DPF, DPFKey, _convert
from repro.dpf.ggm import expand_level
from repro.dpf.prf import SEED_BYTES


@dataclass
class TraversalStats:
    """Cost profile of one full-domain evaluation."""

    prg_calls: int = 0
    peak_nodes_in_memory: int = 0
    leaves_evaluated: int = 0

    @property
    def peak_memory_bytes(self) -> int:
        """Approximate peak working-set size (seed + control bit per node)."""
        return self.peak_nodes_in_memory * (SEED_BYTES + 1)

    @property
    def redundancy_factor(self) -> float:
        """PRG calls relative to the level-by-level optimum (``leaves - 1``)."""
        optimum = max(1, self.leaves_evaluated - 1)
        return self.prg_calls / optimum


class TraversalStrategy:
    """Base class: evaluate a DPF key over the full domain, tracking costs."""

    name = "abstract"

    def eval_full(
        self,
        dpf: DPF,
        key: DPFKey,
        num_points: Optional[int] = None,
        stats: Optional[TraversalStats] = None,
    ) -> np.ndarray:
        """Return the uint64 share vector of length ``num_points``."""
        raise NotImplementedError

    def _finalize(
        self,
        dpf: DPF,
        key: DPFKey,
        seeds: np.ndarray,
        controls: np.ndarray,
    ) -> np.ndarray:
        """Convert leaf seeds/controls into output-group values."""
        values = _convert(seeds, dpf.output_bits)
        correction = np.uint64(key.final_correction)
        return (values ^ (controls.astype(np.uint64) * correction)).astype(np.uint64)


class LevelByLevelTraversal(TraversalStrategy):
    """Breadth-first expansion keeping one full level resident."""

    name = "level_by_level"

    def eval_full(
        self,
        dpf: DPF,
        key: DPFKey,
        num_points: Optional[int] = None,
        stats: Optional[TraversalStats] = None,
    ) -> np.ndarray:
        num_points = dpf.domain_size if num_points is None else num_points
        before = dpf.prg.expand_calls
        seeds = key.root_seed_array().reshape(1, SEED_BYTES).copy()
        controls = np.asarray([key.party], dtype=np.uint8)
        peak = 1
        for level in range(dpf.domain_bits):
            seeds, controls = expand_level(dpf.prg, seeds, controls, key.correction_words[level])
            peak = max(peak, seeds.shape[0])
        values = self._finalize(dpf, key, seeds, controls)[:num_points]
        if stats is not None:
            stats.prg_calls += dpf.prg.expand_calls - before
            stats.peak_nodes_in_memory = max(stats.peak_nodes_in_memory, peak)
            stats.leaves_evaluated += num_points
        return values


class BranchParallelTraversal(TraversalStrategy):
    """Recompute the root-to-leaf path independently for every leaf.

    The evaluation is vectorised across leaves per level, but unlike the
    level-by-level strategy every leaf carries its own copy of the path state,
    so the PRG is invoked once per (leaf, level) pair — the redundancy the
    paper points out.
    """

    name = "branch_parallel"

    def eval_full(
        self,
        dpf: DPF,
        key: DPFKey,
        num_points: Optional[int] = None,
        stats: Optional[TraversalStats] = None,
    ) -> np.ndarray:
        num_points = dpf.domain_size if num_points is None else num_points
        before = dpf.prg.expand_calls
        leaves = np.arange(num_points, dtype=np.uint64)
        seeds = np.repeat(key.root_seed_array().reshape(1, SEED_BYTES), num_points, axis=0).copy()
        controls = np.full(num_points, key.party, dtype=np.uint8)
        peak = num_points
        for level in range(dpf.domain_bits):
            child_seeds, child_controls = expand_level(
                dpf.prg, seeds, controls, key.correction_words[level]
            )
            bits = ((leaves >> np.uint64(dpf.domain_bits - 1 - level)) & np.uint64(1)).astype(np.int64)
            pick = np.arange(num_points, dtype=np.int64) * 2 + bits
            seeds = child_seeds[pick]
            controls = child_controls[pick]
            peak = max(peak, child_seeds.shape[0])
        values = self._finalize(dpf, key, seeds, controls)
        if stats is not None:
            stats.prg_calls += dpf.prg.expand_calls - before
            stats.peak_nodes_in_memory = max(stats.peak_nodes_in_memory, peak)
            stats.leaves_evaluated += num_points
        return values


class MemoryBoundedTraversal(TraversalStrategy):
    """Chunked traversal bounding peak memory to ``chunk_leaves`` nodes."""

    name = "memory_bounded"

    def __init__(self, chunk_leaves: int = 4096) -> None:
        if chunk_leaves <= 0:
            raise ValueError("chunk_leaves must be positive")
        if chunk_leaves & (chunk_leaves - 1):
            raise ValueError("chunk_leaves must be a power of two")
        self.chunk_leaves = chunk_leaves

    def eval_full(
        self,
        dpf: DPF,
        key: DPFKey,
        num_points: Optional[int] = None,
        stats: Optional[TraversalStats] = None,
    ) -> np.ndarray:
        num_points = dpf.domain_size if num_points is None else num_points
        before = dpf.prg.expand_calls
        chunk = min(self.chunk_leaves, dpf.domain_size)
        chunk_depth = chunk.bit_length() - 1
        descent_depth = dpf.domain_bits - chunk_depth

        output = np.zeros(num_points, dtype=np.uint64)
        peak = 0
        num_chunks = -(-num_points // chunk)
        for chunk_index in range(num_chunks):
            start = chunk_index * chunk
            stop = min(start + chunk, num_points)

            # Descend from the root to the chunk's subtree root along one path.
            seed = key.root_seed_array().copy()
            control = np.uint8(key.party)
            for level in range(descent_depth):
                bit = (chunk_index >> (descent_depth - 1 - level)) & 1
                child_seeds, child_controls = expand_level(
                    dpf.prg,
                    seed.reshape(1, SEED_BYTES),
                    np.asarray([control], dtype=np.uint8),
                    key.correction_words[level],
                )
                seed = child_seeds[bit].copy()
                control = child_controls[bit]

            # Expand the subtree level by level.
            seeds = seed.reshape(1, SEED_BYTES)
            controls = np.asarray([control], dtype=np.uint8)
            for level in range(descent_depth, dpf.domain_bits):
                seeds, controls = expand_level(dpf.prg, seeds, controls, key.correction_words[level])
            peak = max(peak, seeds.shape[0])
            values = self._finalize(dpf, key, seeds, controls)
            output[start:stop] = values[: stop - start]

        if stats is not None:
            stats.prg_calls += dpf.prg.expand_calls - before
            stats.peak_nodes_in_memory = max(stats.peak_nodes_in_memory, peak)
            stats.leaves_evaluated += num_points
        return output


_STRATEGIES: Dict[str, Type[TraversalStrategy]] = {
    LevelByLevelTraversal.name: LevelByLevelTraversal,
    BranchParallelTraversal.name: BranchParallelTraversal,
    MemoryBoundedTraversal.name: MemoryBoundedTraversal,
}


def make_traversal(name: str, **kwargs) -> TraversalStrategy:
    """Instantiate a traversal strategy by name.

    Valid names: ``"level_by_level"``, ``"branch_parallel"``,
    ``"memory_bounded"`` (the latter accepts ``chunk_leaves=...``).
    """
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown traversal strategy {name!r}; valid: {sorted(_STRATEGIES)}"
        ) from None
    return cls(**kwargs)


def available_strategies() -> tuple:
    """Names of all registered traversal strategies."""
    return tuple(sorted(_STRATEGIES))
