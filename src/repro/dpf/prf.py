"""Pseudorandom primitives used by the GGM-tree DPF.

Two backends implement the same :class:`LengthDoublingPRG` interface:

* :class:`AESPRG` — a correct pure-Python AES-128 (FIPS-197).  This is the
  PRF the paper uses (via AES-NI on the host CPU).  It is slow in Python and
  is therefore only exercised on small domains, mainly to pin down the exact
  cost accounting (AES block counts) and to cross-check the fast backend's
  structure.
* :class:`NumpyPRG` — a vectorised splitmix64-based expansion that processes
  whole tree levels as numpy arrays.  It is not a cryptographic PRF, but the
  DPF's correctness and the system's performance behaviour are independent of
  the concrete PRF, and the cost model separately accounts AES-block
  equivalents (see :attr:`LengthDoublingPRG.blocks_per_expand`).

Both backends expand a 128-bit seed into two 128-bit child seeds plus two
control bits, which is exactly the ``G`` used in the correction-word DPF of
Boyle-Gilboa-Ishai as deployed by Google's ``distributed_point_functions``
library and by Lam et al. (the GPU-PIR baseline the paper compares against).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

SEED_BYTES = 16
#: AES blocks consumed by one length-doubling expansion (two 128-bit outputs).
BLOCKS_PER_EXPAND = 2

# ---------------------------------------------------------------------------
# Pure-Python AES-128 (FIPS-197).
# ---------------------------------------------------------------------------

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B, 0xFE, 0xD7, 0xAB, 0x76,
    0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0, 0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0,
    0xB7, 0xFD, 0x93, 0x26, 0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2, 0xEB, 0x27, 0xB2, 0x75,
    0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0, 0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84,
    0x53, 0xD1, 0x00, 0xED, 0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F, 0x50, 0x3C, 0x9F, 0xA8,
    0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5, 0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2,
    0xCD, 0x0C, 0x13, 0xEC, 0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14, 0xDE, 0x5E, 0x0B, 0xDB,
    0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C, 0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79,
    0xE7, 0xC8, 0x37, 0x6D, 0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F, 0x4B, 0xBD, 0x8B, 0x8A,
    0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E, 0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E,
    0xE1, 0xF8, 0x98, 0x11, 0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F, 0xB0, 0x54, 0xBB, 0x16,
]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(value: int) -> int:
    """Multiply by x in GF(2^8) modulo the AES polynomial."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _expand_key(key: bytes) -> list:
    """AES-128 key schedule: 11 round keys of 16 bytes each."""
    if len(key) != 16:
        raise ValueError("AES-128 requires a 16-byte key")
    words = [list(key[i:i + 4]) for i in range(0, 16, 4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [_SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    round_keys = []
    for r in range(11):
        round_keys.append([b for w in words[4 * r:4 * r + 4] for b in w])
    return round_keys


def _sub_bytes(state: list) -> None:
    for i in range(16):
        state[i] = _SBOX[state[i]]


def _shift_rows(state: list) -> None:
    # State is column-major: state[r + 4*c].
    for r in range(1, 4):
        row = [state[r + 4 * c] for c in range(4)]
        row = row[r:] + row[:r]
        for c in range(4):
            state[r + 4 * c] = row[c]


def _mix_columns(state: list) -> None:
    for c in range(4):
        col = state[4 * c:4 * c + 4]
        a = col
        b = [_xtime(v) for v in col]
        state[4 * c + 0] = b[0] ^ a[1] ^ b[1] ^ a[2] ^ a[3]
        state[4 * c + 1] = a[0] ^ b[1] ^ a[2] ^ b[2] ^ a[3]
        state[4 * c + 2] = a[0] ^ a[1] ^ b[2] ^ a[3] ^ b[3]
        state[4 * c + 3] = a[0] ^ b[0] ^ a[1] ^ a[2] ^ b[3]


def _add_round_key(state: list, round_key: list) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


def aes128_encrypt_block(key: bytes, block: bytes) -> bytes:
    """Encrypt a single 16-byte ``block`` under ``key`` with AES-128."""
    if len(block) != 16:
        raise ValueError("AES-128 operates on 16-byte blocks")
    round_keys = _expand_key(key)
    state = list(block)
    _add_round_key(state, round_keys[0])
    for round_index in range(1, 10):
        _sub_bytes(state)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, round_keys[round_index])
    _sub_bytes(state)
    _shift_rows(state)
    _add_round_key(state, round_keys[10])
    return bytes(state)


# ---------------------------------------------------------------------------
# Length-doubling PRG interface and backends.
# ---------------------------------------------------------------------------


class LengthDoublingPRG:
    """Expands 128-bit seeds into two 128-bit child seeds plus two bits.

    Implementations must be deterministic and stateless apart from the
    ``expand_calls`` / ``blocks_consumed`` counters used by the cost model.
    """

    #: AES-block equivalents charged per seed expansion by the cost model.
    blocks_per_expand = BLOCKS_PER_EXPAND

    def __init__(self) -> None:
        self.expand_calls = 0

    @property
    def blocks_consumed(self) -> int:
        """Total AES-block equivalents consumed so far."""
        return self.expand_calls * self.blocks_per_expand

    def reset_counters(self) -> None:
        """Zero the expansion counters (useful between benchmark runs)."""
        self.expand_calls = 0

    def expand(self, seeds: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Expand a batch of seeds.

        Parameters
        ----------
        seeds:
            ``(k, 16)`` uint8 array of 128-bit seeds.

        Returns
        -------
        (left_seeds, right_seeds, t_left, t_right):
            ``left_seeds``/``right_seeds`` are ``(k, 16)`` uint8 arrays and
            ``t_left``/``t_right`` are ``(k,)`` uint8 arrays of control bits.
        """
        raise NotImplementedError

    def expand_one(self, seed: bytes) -> Tuple[bytes, bytes, int, int]:
        """Expand a single seed given as 16 raw bytes."""
        array = np.frombuffer(seed, dtype=np.uint8).reshape(1, SEED_BYTES)
        left, right, t_left, t_right = self.expand(array)
        return left[0].tobytes(), right[0].tobytes(), int(t_left[0]), int(t_right[0])


class AESPRG(LengthDoublingPRG):
    """GGM expansion built on the pure-Python AES-128 above.

    The seed acts as the AES key; the left/right children are the encryptions
    of the constant blocks ``0`` and ``1`` (a standard PRG-from-PRF
    construction).  The control bits are taken from the children's *second*
    64-bit lane so they stay independent of the bits the DPF's ``Convert``
    step outputs (which come from the first lane) — reusing the same bit would
    correlate each party's share with its control bit and visibly bias the
    share vector.
    """

    _LEFT_BLOCK = bytes(16)
    _RIGHT_BLOCK = bytes([1] + [0] * 15)

    def expand(self, seeds: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        seeds = np.ascontiguousarray(seeds, dtype=np.uint8)
        if seeds.ndim != 2 or seeds.shape[1] != SEED_BYTES:
            raise ValueError("seeds must have shape (k, 16)")
        count = seeds.shape[0]
        left = np.empty_like(seeds)
        right = np.empty_like(seeds)
        for i in range(count):
            key = seeds[i].tobytes()
            left[i] = np.frombuffer(aes128_encrypt_block(key, self._LEFT_BLOCK), dtype=np.uint8)
            right[i] = np.frombuffer(aes128_encrypt_block(key, self._RIGHT_BLOCK), dtype=np.uint8)
        t_left = (left[:, 8] & 1).astype(np.uint8)
        t_right = (right[:, 8] & 1).astype(np.uint8)
        self.expand_calls += count
        return left, right, t_left, t_right


class NumpyPRG(LengthDoublingPRG):
    """Vectorised splitmix64-based expansion for large-domain evaluation.

    Each 128-bit seed is viewed as two 64-bit lanes and each child is produced
    by a short Feistel-like network whose round function is the splitmix64
    finaliser keyed by a per-child constant.  The construction is not a
    cryptographic PRF, but three rounds of cross-lane mixing are enough to
    remove the tree-structured correlations a single mixing pass leaves behind
    (the DPF property tests check share balance explicitly).
    """

    _GAMMA_LEFT = np.uint64(0x9E3779B97F4A7C15)
    _GAMMA_RIGHT = np.uint64(0xC2B2AE3D27D4EB4F)
    _ROUND_2 = np.uint64(0xD6E8FEB86659FD93)
    _ROUND_3 = np.uint64(0xA0761D6478BD642F)
    _MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
    _MIX_2 = np.uint64(0x94D049BB133111EB)

    @staticmethod
    def _mix(values: np.ndarray) -> np.ndarray:
        z = values.copy()
        z ^= z >> np.uint64(30)
        z *= NumpyPRG._MIX_1
        z ^= z >> np.uint64(27)
        z *= NumpyPRG._MIX_2
        z ^= z >> np.uint64(31)
        return z

    def _child(self, lanes: np.ndarray, gamma: np.uint64) -> np.ndarray:
        left = lanes[:, 0].copy()
        right = lanes[:, 1].copy()
        # Three Feistel rounds with splitmix64 as the keyed round function.
        left ^= self._mix(right + gamma)
        right ^= self._mix(left + self._ROUND_2)
        left ^= self._mix(right + self._ROUND_3)
        return np.stack([left, right], axis=1)

    def expand(self, seeds: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        seeds = np.ascontiguousarray(seeds, dtype=np.uint8)
        if seeds.ndim != 2 or seeds.shape[1] != SEED_BYTES:
            raise ValueError("seeds must have shape (k, 16)")
        lanes = seeds.view(np.uint64).reshape(-1, 2)
        with np.errstate(over="ignore"):
            left_lanes = self._child(lanes, self._GAMMA_LEFT)
            right_lanes = self._child(lanes, self._GAMMA_RIGHT)
        # _child returns fresh C-contiguous uint64 lanes, so a view suffices;
        # astype here would silently copy 16 bytes per child seed.
        left = left_lanes.view(np.uint8).reshape(-1, SEED_BYTES)
        right = right_lanes.view(np.uint8).reshape(-1, SEED_BYTES)
        t_left = (left[:, 8] & 1).astype(np.uint8, copy=False)
        t_right = (right[:, 8] & 1).astype(np.uint8, copy=False)
        self.expand_calls += seeds.shape[0]
        return left, right, t_left, t_right


def make_prg(backend: str = "numpy") -> LengthDoublingPRG:
    """Factory for PRG backends.

    ``"numpy"`` (default) returns the fast vectorised backend; ``"aes"``
    returns the exact AES-128 backend used for crypto-fidelity tests.
    """
    normalized = backend.lower()
    if normalized in ("numpy", "fast"):
        return NumpyPRG()
    if normalized in ("aes", "aes128", "aes-128"):
        return AESPRG()
    raise ValueError(f"unknown PRG backend: {backend!r}")
