"""Online control plane over the shard/fleet data plane.

PR 2/3 built a *static* data plane: shards are placed once, from an offline
heat sample.  This package is the layer that makes the fleet track its
workload, without touching the PIR protocol (distribution policy stays
separate from application logic):

* :class:`HeatTracker` — per-shard query-rate telemetry in decaying
  sliding windows, fed by the frontend observe hook (sync and async);
* :class:`Rebalancer` — periodic re-placement against the live window,
  migrating only the shards whose cheapest kind changed
  (:meth:`~repro.shard.backend.ShardedBackend.swap_child`; retrievals stay
  bit-identical throughout), and — with the plan-shape policy enabled —
  online topology reshaping: hot shards split at their in-shard heat
  median, adjacent cold shards merge, applied to every fleet as one
  versioned :class:`~repro.shard.plan.TopologyChange`
  (:meth:`~repro.shard.backend.ShardedBackend.apply_topology`) with the
  tracker's windows remapped across the change;
* :class:`HotRecordCache` — an opt-in LRU tier with heat-informed
  admission in front of a fleet (requires ``dedup=True``; invalidated by
  ``apply_updates`` dirty indices);
* :class:`ReplicaAutoscaler` / :class:`DampingPolicy` /
  :class:`AsyncControlDriver` — the closed loop: replica-count elasticity
  from sustained utilization, cost-aware damping of every reshape and kind
  migration, and the managed asyncio task that drives periodic control
  passes through the async frontend's quiesce gate;
* :class:`ControlPlane` / :func:`controlled_fleet` — the wiring.

Everything here runs on the simulated clock — ``now`` always comes from
the caller, and ``tools/lint.py`` rejects wall-clock reads (including
event-loop ``.time()``) in this package.
"""

from repro.control.autoscaler import (
    AsyncControlDriver,
    AutoscaleAction,
    AutoscalePolicy,
    DampingPolicy,
    DampingVerdict,
    ReplicaAutoscaler,
    ReshapeDamper,
)
from repro.control.cache import CacheStats, HotRecordCache
from repro.control.plane import ControlPlane, controlled_fleet
from repro.control.rebalancer import (
    RebalanceReport,
    Rebalancer,
    ShardMerge,
    ShardMigration,
    ShardSplit,
)
from repro.control.telemetry import HeatTracker

__all__ = [
    "AsyncControlDriver",
    "AutoscaleAction",
    "AutoscalePolicy",
    "CacheStats",
    "DampingPolicy",
    "DampingVerdict",
    "HotRecordCache",
    "ControlPlane",
    "controlled_fleet",
    "RebalanceReport",
    "Rebalancer",
    "ReplicaAutoscaler",
    "ReshapeDamper",
    "ShardMerge",
    "ShardMigration",
    "ShardSplit",
    "HeatTracker",
]
