"""Online shard rebalancing: re-place live fleets against measured heat.

A :class:`~repro.shard.fleet.FleetRouter` places shards once, from an
offline heat sample — a drifting workload (new hot certificates, a freshly
leaked credential dump) then strands hot shards on streamed backends
forever.  The :class:`Rebalancer` closes the loop: it periodically re-runs
the same :func:`~repro.shard.fleet.plan_placements` cost comparison against
a live :class:`~repro.control.telemetry.HeatTracker` window, diffs the
result against the placements in effect, and migrates **only the shards
whose chosen kind changed**.

A migration is a data-plane swap, not a protocol event: the shard's slice
is re-cut through :meth:`~repro.shard.plan.ShardPlan.slice_shard` (the
single slicing rule prepare and apply_updates already share), a fresh child
backend of the new kind is prepared on it, and
:meth:`~repro.shard.backend.ShardedBackend.swap_child` replaces the member
atomically — queries keep hitting the old child until the swap and are
bit-identical before, during and after, because both children hold the same
bytes.  The migration's cost is the transfer term the shard's new
placement already carries (:attr:`ShardPlacement.preload_seconds`, charged
per the :class:`~repro.pim.timing.PIMTimingModel`): moving onto a preloaded
kind pays the shard copy into MRAM, moving onto a streamed kind drops the
standing copy and pays nothing up front.

Simulated clock only (lint-enforced for this package): ``now`` comes from
the frontend observe hook or the caller, never from ``time.time()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.control.telemetry import HeatTracker
from repro.shard.backend import bare_backend_factory, default_child_config
from repro.shard.fleet import FleetRouter, ShardPlacement, plan_placements
from repro.shard.plan import ShardSpec


@dataclass(frozen=True)
class ShardMigration:
    """One shard moved between backend kinds by a rebalance pass."""

    shard: ShardSpec
    old_kind: str
    new_kind: str
    #: The shard's heat estimate that justified the move.
    heat: float
    #: Transfer cost of standing the shard up on the new kind, per replica
    #: (the placement's preload term; replicas migrate in parallel).
    transfer_seconds: float


@dataclass
class RebalanceReport:
    """What one rebalance pass observed and did."""

    now: float
    heats: List[float]
    placements: List[ShardPlacement]
    migrations: List[ShardMigration] = field(default_factory=list)

    @property
    def migration_seconds(self) -> float:
        """Simulated cost of the pass: shards migrate one after another on
        each replica's host (sum), replicas migrate in parallel (max folds
        to the same value, so the sum per replica is the makespan)."""
        return sum(migration.transfer_seconds for migration in self.migrations)

    def describe(self) -> str:
        if not self.migrations:
            return f"rebalance @ {self.now:.3f}s: placements unchanged"
        moves = ", ".join(
            f"shard {m.shard.index} {m.old_kind}->{m.new_kind} "
            f"(heat {m.heat:.1f}, {m.transfer_seconds * 1e3:.3f}ms)"
            for m in self.migrations
        )
        return (
            f"rebalance @ {self.now:.3f}s: {len(self.migrations)} migration(s) — "
            f"{moves}"
        )


class Rebalancer:
    """Periodically re-places a live fleet's shards from measured heat.

    Wire it behind the frontend observe hook (directly, or via
    :class:`~repro.control.plane.ControlPlane`) and every flushed batch
    both feeds the tracker and gives the rebalancer a chance to act; or
    drive :meth:`maybe_rebalance`/:meth:`rebalance` explicitly from a
    management loop.  ``interval_seconds`` is simulated time between
    passes; a pass that finds no kind changes migrates nothing.
    """

    def __init__(
        self,
        router: FleetRouter,
        tracker: HeatTracker,
        interval_seconds: float = 1.0,
    ) -> None:
        if interval_seconds <= 0:
            raise ConfigurationError("interval_seconds must be positive")
        if tracker.plan is not router.plan:
            raise ConfigurationError(
                "tracker and router must share one ShardPlan (heat indices "
                "are shard indices of that plan)"
            )
        self.router = router
        self.tracker = tracker
        self.interval_seconds = interval_seconds
        #: One report per completed pass, in time order.
        self.reports: List[RebalanceReport] = []
        self._last_pass: Optional[float] = None

    # -- observe hook (period check) ---------------------------------------------

    def maybe_rebalance(self, now: float) -> Optional[RebalanceReport]:
        """Run a pass iff ``interval_seconds`` elapsed since the last one.

        The first call only anchors the interval clock (a rebalance before
        any full observation window would act on a half-empty estimate).
        """
        if self._last_pass is None:
            self._last_pass = now
            return None
        if now - self._last_pass < self.interval_seconds:
            return None
        self._last_pass = now
        return self.rebalance(now)

    # -- one pass -----------------------------------------------------------------

    def rebalance(self, now: float = 0.0) -> RebalanceReport:
        """Re-place every shard against the live heat window, migrating diffs.

        Recomputes placements with the router's own candidates (same cost
        formulas, same machine model), swaps a fresh child of the new kind
        into **every** replica fleet for each shard whose kind changed, and
        installs the new placements on the router so its reporting surface
        (``describe_placements`` etc.) reflects the live fleet.
        """
        router = self.router
        record_size = router.fleets[0].database.record_size
        heats = self.tracker.heats()
        new_placements = plan_placements(
            router.plan, record_size, heats, candidates=router.candidates
        )
        old_kinds: Dict[int, str] = {
            placement.shard.index: placement.kind for placement in router.placements
        }
        report = RebalanceReport(now=now, heats=heats, placements=new_placements)
        for placement in new_placements:
            shard_index = placement.shard.index
            old_kind = old_kinds.get(shard_index)
            if old_kind == placement.kind:
                continue
            factory = bare_backend_factory(
                placement.kind,
                config=(
                    router.child_config
                    if router.child_config is not None
                    else default_child_config()
                ),
            )
            for fleet in router.fleets:
                fleet.swap_child(shard_index, factory(placement.shard))
            report.migrations.append(
                ShardMigration(
                    shard=placement.shard,
                    old_kind=old_kind if old_kind is not None else "(unplaced)",
                    new_kind=placement.kind,
                    heat=placement.heat,
                    transfer_seconds=placement.preload_seconds,
                )
            )
        router.placements = new_placements
        self.reports.append(report)
        return report

    # -- rollups ------------------------------------------------------------------

    @property
    def total_migrations(self) -> int:
        """Shards migrated across every pass so far."""
        return sum(len(report.migrations) for report in self.reports)

    @property
    def total_migration_seconds(self) -> float:
        """Simulated transfer cost across every pass so far."""
        return sum(report.migration_seconds for report in self.reports)
