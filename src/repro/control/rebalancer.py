"""Online shard rebalancing: re-place and re-shape live fleets from heat.

A :class:`~repro.shard.fleet.FleetRouter` places shards once, from an
offline heat sample — a drifting workload (new hot certificates, a freshly
leaked credential dump) then strands hot shards on streamed backends
forever.  The :class:`Rebalancer` closes the loop, in two ways:

**Kind rebalancing** (PR 4): it periodically re-runs the same
:func:`~repro.shard.fleet.plan_placements` cost comparison against a live
:class:`~repro.control.telemetry.HeatTracker` window, diffs the result
against the placements in effect, and migrates **only the shards whose
chosen kind changed**.  A migration is a data-plane swap, not a protocol
event: the shard's slice is re-cut through
:meth:`~repro.shard.plan.ShardPlan.slice_shard` (the single slicing rule
prepare and apply_updates already share), a fresh child backend of the new
kind is prepared on it, and
:meth:`~repro.shard.backend.ShardedBackend.swap_child` replaces the member
atomically — queries keep hitting the old child until the swap and are
bit-identical before, during and after, because both children hold the same
bytes.

**Plan-shape rebalancing** (this PR): shard *boundaries* themselves follow
the heat.  A shard whose heat share exceeds ``split_heat_share`` is split at
its in-shard heat median (:meth:`HeatTracker.split_point` — block-aligned,
so PIM/DPU children keep their layout invariants); adjacent shards whose
heats both sit at or below ``merge_heat_floor`` are merged, coldest pair
first.  Both are bounded by ``min_shards``/``max_shards``.  Each transform
is a pure :meth:`~repro.shard.plan.ShardPlan.split_shard` /
:meth:`~repro.shard.plan.ShardPlan.merge_shards` producing a versioned
:class:`~repro.shard.plan.TopologyChange`; the pass composes them into one
old→final change, remaps the tracker's decaying windows through it (heat
survives the reshape instead of resetting), re-runs ``plan_placements``
over the **new** shard set, and installs the agreed topology on every
replica fleet through :meth:`~repro.shard.fleet.FleetRouter.apply_topology`
(inside the frontend's reconfigure gate, so no flush spans two plan
versions).  The reshape's cost is the placements' transfer terms for the
changed ranges, exactly as migrations are charged.

**Cost-aware damping** (PR 8): with a
:class:`~repro.control.autoscaler.DampingPolicy` configured, every split,
merge and kind migration is first priced — its projected per-window saving
(the same ``preload + heat × per-query`` formulas placement uses, evaluated
on the shards the action would create) against the one-time transfer cost
of standing up the fresh children — and executed only when the saving
amortizes the transfer within the policy's horizon and the touched record
range is out of cooldown.  Suppressed actions are not lost: they land on
the pass report as :class:`~repro.control.autoscaler.DampingVerdict`
entries, so a fleet that *refuses* to flap is as observable as one that
reshapes.

Simulated clock only (lint-enforced for this package): ``now`` comes from
the frontend observe hook or the caller, never from ``time.time()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import ConfigurationError
from repro.control.autoscaler import (
    DampingPolicy,
    DampingVerdict,
    ReshapeDamper,
    best_option,
    kind_window_cost,
)
from repro.control.telemetry import HeatTracker
from repro.shard.backend import bare_backend_factory, default_child_config
from repro.shard.fleet import (
    FleetRouter,
    ShardPlacement,
    placement_for_kind,
    plan_placements,
)
from repro.shard.plan import ShardSpec, TopologyChange


@dataclass(frozen=True)
class ShardMigration:
    """One shard moved between backend kinds by a rebalance pass."""

    shard: ShardSpec
    old_kind: str
    new_kind: str
    #: The shard's heat estimate that justified the move.
    heat: float
    #: Transfer cost of standing the shard up on the new kind, per replica
    #: (the placement's preload term; replicas migrate in parallel).
    transfer_seconds: float


@dataclass(frozen=True)
class ShardSplit:
    """One hot shard cut in two by a rebalance pass."""

    #: The shard as it was before the cut (old plan's indexing).
    shard: ShardSpec
    #: The block-aligned record index the shard was cut at (its in-shard
    #: heat median, so each half inherits about half the load).
    at: int
    #: The shard's heat estimate when the policy fired.
    heat: float
    #: Its share of the fleet-wide heat that crossed ``split_heat_share``.
    heat_share: float


@dataclass(frozen=True)
class ShardMerge:
    """Two adjacent cold shards folded into one by a rebalance pass."""

    left: ShardSpec
    right: ShardSpec
    #: Combined heat of the pair (both sat at or below ``merge_heat_floor``).
    heat: float


@dataclass
class RebalanceReport:
    """What one rebalance pass observed and did."""

    now: float
    #: Live heats **after** any reshape (per shard of ``placements``' plan) —
    #: remapped through the topology change, not reset, so a nonzero vector
    #: here is the proof telemetry survived the reshape.
    heats: List[float]
    placements: List[ShardPlacement]
    migrations: List[ShardMigration] = field(default_factory=list)
    splits: List[ShardSplit] = field(default_factory=list)
    merges: List[ShardMerge] = field(default_factory=list)
    #: The composed old→new plan change, when the pass reshaped (else None).
    topology: Optional[TopologyChange] = None
    #: Plan version in effect after the pass.
    plan_version: int = 0
    #: Transfer cost of standing up the reshape's fresh children, per
    #: replica (the changed placements' preload terms; replicas in parallel).
    reshape_seconds: float = 0.0
    #: Reshapes/migrations the damper vetoed this pass, with their economics
    #: — the observability of *not* acting.
    suppressed: List[DampingVerdict] = field(default_factory=list)

    @property
    def migration_seconds(self) -> float:
        """Simulated cost of the pass's kind migrations: shards migrate one
        after another on each replica's host (sum), replicas migrate in
        parallel (max folds to the same value, so the sum per replica is
        the makespan)."""
        return sum(migration.transfer_seconds for migration in self.migrations)

    @property
    def total_seconds(self) -> float:
        """Reshape transfer plus kind-migration transfer for the pass."""
        return self.reshape_seconds + self.migration_seconds

    def describe(self) -> str:
        actions = []
        if self.splits:
            actions.append(
                ", ".join(
                    f"split shard {s.shard.index} [{s.shard.start},{s.shard.stop}) "
                    f"at {s.at} (heat {s.heat:.1f}, share {s.heat_share:.2f})"
                    for s in self.splits
                )
            )
        if self.merges:
            actions.append(
                ", ".join(
                    f"merged shards {m.left.index}+{m.right.index} into "
                    f"[{m.left.start},{m.right.stop}) (heat {m.heat:.1f})"
                    for m in self.merges
                )
            )
        if self.migrations:
            actions.append(
                ", ".join(
                    f"shard {m.shard.index} {m.old_kind}->{m.new_kind} "
                    f"(heat {m.heat:.1f}, {m.transfer_seconds * 1e3:.3f}ms)"
                    for m in self.migrations
                )
            )
        if self.suppressed:
            actions.append(
                ", ".join(verdict.describe() for verdict in self.suppressed)
            )
        if not actions:
            return f"rebalance @ {self.now:.3f}s: placements unchanged"
        return (
            f"rebalance @ {self.now:.3f}s (plan v{self.plan_version}): "
            + "; ".join(actions)
        )


class Rebalancer:
    """Periodically re-places (and optionally re-shapes) a live fleet.

    Wire it behind the frontend observe hook (directly, or via
    :class:`~repro.control.plane.ControlPlane`) and every flushed batch
    both feeds the tracker and gives the rebalancer a chance to act; or
    drive :meth:`maybe_rebalance`/:meth:`rebalance` explicitly from a
    management loop.  ``interval_seconds`` is simulated time between
    passes; a pass that finds no kind changes and no shape triggers does
    nothing.

    Plan-shape policy (off unless configured):

    * ``split_heat_share`` — split any shard owning more than this share of
      the fleet-wide heat, at its in-shard heat median (block-aligned);
      repeated within a pass until no shard crosses the threshold or
      ``max_shards`` is reached.
    * ``merge_heat_floor`` — merge adjacent shards whose heats both sit at
      or below this absolute per-window heat, coldest pair first, until no
      pair qualifies or ``min_shards`` is reached.  Keep the floor well
      under ``split_heat_share`` of the typical total, or a pass could
      undo its own splits.
    * ``damping`` — a :class:`~repro.control.autoscaler.DampingPolicy`
      gating every shape change *and* kind migration on its economics
      (amortized saving vs. transfer cost, plus a record-range cooldown).
      Off by default: an undamped rebalancer acts on thresholds alone,
      exactly as before.
    """

    def __init__(
        self,
        router: FleetRouter,
        tracker: HeatTracker,
        interval_seconds: float = 1.0,
        split_heat_share: Optional[float] = None,
        merge_heat_floor: Optional[float] = None,
        min_shards: int = 1,
        max_shards: Optional[int] = None,
        damping: Optional[DampingPolicy] = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ConfigurationError("interval_seconds must be positive")
        if tracker.plan is not router.plan:
            raise ConfigurationError(
                "tracker and router must share one ShardPlan (heat indices "
                "are shard indices of that plan)"
            )
        if split_heat_share is not None and not 0.0 < split_heat_share < 1.0:
            raise ConfigurationError("split_heat_share must be in (0, 1)")
        if merge_heat_floor is not None and merge_heat_floor < 0:
            raise ConfigurationError("merge_heat_floor must be non-negative")
        if min_shards < 1:
            raise ConfigurationError("min_shards must be at least 1")
        if max_shards is not None and max_shards < min_shards:
            raise ConfigurationError("max_shards must be at least min_shards")
        self.router = router
        self.tracker = tracker
        self.interval_seconds = interval_seconds
        self.split_heat_share = split_heat_share
        self.merge_heat_floor = merge_heat_floor
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.damping = damping
        #: The stateful judge (``None`` when damping is off): carries the
        #: record-range cooldown ledger across passes.
        self.damper = ReshapeDamper(damping) if damping is not None else None
        #: One report per completed pass, in time order.
        self.reports: List[RebalanceReport] = []
        self._last_pass: Optional[float] = None
        #: Optional :class:`~repro.obs.events.EventLog`; each completed
        #: pass emits a ``rebalance.pass`` event when set (hub-wired).
        self.events = None

    # -- observe hook (period check) ---------------------------------------------

    def maybe_rebalance(self, now: float, health=None) -> Optional[RebalanceReport]:
        """Run a pass iff ``interval_seconds`` elapsed since the last one.

        The first call only anchors the interval clock (a rebalance before
        any full observation window would act on a half-empty estimate).
        ``health`` (a :class:`~repro.obs.slo.HealthSignal`, plane-supplied)
        is forwarded to :meth:`rebalance`.
        """
        if self._last_pass is None:
            self._last_pass = now
            return None
        if now - self._last_pass < self.interval_seconds:
            return None
        self._last_pass = now
        return self.rebalance(now, health=health)

    # -- one pass -----------------------------------------------------------------

    def rebalance(self, now: float = 0.0, health=None) -> RebalanceReport:
        """Re-shape and re-place the fleet against the live heat window.

        Order of one pass: (1) shape — apply the split/merge policy as pure
        plan transforms, composing them into one
        :class:`~repro.shard.plan.TopologyChange` and remapping the
        tracker's windows through each step; (2) place — re-run
        :func:`plan_placements` with the router's own candidates (same cost
        formulas, same machine model) **over the new shard set**;
        (3) apply — install the agreed topology on every replica fleet
        (fresh children for changed ranges are built at their placed kind),
        then live-migrate any surviving shard whose chosen kind changed;
        (4) install the new placements on the router so its reporting
        surface (``describe_placements`` etc.) reflects the live fleet.

        While ``health`` reports an active SLO burn, every split, merge and
        kind migration is held — each surfaces as a ``"slo-burn"``
        :class:`DampingVerdict` on the report — because a reshape's
        transfer cost lands on a fleet already missing its latency target;
        the autoscaler's escalated scale-up is the mitigation that runs
        during a burn, and the held reshapes re-propose themselves once the
        alerts resolve.
        """
        burning = health is not None and getattr(health, "burning", False)
        router = self.router
        if self.tracker.plan is not router.plan:
            raise ConfigurationError(
                f"tracker and router topologies diverged: tracker follows "
                f"plan version {self.tracker.plan.version}, router runs "
                f"version {router.plan.version} — every reshape must remap "
                f"both together (use this rebalancer's pass, not ad-hoc "
                f"transforms)"
            )
        record_size = router.fleets[0].database.record_size
        old_kind_by_old: Dict[int, str] = {
            placement.shard.index: placement.kind for placement in router.placements
        }

        # Snapshot the tracker's remappable state before the shape phase
        # mutates it: if the data-plane apply below fails, the telemetry
        # must roll back to the plan the fleets still run, or every later
        # pass would refuse with the divergence error above — a single
        # failed migration permanently (and, under the async frontend's
        # observer fault routing, silently) wedging the control plane.
        shape_state = self.tracker.shape_state()
        change, splits, merges, suppressed = self._reshape(
            now, record_size, burning=burning
        )
        heats = self.tracker.heats()
        plan = self.tracker.plan
        if len(heats) != plan.num_shards:
            raise ConfigurationError(
                f"heat vector carries {len(heats)} entries for a plan of "
                f"{plan.num_shards} shards (version {plan.version}) — "
                f"telemetry and topology fell out of step"
            )
        new_placements = plan_placements(
            plan, record_size, heats, candidates=router.candidates
        )
        report = RebalanceReport(
            now=now,
            heats=heats,
            placements=new_placements,
            splits=splits,
            merges=merges,
            topology=change,
            plan_version=plan.version,
            suppressed=suppressed,
        )

        changed: frozenset = frozenset()
        if change is not None:
            # One agreed topology across all replica fleets, inside the
            # frontend's reconfigure gate; fresh children for the changed
            # ranges come up at their *placed* kind directly (no interim
            # default-kind child, no double transfer).
            try:
                router.apply_topology(change, new_placements)
            except Exception:
                # The router's apply is stage-all-then-commit-all: a
                # failure means *no* fleet changed and the router still
                # runs the old plan.  Put the tracker back beside it so
                # the error is attributable and the next pass genuinely
                # recovers, instead of every pass failing on divergence.
                self.tracker.restore_shape(shape_state)
                raise
            changed = frozenset(change.changed_new_indices())
            old_kind_by_new = {
                new_index: old_kind_by_old.get(old_index)
                for old_index, new_index in change.unchanged_pairs()
            }
        else:
            old_kind_by_new = old_kind_by_old

        for position, placement in enumerate(new_placements):
            shard_index = placement.shard.index
            if shard_index in changed:
                report.reshape_seconds += placement.preload_seconds
                continue
            old_kind = old_kind_by_new.get(shard_index)
            if old_kind == placement.kind:
                continue
            if burning and old_kind is not None:
                # Hold the migration while the budget burns; pin the
                # installed placement back to the running kind so the
                # router's kind map keeps matching the live children.
                shard = placement.shard
                report.suppressed.append(
                    DampingVerdict(
                        action="migrate",
                        start=shard.start,
                        stop=shard.stop,
                        reason="slo-burn",
                        saving_seconds=0.0,
                        transfer_seconds=0.0,
                        now=now,
                    )
                )
                new_placements[position] = placement_for_kind(
                    shard,
                    old_kind,
                    record_size,
                    placement.heat,
                    router.candidates,
                )
                continue
            if self.damper is not None and old_kind is not None:
                shard = placement.shard
                saving = (
                    kind_window_cost(
                        router.candidates,
                        old_kind,
                        shard.num_records,
                        record_size,
                        placement.heat,
                    )
                    - placement.window_cost_seconds
                )
                verdict = self.damper.judge(
                    "migrate",
                    shard.start,
                    shard.stop,
                    saving,
                    placement.preload_seconds,
                    now,
                )
                if verdict is not None:
                    # The shard stays where it is — pin the *installed*
                    # placement back to the old kind so the router's kind
                    # map keeps matching the children actually running.
                    report.suppressed.append(verdict)
                    new_placements[position] = placement_for_kind(
                        shard,
                        old_kind,
                        record_size,
                        placement.heat,
                        router.candidates,
                    )
                    continue
                self.damper.note_action(now, shard.start, shard.stop)
            factory = bare_backend_factory(
                placement.kind,
                config=(
                    router.child_config
                    if router.child_config is not None
                    else default_child_config()
                ),
            )
            for fleet in router.fleets:
                fleet.swap_child(shard_index, factory(placement.shard))
            report.migrations.append(
                ShardMigration(
                    shard=placement.shard,
                    old_kind=old_kind if old_kind is not None else "(unplaced)",
                    new_kind=placement.kind,
                    heat=placement.heat,
                    transfer_seconds=placement.preload_seconds,
                )
            )
        if change is None:
            # Reshape passes installed the placements inside apply_topology;
            # a migrations-only pass must land them (and the kind map the
            # router's default child factory reads) here, or a later
            # re-prepare would rebuild migrated shards at their old kinds.
            router.install_placements(new_placements)
        if self.events is not None:
            self.events.emit(
                "rebalance.pass",
                now=now,
                splits=len(report.splits),
                merges=len(report.merges),
                migrations=len(report.migrations),
                plan_version=report.plan_version,
                reshape_seconds=report.reshape_seconds,
                migration_seconds=report.migration_seconds,
                suppressed=len(report.suppressed),
            )
        self.reports.append(report)
        return report

    # -- the plan-shape policy ------------------------------------------------------

    def _reshape(
        self, now: float, record_size: int, burning: bool = False
    ) -> Tuple[
        Optional[TopologyChange],
        List[ShardSplit],
        List[ShardMerge],
        List[DampingVerdict],
    ]:
        """Apply the split/merge policy to the tracker's plan (pure transforms).

        Mutates only the tracker (remapping its windows through each step);
        the composed change is applied to the data plane by the caller.
        Splits run before merges, each loop re-reading the freshly remapped
        heats, so decisions always see the topology they are about to
        change.  With damping, a vetoed action's record range is excluded
        for the rest of the pass (the threshold would keep re-proposing the
        identical cut), and an *executed* action enters the damper's
        cooldown ledger — so the merge loop cannot immediately undo a
        fresh split, in this pass or the next.
        """
        tracker = self.tracker
        candidates = self.router.candidates
        splits: List[ShardSplit] = []
        merges: List[ShardMerge] = []
        suppressed: List[DampingVerdict] = []
        vetoed: Set[Tuple[int, int]] = set()
        overall: Optional[TopologyChange] = None

        def apply(change: TopologyChange) -> None:
            nonlocal overall
            tracker.remap(change)
            overall = change if overall is None else overall.compose(change)

        if self.split_heat_share is not None:
            while self.max_shards is None or tracker.plan.num_shards < self.max_shards:
                plan = tracker.plan
                heats = tracker.heats()
                total = sum(heats)
                if total <= 0:
                    break
                hottest: Optional[ShardSpec] = None
                for shard in plan.shards:
                    # A shard spanning a single block has no interior block
                    # boundary to cut at, however hot it runs.
                    if shard.num_records <= plan.block_records:
                        continue
                    if heats[shard.index] / total <= self.split_heat_share:
                        continue
                    if (shard.start, shard.stop) in vetoed:
                        continue
                    if hottest is None or heats[shard.index] > heats[hottest.index]:
                        hottest = shard
                if hottest is None:
                    break
                at = tracker.split_point(hottest.index)
                if at is None:
                    break
                heat = heats[hottest.index]
                if burning:
                    suppressed.append(
                        DampingVerdict(
                            action="split",
                            start=hottest.start,
                            stop=hottest.stop,
                            reason="slo-burn",
                            saving_seconds=0.0,
                            transfer_seconds=0.0,
                            now=now,
                        )
                    )
                    vetoed.add((hottest.start, hottest.stop))
                    continue
                if self.damper is not None:
                    left_heat = tracker.range_heat(
                        hottest.index, hottest.start, at
                    )
                    right_heat = max(heat - left_heat, 0.0)
                    parent_cost, _ = best_option(
                        candidates, hottest.num_records, record_size, heat
                    )
                    left_cost, left_preload = best_option(
                        candidates, at - hottest.start, record_size, left_heat
                    )
                    right_cost, right_preload = best_option(
                        candidates, hottest.stop - at, record_size, right_heat
                    )
                    saving = (
                        parent_cost
                        - (left_cost + right_cost)
                        - self.damping.shard_overhead_seconds
                    )
                    verdict = self.damper.judge(
                        "split",
                        hottest.start,
                        hottest.stop,
                        saving,
                        left_preload + right_preload,
                        now,
                    )
                    if verdict is not None:
                        suppressed.append(verdict)
                        vetoed.add((hottest.start, hottest.stop))
                        continue
                    self.damper.note_action(now, hottest.start, hottest.stop)
                apply(plan.split_shard(hottest.index, at))
                splits.append(
                    ShardSplit(
                        shard=hottest, at=at, heat=heat, heat_share=heat / total
                    )
                )
        if self.merge_heat_floor is not None:
            while tracker.plan.num_shards > self.min_shards:
                plan = tracker.plan
                heats = tracker.heats()
                coldest: Optional[Tuple[int, float]] = None
                for i in range(plan.num_shards - 1):
                    if (
                        heats[i] <= self.merge_heat_floor
                        and heats[i + 1] <= self.merge_heat_floor
                    ):
                        if (plan.shards[i].start, plan.shards[i + 1].stop) in vetoed:
                            continue
                        combined = heats[i] + heats[i + 1]
                        if coldest is None or combined < coldest[1]:
                            coldest = (i, combined)
                if coldest is None:
                    break
                i, combined = coldest
                left, right = plan.shards[i], plan.shards[i + 1]
                if burning:
                    suppressed.append(
                        DampingVerdict(
                            action="merge",
                            start=left.start,
                            stop=right.stop,
                            reason="slo-burn",
                            saving_seconds=0.0,
                            transfer_seconds=0.0,
                            now=now,
                        )
                    )
                    vetoed.add((left.start, right.stop))
                    continue
                if self.damper is not None:
                    left_cost, _ = best_option(
                        candidates, left.num_records, record_size, heats[i]
                    )
                    right_cost, _ = best_option(
                        candidates, right.num_records, record_size, heats[i + 1]
                    )
                    merged_cost, merged_preload = best_option(
                        candidates,
                        left.num_records + right.num_records,
                        record_size,
                        combined,
                    )
                    saving = (
                        left_cost
                        + right_cost
                        - merged_cost
                        + self.damping.shard_overhead_seconds
                    )
                    verdict = self.damper.judge(
                        "merge", left.start, right.stop, saving, merged_preload, now
                    )
                    if verdict is not None:
                        suppressed.append(verdict)
                        vetoed.add((left.start, right.stop))
                        continue
                    self.damper.note_action(now, left.start, right.stop)
                apply(plan.merge_shards(i, i + 1))
                merges.append(ShardMerge(left=left, right=right, heat=combined))
        return overall, splits, merges, suppressed

    # -- rollups ------------------------------------------------------------------

    @property
    def total_migrations(self) -> int:
        """Shards migrated between kinds across every pass so far."""
        return sum(len(report.migrations) for report in self.reports)

    @property
    def total_splits(self) -> int:
        """Shards split across every pass so far."""
        return sum(len(report.splits) for report in self.reports)

    @property
    def total_merges(self) -> int:
        """Shard pairs merged across every pass so far."""
        return sum(len(report.merges) for report in self.reports)

    @property
    def total_migration_seconds(self) -> float:
        """Simulated transfer cost (reshapes + migrations) across every pass."""
        return sum(report.total_seconds for report in self.reports)

    @property
    def total_suppressed(self) -> int:
        """Reshapes/migrations the damper vetoed across every pass so far."""
        return sum(len(report.suppressed) for report in self.reports)
