"""Hot-record cache tier: short-circuit the scan for popular records.

Under a skewed workload a handful of records (freshly issued certificates,
commonly leaked passwords) absorb most queries.  The dedup machinery
already collapses duplicate requests *within* one batch; this cache
collapses them *across* batches: a record reconstructed once is served to
later batches straight from frontend memory, skipping query generation and
the replica scans entirely.

**Privacy caveat — same gate as ``dedup=True``.**  A caching frontend
necessarily sees which index each request asks for and sends the replicas
*fewer* queries than it admitted, so the traffic pattern leaks exactly as
it does under batch dedup.  That is only acceptable when the frontend is a
trusted aggregator and the observed access pattern is part of the threat
model — which is why :class:`~repro.pir.frontend.PIRFrontend` refuses a
cache unless ``dedup=True`` is already on (the caveat is documented on the
frontend constructor).

Admission is LRU plus optionally *heat-informed*: given a
:class:`~repro.control.telemetry.HeatTracker`, a record is only admitted
while its owning shard's live heat is at least ``admit_min_heat`` — a
one-off probe of a cold shard must not evict a resident hot record.
Consistency comes from invalidation: ``apply_updates`` dirty indices are
dropped (see :meth:`repro.shard.fleet.FleetRouter.apply_updates`), so a
cached record can never go stale relative to the fleets.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.common.errors import ConfigurationError
from repro.control.telemetry import HeatTracker


@dataclass
class CacheStats:
    """Counters the cache accumulates over its lifetime."""

    hits: int = 0
    misses: int = 0
    admissions: int = 0
    #: Admissions refused because the record's shard was too cold.
    rejected_cold: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 before any lookup happened)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "admissions": self.admissions,
            "rejected_cold": self.rejected_cold,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


@dataclass
class HotRecordCache:
    """An LRU record cache with optional heat-informed admission.

    ``capacity`` bounds the number of resident records; ``tracker`` (when
    given) supplies live per-shard heat and ``admit_min_heat`` is the
    admission floor against it.  Without a tracker every reconstructed
    record is admissible (plain LRU).
    """

    capacity: int
    tracker: Optional[HeatTracker] = None
    admit_min_heat: float = 0.0
    stats: CacheStats = field(default_factory=CacheStats)
    #: Optional :class:`~repro.obs.events.EventLog`; admission/eviction/
    #: invalidation emit events when set (the hub wires this).
    events: Optional[object] = None

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError("cache capacity must be positive")
        if self.admit_min_heat < 0:
            raise ConfigurationError("admit_min_heat must be non-negative")
        self._records: "OrderedDict[int, bytes]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, index: int) -> bool:
        return index in self._records

    # -- the frontend-facing surface ------------------------------------------------

    def get(self, index: int) -> Optional[bytes]:
        """The cached record for ``index``, or ``None``; a hit refreshes LRU order."""
        record = self._records.get(index)
        if record is None:
            self.stats.misses += 1
            return None
        self._records.move_to_end(index)
        self.stats.hits += 1
        return record

    def admit(self, index: int, record: bytes) -> bool:
        """Offer a freshly reconstructed record; returns whether it was kept.

        Heat-informed: with a tracker attached, a record whose owning
        shard's live heat is below ``admit_min_heat`` is declined (cold
        probes must not churn the hot set).  Admitting past capacity evicts
        the least recently used resident.
        """
        if self.tracker is not None and self.admit_min_heat > 0:
            if self.tracker.record_heat(index) < self.admit_min_heat:
                self.stats.rejected_cold += 1
                if self.events is not None:
                    self.events.emit("cache.reject_cold", index=index)
                return False
        self._store(index, record)
        return True

    def admit_many(self, records: Dict[int, bytes]) -> None:
        """Offer a whole flush's reconstructions at once.

        Same policy as :meth:`admit`, but the live heat vector is read from
        the tracker *once* — it cannot change mid-flush, and recomputing
        the decayed blend per record would put O(batch x shards) redundant
        work on the flush hot path.
        """
        if not records:
            return
        heats = None
        plan = None
        if self.tracker is not None and self.admit_min_heat > 0:
            # One coherent snapshot: the plan is online-mutable now (topology
            # split/merge), so heats and the plan they index must be read
            # together — a heat vector of the old plan zipped against the
            # new plan's shard indices would admit on the wrong shard's heat
            # (or fall off the end of the vector).
            plan = self.tracker.plan
            heats = self.tracker.heats()
        for index, record in records.items():
            if heats is not None:
                shard = plan.shard_for_record(index)
                if heats[shard.index] < self.admit_min_heat:
                    self.stats.rejected_cold += 1
                    if self.events is not None:
                        self.events.emit("cache.reject_cold", index=index)
                    continue
            self._store(index, record)

    def _store(self, index: int, record: bytes) -> None:
        already_resident = index in self._records
        self._records[index] = record
        self._records.move_to_end(index)
        if not already_resident:
            self.stats.admissions += 1
            if self.events is not None:
                self.events.emit("cache.admit", index=index)
            if len(self._records) > self.capacity:
                evicted, _ = self._records.popitem(last=False)
                self.stats.evictions += 1
                if self.events is not None:
                    self.events.emit("cache.evict", index=evicted)

    def invalidate(self, indices: Iterable[int]) -> int:
        """Drop every cached record in ``indices`` (the dirty set of an
        ``apply_updates``); returns how many were actually resident."""
        dropped = 0
        for index in indices:
            if self._records.pop(index, None) is not None:
                dropped += 1
        self.stats.invalidations += dropped
        if dropped and self.events is not None:
            self.events.emit("cache.invalidate", dropped=dropped)
        return dropped

    def clear(self) -> None:
        """Drop everything (e.g. after a full database swap)."""
        resident = len(self._records)
        self.stats.invalidations += resident
        self._records.clear()
        if resident and self.events is not None:
            self.events.emit("cache.invalidate", dropped=resident)

    def resident_indices(self) -> list:
        """Cached record indices in LRU-to-MRU order (diagnostic)."""
        return list(self._records)

    def __repr__(self) -> str:
        return (
            f"HotRecordCache(capacity={self.capacity}, resident={len(self)}, "
            f"hit_rate={self.stats.hit_rate:.2f})"
        )
