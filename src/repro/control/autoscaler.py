"""The closed control loop: async driver, cost-damped reshapes, elastic replicas.

PRs 4–5 made the fleet *able* to rebalance, re-shape and cache on live heat,
but every decision was still caller-driven and the replica set was fixed at
construction.  This module closes the loop with three pieces:

* :class:`AsyncControlDriver` — a managed asyncio task (owned by
  :class:`~repro.control.plane.ControlPlane`) that periodically runs a
  control pass against live traffic **through the frontend's
  writer-preferring quiesce gate**
  (:meth:`repro.pir.async_frontend.AsyncPIRFrontend.reconfigure`).  The
  expensive part of a scale-up — preparing the fresh replica members — is
  staged *outside* the gate from a database snapshot while traffic keeps
  flowing; only the commit (dirty-update replay + member install + the
  rebalance pass itself) holds the writer slot.  The driver is wall-clock
  free: the clock is injected by the caller (the event loop's ``loop.time``
  in production, a simulated clock in tests) — ``tools/lint.py`` bans both
  ``time.*`` and ``asyncio.get_running_loop().time()`` in this package.

* :class:`DampingPolicy` / :class:`ReshapeDamper` — cost-aware hysteresis
  for split, merge and migration decisions.  Every proposed reshape is
  charged its transfer cost (the changed placements' preload terms, from the
  same :class:`~repro.pim.timing.PIMTimingModel` formulas the placement
  uses) against its projected per-window saving, and is allowed only when
  the saving amortizes the transfer within ``amortize_windows``; a
  per-record-range cooldown additionally suppresses actions that touch a
  recently reshaped range.  Borderline heat therefore never flaps the
  topology — the suppressed actions surface as :class:`DampingVerdict`
  entries on the :class:`~repro.control.rebalancer.RebalanceReport`.

* :class:`AutoscalePolicy` / :class:`ReplicaAutoscaler` — replica-count
  elasticity from sustained utilization.  Total tracked heat over the
  per-replica capacity target gives a utilization; crossing the scale-up /
  scale-down bands for ``sustain_passes`` consecutive evaluations (plus an
  action cooldown) adds or drains one whole replica per trust domain via
  :meth:`~repro.shard.fleet.FleetRouter.add_replica` /
  :meth:`~repro.shard.fleet.FleetRouter.drain_replica`.  Replicas within a
  trust domain hold identical bytes, so retrievals stay bit-identical to a
  static fleet through every scale action.

Simulated clock only (lint-enforced for this package): ``now`` comes from
the frontend observe hook, the injected driver clock, or the caller.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.shard.fleet import CandidateKind, FleetRouter, StagedReplicas


# -- cost-aware damping --------------------------------------------------------------


@dataclass(frozen=True)
class DampingPolicy:
    """When is a reshape worth its transfer cost?

    ``amortize_windows`` is the horizon (in heat-tracker operating windows)
    the projected per-window saving must repay the transfer within: a split
    whose halves save 1 ms per window and cost 10 ms to stand up is allowed
    at a horizon of 10+ windows and suppressed below.  ``cooldown_seconds``
    suppresses any action overlapping a record range that was reshaped or
    migrated less than that long ago, whatever its economics — the second
    line of flap defence.  ``shard_overhead_seconds`` prices the standing
    per-window cost of *having* a shard (launch/bookkeeping overhead the
    per-query formulas do not see): a merge saves one, a split spends one.
    With the default 0 a merge of two shards carrying any heat projects a
    strictly negative saving (the merged shard scans both ranges for every
    query) and is suppressed — raise the overhead to make consolidation of
    near-cold shards economical again.
    """

    amortize_windows: float = 4.0
    cooldown_seconds: float = 0.0
    shard_overhead_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.amortize_windows <= 0:
            raise ConfigurationError("amortize_windows must be positive")
        if self.cooldown_seconds < 0:
            raise ConfigurationError("cooldown_seconds must be non-negative")
        if self.shard_overhead_seconds < 0:
            raise ConfigurationError("shard_overhead_seconds must be non-negative")


@dataclass(frozen=True)
class DampingVerdict:
    """One reshape the damper suppressed (observable on the pass report)."""

    #: ``"split"``, ``"merge"`` or ``"migrate"``.
    action: str
    #: The record range the suppressed action would have touched.
    start: int
    stop: int
    #: Why it was suppressed: ``"unamortized"`` (the projected saving does
    #: not repay the transfer within the horizon), ``"cooldown"``, or
    #: ``"slo-burn"`` (the rebalancer holds cosmetic reshapes while an SLO
    #: alert is burning — economics fields are 0, the veto is health-driven).
    reason: str
    #: Projected per-window saving of the action (may be negative).
    saving_seconds: float
    #: One-time transfer cost the action would have charged.
    transfer_seconds: float
    now: float

    def describe(self) -> str:
        return (
            f"damped {self.action} [{self.start},{self.stop}) ({self.reason}: "
            f"saves {self.saving_seconds * 1e3:.3f}ms/window, costs "
            f"{self.transfer_seconds * 1e3:.3f}ms)"
        )


def best_option(
    candidates: Sequence[CandidateKind],
    num_records: int,
    record_size: int,
    heat: float,
) -> Tuple[float, float]:
    """``(window_cost, preload)`` of the cheapest candidate for a hypothetical
    shard — the same ``preload + heat * per_query`` comparison
    :func:`~repro.shard.fleet.plan_placements` runs, without needing a
    :class:`~repro.shard.plan.ShardSpec` to exist yet (the damper prices
    shards a split *would* create)."""
    if not candidates:
        raise ConfigurationError("damping needs at least one candidate kind")
    best: Optional[Tuple[float, float]] = None
    for candidate in candidates:
        preload = candidate.preload_seconds(num_records, record_size)
        cost = preload + heat * candidate.per_query_seconds(num_records, record_size)
        if best is None or cost < best[0]:
            best = (cost, preload)
    return best


def kind_window_cost(
    candidates: Sequence[CandidateKind],
    kind: str,
    num_records: int,
    record_size: int,
    heat: float,
) -> float:
    """The per-window cost of keeping a shard on one *specific* kind."""
    for candidate in candidates:
        if candidate.kind == kind:
            return candidate.preload_seconds(
                num_records, record_size
            ) + heat * candidate.per_query_seconds(num_records, record_size)
    raise ConfigurationError(
        f"kind {kind!r} is not among the placement candidates"
    )


class ReshapeDamper:
    """Stateful judge for reshape proposals: amortization + range cooldown.

    Owned by the :class:`~repro.control.rebalancer.Rebalancer` when a
    :class:`DampingPolicy` is configured.  ``judge`` returns ``None`` for an
    allowed action or the :class:`DampingVerdict` that suppresses it;
    ``note_action`` records an executed action's record range so the
    cooldown can veto follow-ups that touch it.  Ranges (not shard indices)
    key the cooldown because reshapes renumber shards — the record space is
    the only stable coordinate system across plan versions.
    """

    def __init__(self, policy: DampingPolicy) -> None:
        self.policy = policy
        self._recent: List[Tuple[float, int, int]] = []

    def note_action(self, now: float, start: int, stop: int) -> None:
        """Record an executed reshape/migration over ``[start, stop)``."""
        if self.policy.cooldown_seconds <= 0:
            return
        horizon = now - self.policy.cooldown_seconds
        self._recent = [
            entry for entry in self._recent if entry[0] >= horizon
        ]
        self._recent.append((now, start, stop))

    def in_cooldown(self, now: float, start: int, stop: int) -> bool:
        """Does ``[start, stop)`` overlap a range acted on within cooldown?"""
        if self.policy.cooldown_seconds <= 0:
            return False
        return any(
            now - acted_at < self.policy.cooldown_seconds
            and start < acted_stop
            and stop > acted_start
            for acted_at, acted_start, acted_stop in self._recent
        )

    def judge(
        self,
        action: str,
        start: int,
        stop: int,
        saving_seconds: float,
        transfer_seconds: float,
        now: float,
    ) -> Optional[DampingVerdict]:
        """``None`` when the action may proceed, else the suppressing verdict.

        Allowed iff the range is out of cooldown, the projected saving is
        non-negative, and ``saving * amortize_windows >= transfer`` — so a
        zero-saving action is still allowed when it costs nothing (a merge
        of truly cold shards onto a streamed kind transfers no bytes).
        """

        def verdict(reason: str) -> DampingVerdict:
            return DampingVerdict(
                action=action,
                start=start,
                stop=stop,
                reason=reason,
                saving_seconds=saving_seconds,
                transfer_seconds=transfer_seconds,
                now=now,
            )

        if self.in_cooldown(now, start, stop):
            return verdict("cooldown")
        if saving_seconds < 0:
            return verdict("unamortized")
        if saving_seconds * self.policy.amortize_windows < transfer_seconds:
            return verdict("unamortized")
        return None


# -- replica autoscaling --------------------------------------------------------------


@dataclass(frozen=True)
class AutoscalePolicy:
    """Replica-count targets from sustained utilization, with hysteresis.

    ``target_heat_per_replica`` is the per-window query heat one replica
    (per trust domain) is sized to carry at comfortable utilization;
    ``utilization = total heat / (target * replicas)``.  Utilization at or
    above ``scale_up_utilization`` for ``sustain_passes`` consecutive
    evaluations adds a replica; at or below ``scale_down_utilization`` for
    as long drains one.  The gap between the bands is the hysteresis dead
    zone — keep ``scale_down < scale_up * (count-1)/count`` or a scale-up
    could immediately qualify for a scale-down.  Evaluations are spaced
    ``evaluation_interval_seconds`` apart on the simulated clock (the first
    call only anchors the interval, like the rebalancer's);
    ``cooldown_seconds`` is the minimum quiet time after any action.
    """

    target_heat_per_replica: float
    scale_up_utilization: float = 0.8
    scale_down_utilization: float = 0.3
    min_replicas: int = 1
    max_replicas: int = 4
    sustain_passes: int = 2
    evaluation_interval_seconds: float = 1.0
    cooldown_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.target_heat_per_replica <= 0:
            raise ConfigurationError("target_heat_per_replica must be positive")
        if not 0 < self.scale_down_utilization < self.scale_up_utilization:
            raise ConfigurationError(
                "need 0 < scale_down_utilization < scale_up_utilization"
            )
        if self.min_replicas < 1:
            raise ConfigurationError("min_replicas must be at least 1")
        if self.max_replicas < self.min_replicas:
            raise ConfigurationError("max_replicas must be at least min_replicas")
        if self.sustain_passes < 1:
            raise ConfigurationError("sustain_passes must be at least 1")
        if self.evaluation_interval_seconds <= 0:
            raise ConfigurationError("evaluation_interval_seconds must be positive")
        if self.cooldown_seconds < 0:
            raise ConfigurationError("cooldown_seconds must be non-negative")


@dataclass(frozen=True)
class AutoscaleAction:
    """One executed replica-count change."""

    now: float
    #: ``"up"`` or ``"down"``.
    direction: str
    replicas_before: int
    replicas_after: int
    #: The utilization estimate that triggered the action.
    utilization: float
    #: Simulated preload cost of the new members (0 for a drain) — members
    #: of the two trust domains come up in parallel, so the max is charged.
    transfer_seconds: float
    #: What drove the action: ``"utilization"`` (the sustained-band policy)
    #: or ``"slo-escalated"`` (a fast-burn alert bypassed the sustain
    #: streak — see :meth:`ReplicaAutoscaler.decide`).
    reason: str = "utilization"

    def describe(self) -> str:
        return (
            f"scale-{self.direction} @ {self.now:.3f}s: "
            f"{self.replicas_before} -> {self.replicas_after} replica(s) "
            f"(utilization {self.utilization:.2f}, "
            f"{self.transfer_seconds * 1e3:.3f}ms transfer, {self.reason})"
        )


class ReplicaAutoscaler:
    """Targets a replica count per trust domain from sustained utilization.

    Drive it from the frontend observe hook (via
    :class:`~repro.control.plane.ControlPlane` with ``observer_driven=True``)
    or from the :class:`AsyncControlDriver`; either way :meth:`decide`
    evaluates the bands at most once per
    ``evaluation_interval_seconds``, and :meth:`apply` /
    :meth:`commit_add` execute the change through the router's
    stage/commit discipline.  Exactly one driver must own the evaluation
    cadence — feeding the same autoscaler from both the observer hook and a
    driver would double-count sustain passes.
    """

    def __init__(
        self,
        router: FleetRouter,
        tracker,
        policy: AutoscalePolicy,
    ) -> None:
        if router.replica_count < policy.min_replicas:
            raise ConfigurationError(
                f"router starts with {router.replica_count} replica(s), "
                f"below min_replicas={policy.min_replicas}"
            )
        if router.replica_count > policy.max_replicas:
            raise ConfigurationError(
                f"router starts with {router.replica_count} replica(s), "
                f"above max_replicas={policy.max_replicas}"
            )
        self.router = router
        self.tracker = tracker
        self.policy = policy
        #: Every executed action, in time order.
        self.actions: List[AutoscaleAction] = []
        #: Optional :class:`~repro.obs.events.EventLog` (hub-wired); every
        #: action emits an ``autoscale.action`` event when set.
        self.events = None
        self._last_eval: Optional[float] = None
        self._last_action_at: Optional[float] = None
        self._above = 0
        self._below = 0
        self._last_utilization = 0.0
        self._reason = "utilization"

    @property
    def last_action(self) -> Optional[AutoscaleAction]:
        return self.actions[-1] if self.actions else None

    def utilization(self) -> float:
        """Total tracked heat over the fleet's current capacity target."""
        capacity = self.policy.target_heat_per_replica * self.router.replica_count
        return sum(self.tracker.heats()) / capacity if capacity > 0 else 0.0

    # -- the policy ------------------------------------------------------------------

    def decide(self, now: float, health=None) -> Optional[str]:
        """``"up"``, ``"down"`` or ``None`` — and advance the hysteresis state.

        Mutates the sustain streaks, so call it exactly once per evaluation
        point (the interval gate makes extra calls within one interval
        harmless).  The first call anchors the evaluation clock.

        ``health`` (a :class:`~repro.obs.slo.HealthSignal`, when the plane
        has an SLO engine wired) is the escalation path: a **fast-burn**
        alert returns ``"up"`` immediately — no evaluation interval, no
        sustain streak — because a paging-severity latency burn means the
        fleet is underwater *now* and the cheapest mitigation we control is
        more replicas.  Only the action cooldown and ``max_replicas`` still
        gate it (with ``cooldown_seconds=0`` an unresolved burn adds one
        replica per pass until the ceiling).  Any active burn (fast or
        slow) also vetoes scale-*down*: capacity is never shed while the
        budget burns, however idle utilization claims the fleet is.  The
        executed action carries ``reason="slo-escalated"`` so pass reports
        distinguish it from band-driven scaling.
        """
        if (
            health is not None
            and getattr(health, "fast_burn", False)
            and self.router.replica_count < self.policy.max_replicas
            and (
                self._last_action_at is None
                or now - self._last_action_at >= self.policy.cooldown_seconds
            )
        ):
            self._last_utilization = self.utilization()
            self._reason = "slo-escalated"
            return "up"
        if self._last_eval is None:
            self._last_eval = now
            return None
        if now - self._last_eval < self.policy.evaluation_interval_seconds:
            return None
        self._last_eval = now
        utilization = self.utilization()
        self._last_utilization = utilization
        if utilization >= self.policy.scale_up_utilization:
            self._above += 1
            self._below = 0
        elif utilization <= self.policy.scale_down_utilization:
            self._below += 1
            self._above = 0
        else:
            self._above = 0
            self._below = 0
        if (
            self._last_action_at is not None
            and now - self._last_action_at < self.policy.cooldown_seconds
        ):
            return None
        count = self.router.replica_count
        if self._above >= self.policy.sustain_passes and count < self.policy.max_replicas:
            self._reason = "utilization"
            return "up"
        if self._below >= self.policy.sustain_passes and count > self.policy.min_replicas:
            if health is not None and getattr(health, "burning", False):
                # Utilization says shed a replica, the SLO says requests
                # are already missing their target: never give up capacity
                # while the budget burns (the streak survives, so the drain
                # happens promptly once the alerts resolve).
                return None
            self._reason = "utilization"
            return "down"
        return None

    def maybe_scale(self, now: float, health=None) -> Optional[AutoscaleAction]:
        """The observer-hook entry point: decide, then apply in one step."""
        decision = self.decide(now, health=health)
        if decision is None:
            return None
        return self.apply(decision, now)

    # -- execution -------------------------------------------------------------------

    def apply(self, decision: str, now: float) -> AutoscaleAction:
        """Execute a :meth:`decide` outcome (stage + commit inline)."""
        if decision == "up":
            return self.commit_add(self.router.stage_replicas(), now)
        if decision != "down":
            raise ConfigurationError(f"unknown autoscale decision {decision!r}")
        before = self.router.replica_count
        self.router.drain_replica()
        return self._record("down", before, transfer_seconds=0.0, now=now)

    def commit_add(self, staged: StagedReplicas, now: float) -> AutoscaleAction:
        """Commit an already-staged scale-up (the driver stages off-gate)."""
        before = self.router.replica_count
        members = self.router.commit_replicas(staged)
        transfer = max(
            (
                member.preload_report.total
                for member in members
                if member.preload_report is not None
            ),
            default=0.0,
        )
        return self._record("up", before, transfer_seconds=transfer, now=now)

    def _record(
        self, direction: str, before: int, transfer_seconds: float, now: float
    ) -> AutoscaleAction:
        action = AutoscaleAction(
            now=now,
            direction=direction,
            replicas_before=before,
            replicas_after=self.router.replica_count,
            utilization=self._last_utilization,
            transfer_seconds=transfer_seconds,
            reason=self._reason,
        )
        self._reason = "utilization"
        self.actions.append(action)
        self._last_action_at = now
        self._above = 0
        self._below = 0
        if self.events is not None:
            self.events.emit(
                "autoscale.action",
                now=now,
                direction=direction,
                replicas=action.replicas_after,
                utilization=action.utilization,
                transfer_seconds=transfer_seconds,
                reason=action.reason,
            )
        return action


# -- the async control driver ----------------------------------------------------------


class AsyncControlDriver:
    """A managed asyncio task running periodic control passes under the gate.

    Owns the loop the observer hook cannot: frontend observers run while
    holding a *reader* slot, so a reconfiguration there would deadlock
    against the flush that invoked it
    (:meth:`~repro.pir.async_frontend.AsyncPIRFrontend.reconfigure`
    documents this).  The driver instead sleeps ``interval_seconds``
    between passes and runs each pass through the frontend's
    writer-preferring quiesce, so live flushes drain first and none spans
    the change.

    ``clock`` is injected — a zero-argument callable returning seconds.
    Production callers pass the event loop's ``loop.time`` (from *outside*
    this package); tests pass a simulated clock and a cooperative ``sleep``
    so passes fire deterministically.  ``tools/lint.py`` rejects both
    ``time.*`` and event-loop ``.time()`` reads under ``src/repro/control/``,
    which is what keeps this driver (and everything it calls) wall-clock
    free and unit-testable.
    """

    def __init__(
        self,
        plane,
        frontend,
        interval_seconds: float,
        clock: Callable[[], float],
        sleep: Optional[Callable[[float], "asyncio.Future"]] = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ConfigurationError("interval_seconds must be positive")
        if clock is None:
            raise ConfigurationError(
                "inject a clock (the event loop's loop.time, or a simulated "
                "clock in tests) — the control package never reads wall time"
            )
        self.plane = plane
        self.frontend = frontend
        self.interval_seconds = interval_seconds
        self._clock = clock
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._task: Optional["asyncio.Task"] = None
        self._stopping = False
        #: Completed control passes.
        self.passes = 0
        #: Errors survived by the loop (a failed pass never kills the driver).
        self.errors: List[BaseException] = []

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    def start(self) -> "asyncio.Task":
        """Spawn the driver task on the running loop (idempotence is an error:
        two drivers would race their passes through the same gate)."""
        if self.running:
            raise ConfigurationError("control driver already running")
        self._stopping = False
        self._task = asyncio.get_running_loop().create_task(self._run())
        return self._task

    async def stop(self) -> None:
        """Cancel the driver task and wait for it to unwind."""
        self._stopping = True
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    async def _run(self) -> None:
        while not self._stopping:
            await self._sleep(self.interval_seconds)
            if self._stopping:
                break
            try:
                await self.run_once(float(self._clock()))
            except asyncio.CancelledError:
                raise
            except Exception as error:
                # A pass that fails (a child refusing its slice, a stale
                # staging) must not kill the management loop: the data plane
                # is untouched (stage-before-commit), so the next pass
                # genuinely retries.  Kept for inspection, like the async
                # frontend routes observer faults to the loop handler.
                self.errors.append(error)

    async def run_once(self, now: float):
        """One control pass: stage off-gate, commit + rebalance under it.

        Returns ``(rebalance_report, autoscale_action)`` (either may be
        ``None``).  A scale-up's replica members are prepared in a worker
        thread *before* the writer gate is taken — live flushes keep
        flowing through the snapshot-consistent journal — and only the
        dirty-update replay + install commits under the gate, followed by
        the rebalance pass so new members ride any reshape like everyone
        else.
        """
        plane = self.plane
        autoscaler = getattr(plane, "autoscaler", None)
        health = plane.current_health(now) if hasattr(plane, "current_health") else None
        decision = (
            autoscaler.decide(now, health=health) if autoscaler is not None else None
        )
        staged: Optional[StagedReplicas] = None
        if decision == "up":
            staged = await asyncio.to_thread(autoscaler.router.stage_replicas)

        def commit():
            action = None
            if decision == "up":
                action = autoscaler.commit_add(staged, now)
            elif decision == "down":
                action = autoscaler.apply("down", now)
            report = (
                plane.rebalancer.maybe_rebalance(now, health=health)
                if plane.rebalancer is not None
                else None
            )
            return report, action

        try:
            report, action = await self.frontend.reconfigure(commit)
        except Exception:
            if staged is not None:
                autoscaler.router.abandon_replicas(staged)
            raise
        self.passes += 1
        return report, action
