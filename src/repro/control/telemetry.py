"""Heat telemetry: decaying per-shard query-rate windows from live traffic.

The placement formulas in :mod:`repro.shard.fleet` price a shard by its
*heat* — expected queries touching it per operating window.  Offline, that
number comes from a trace sample; online, it has to be measured from the
batches the frontend actually flushes, and it has to *age*: a shard that was
hot an hour ago but is cold now must not stay pinned to preloaded PIM
forever.

A :class:`HeatTracker` is that measurement.  It is a frontend *observer*
(the same per-flush hook the AIMD batching policy uses for utilization —
see :func:`repro.pir.frontend.fold_metrics`), so both the simulated-clock
and the asyncio frontends feed it for free: every flushed batch's routed
indices are folded into the current window, and completed windows are
blended into an exponentially decayed estimate.  ``heats()`` then returns
per-window queries per shard — exactly the units
:func:`repro.shard.fleet.plan_placements` expects, and (by construction,
since :func:`repro.shard.fleet.heats_from_trace` routes through this class)
exactly the units offline planning uses.

The tracker is also topology-aware.  Alongside the per-shard vectors it
keeps sparse *per-record* counterparts, which give the control plane
sub-shard resolution: :meth:`HeatTracker.split_point` finds the
block-aligned in-shard heat median an online split should cut at, and
:meth:`HeatTracker.remap` carries both the live window and the smoothed
estimate across a :class:`~repro.shard.plan.TopologyChange`
(record-rate-weighted on a split, summed on a merge) — so telemetry
survives a reshape instead of resetting, and the very next placement pass
still sees where the load is.

The control plane runs on the **simulated clock only**: ``now`` always
comes from the caller (the sync frontend's arrival stamps, the asyncio
loop's time), never from ``time.time()`` — ``tools/lint.py`` enforces that
for this whole package, which is what keeps rebalancing decisions
deterministic and unit-testable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError, ProtocolError
from repro.shard.plan import ShardPlan, ShardSpec, TopologyChange

#: Decayed per-record entries below this are dropped at every window roll —
#: the per-record map must stay proportional to the *live* hot set, not grow
#: monotonically with every record ever queried.
_PRUNE_BELOW = 1e-9


class HeatTracker:
    """Decaying sliding-window estimate of per-shard query heat.

    Counts are kept per window of ``window_seconds`` simulated time.  When
    a window completes, it is folded into the running estimate with an
    exponential moving average — ``smoothed = decay * smoothed +
    (1 - decay) * window_count`` — so old hotness ages out at a rate the
    caller controls (``decay`` is the weight history keeps per window).

    ``heats()`` reports the estimate over **completed** windows only: the
    in-progress window is deliberately excluded, because its counts start
    at zero after every roll and blending them raw would make the estimate
    dip ~``decay``-fold right after each roll and recover across the
    window — a shard priced near a placement break-even would then flap
    between kinds depending on where within the window a rebalance pass
    happens to fire, paying the migration transfer each time.  Before the
    first window completes the raw counts seen so far are the only
    estimate there is (which is why a one-shot offline trace through
    :func:`repro.shard.fleet.heats_from_trace` yields plain per-shard
    counts).
    """

    def __init__(
        self,
        plan: ShardPlan,
        window_seconds: float = 1.0,
        decay: float = 0.5,
    ) -> None:
        if window_seconds <= 0:
            raise ConfigurationError("window_seconds must be positive")
        if not 0.0 <= decay < 1.0:
            raise ConfigurationError("decay must be in [0, 1)")
        self.plan = plan
        self.window_seconds = window_seconds
        self.decay = decay
        #: Completed windows folded into the estimate so far.
        self.windows_completed = 0
        #: Indices observed over the tracker's lifetime (diagnostic).
        self.observed_indices = 0
        self._window_counts = [0.0] * plan.num_shards
        self._smoothed: Optional[List[float]] = None
        self._window_start: Optional[float] = None
        # Per-record counterparts of the per-shard vectors, kept sparse
        # (records never queried hold no entry; cold entries are pruned at
        # every roll).  They exist for the topology lifecycle: the in-shard
        # heat median a split cuts at (:meth:`split_point`) and the
        # record-rate weights a reshape remap divides shard heat by
        # (:meth:`remap`) both need sub-shard resolution the per-shard
        # vectors cannot provide.
        self._window_index: Dict[int, float] = {}
        self._smoothed_index: Optional[Dict[int, float]] = None
        #: Optional structured event log (:class:`repro.obs.events.EventLog`),
        #: wired by the observability hub; window rolls and remaps emit there.
        self.events = None

    # -- feeding ----------------------------------------------------------------

    def observe_batch(self, indices: Sequence[int], now: float) -> None:
        """Fold one flushed batch's record indices into the current window.

        This is the frontend observer hook: ``now`` is the flush instant on
        the frontend's clock (simulated arrival stamps for the sync
        frontend, the event loop's clock for the asyncio one).
        """
        self.advance(now)
        for shard_index, routed in self.plan.route_records(indices).items():
            self._window_counts[shard_index] += len(routed)
        for index in indices:
            self._window_index[index] = self._window_index.get(index, 0.0) + 1.0
        self.observed_indices += len(indices)

    def advance(self, now: float) -> None:
        """Advance the simulated clock, rolling any windows that completed.

        Idle time decays heat too: rolling three empty windows ages the
        estimate exactly as three windows of zero traffic would.
        """
        if self._window_start is None:
            self._window_start = now
            return
        if now < self._window_start:
            raise ProtocolError(
                f"time moves forward: {now} is before the current window "
                f"start {self._window_start}"
            )
        completed = int((now - self._window_start) // self.window_seconds)
        if completed < 1:
            return
        # First roll folds the live counts; the remaining completed-1
        # windows are empty, and an empty-window blend is exactly
        # ``smoothed *= decay`` — applied in closed form so a long idle gap
        # (this hook runs inside every frontend flush) costs O(shards), not
        # O(gap / window_seconds) list allocations.
        self._roll()
        if completed > 1:
            factor = self.decay ** (completed - 1)
            if self._smoothed is not None:
                self._smoothed = [value * factor for value in self._smoothed]
            if self._smoothed_index is not None:
                self._smoothed_index = self._prune(
                    {
                        index: value * factor
                        for index, value in self._smoothed_index.items()
                    }
                )
            self.windows_completed += completed - 1
        self._window_start += completed * self.window_seconds
        if self.events is not None:
            self.events.emit(
                "heat.window_rolled",
                now=now,
                rolled=completed,
                windows=self.windows_completed,
                total_heat=sum(self.heats()),
            )

    def _roll(self) -> None:
        self._smoothed = self._blend(self._smoothed, self._window_counts)
        self._smoothed_index = self._blend_index(
            self._smoothed_index, self._window_index
        )
        self._window_counts = [0.0] * self.plan.num_shards
        self._window_index = {}
        self.windows_completed += 1

    def _blend(
        self, smoothed: Optional[List[float]], counts: Sequence[float]
    ) -> List[float]:
        if smoothed is None:
            return list(counts)
        return [
            self.decay * old + (1.0 - self.decay) * new
            for old, new in zip(smoothed, counts)
        ]

    def _blend_index(
        self, smoothed: Optional[Dict[int, float]], counts: Dict[int, float]
    ) -> Dict[int, float]:
        if smoothed is None:
            return dict(counts)
        blended = {
            index: self.decay * smoothed.get(index, 0.0)
            + (1.0 - self.decay) * counts.get(index, 0.0)
            for index in smoothed.keys() | counts.keys()
        }
        return self._prune(blended)

    @staticmethod
    def _prune(estimate: Dict[int, float]) -> Dict[int, float]:
        return {
            index: value for index, value in estimate.items() if value > _PRUNE_BELOW
        }

    # -- reading ----------------------------------------------------------------

    def heats(self) -> List[float]:
        """Per-window queries per shard, one entry per shard of the plan.

        The natural input for :func:`repro.shard.fleet.plan_placements`:
        the decayed estimate over completed windows (phase-stable — see the
        class docstring), falling back to the raw live counts before the
        first window completes.  State is not mutated; reading is free.
        """
        if self._smoothed is None:
            return list(self._window_counts)
        return list(self._smoothed)

    def shard_heat(self, shard_index: int) -> float:
        """The current heat estimate for one shard (cache admission helper)."""
        if not 0 <= shard_index < self.plan.num_shards:
            raise ConfigurationError(
                f"shard index {shard_index} out of range [0, {self.plan.num_shards})"
            )
        return self.heats()[shard_index]

    def record_heat(self, record_index: int) -> float:
        """The heat of the shard owning ``record_index``."""
        return self.heats()[self.plan.shard_for_record(record_index).index]

    def range_heat(self, shard_index: int, start: int, stop: int) -> float:
        """The heat of ``[start, stop)`` within one shard, on the
        :meth:`heats` basis.

        What a cost-aware reshape policy prices a *hypothetical* split half
        with before any plan exists for it: the shard's heat apportioned by
        the live per-record estimate over the range (count-proportional when
        the shard has no recorded heat — same convention as remapping).
        """
        if not 0 <= shard_index < self.plan.num_shards:
            raise ConfigurationError(
                f"shard index {shard_index} out of range [0, {self.plan.num_shards})"
            )
        shard = self.plan.shards[shard_index]
        start = max(start, shard.start)
        stop = min(stop, shard.stop)
        if stop <= start:
            return 0.0
        weight = self._overlap_weight(shard, start, stop, self._index_estimate())
        return self.heats()[shard_index] * weight

    # -- the topology lifecycle ---------------------------------------------------

    def _index_estimate(self) -> Dict[int, float]:
        """Per-record heat on the same completed-windows basis as :meth:`heats`."""
        if self._smoothed_index is None:
            return self._window_index
        return self._smoothed_index

    def split_point(self, shard_index: int) -> Optional[int]:
        """The block-aligned in-shard heat median of one shard, or ``None``.

        The natural cut for an online split: the block boundary dividing the
        shard's live per-record heat most evenly, so each half inherits
        about half the load (a midpoint cut of a Zipf-headed shard would
        leave one half as hot as the whole).  When several boundaries tie —
        a Zipf head concentrated inside a *single* block makes every cut
        equally uneven — the tie breaks toward the cut whose hotter side
        spans the fewest records: that isolates the head into a minimal
        shard (which the policy then leaves alone, being single-block)
        instead of shaving useless cold slivers off the far end.  Falls
        back to the middle boundary when the shard has no recorded heat;
        returns ``None`` when the shard spans fewer than two blocks
        (nothing to cut at).
        """
        if not 0 <= shard_index < self.plan.num_shards:
            raise ConfigurationError(
                f"shard index {shard_index} out of range [0, {self.plan.num_shards})"
            )
        shard = self.plan.shards[shard_index]
        block = self.plan.block_records
        candidates = list(range(shard.start + block, shard.stop, block))
        # Aligned plans keep every internal boundary (and so every shard
        # start) on a block multiple; guard anyway for hand-built plans.
        candidates = [at for at in candidates if at % block == 0]
        if not candidates:
            return None
        estimate = self._index_estimate()
        # Per-candidate prefix heat in one pass over the sparse entries.
        bucket_heat = [0.0] * (len(candidates) + 1)
        total = 0.0
        for index, value in estimate.items():
            if shard.start <= index < shard.stop:
                position = (index - shard.start) // block
                bucket_heat[min(position, len(candidates))] += value
                total += value
        if total <= 0:
            return candidates[len(candidates) // 2]
        best = None  # (median gap, hotter-side records, at)
        left = 0.0
        for position, at in enumerate(candidates):
            left += bucket_heat[position]
            gap = abs(left - total / 2.0)
            hot_side_records = (
                at - shard.start if left >= total - left else shard.stop - at
            )
            key = (gap, hot_side_records, at)
            if best is None or key < best:
                best = key
        return best[2]

    def remap(self, change: TopologyChange) -> None:
        """Carry the decaying windows across a topology change.

        Telemetry must *survive* a reshape, not reset: zeroing the vectors
        would blind the next placement pass exactly when it acts (right
        after a split the fleet would look uniformly cold).  Every old
        shard's heat — the live window counts and the smoothed estimate
        alike — is divided over the new shards covering its range,
        weighted by the measured per-record rates inside each overlap
        (**record-rate-weighted split**), falling back to record-count
        proportions where no per-record heat was recorded; a merge's new
        shard simply receives the **sum** of its parents (the weights of
        whole overlaps are 1).  Total heat is conserved by construction.
        """
        change.require_built_on(self.plan, "this tracker")
        self._window_counts = self._remap_vector(
            change, self._window_counts, self._window_index
        )
        if self._smoothed is not None:
            self._smoothed = self._remap_vector(
                change,
                self._smoothed,
                self._smoothed_index if self._smoothed_index is not None else {},
            )
        self.plan = change.new_plan
        if self.events is not None:
            self.events.emit(
                "heat.remapped",
                old_version=change.old_plan.version,
                new_version=change.new_plan.version,
                shards=change.new_plan.num_shards,
                total_heat=sum(self.heats()),
            )

    def shape_state(self) -> tuple:
        """An opaque snapshot of the remappable state (plan + shard vectors).

        Taken by the rebalancer before a reshape pass so a data-plane apply
        that fails midway can :meth:`restore_shape` the telemetry to the
        plan the fleet still runs — without it, a failed pass would leave
        the tracker one version ahead forever and every later pass would
        refuse to run.  Cheap: the vectors are copied, the per-record maps
        (which a remap never mutates) are not.
        """
        return (
            self.plan,
            list(self._window_counts),
            list(self._smoothed) if self._smoothed is not None else None,
        )

    def restore_shape(self, state: tuple) -> None:
        """Roll the remappable state back to a :meth:`shape_state` snapshot."""
        plan, window_counts, smoothed = state
        self.plan = plan
        self._window_counts = list(window_counts)
        self._smoothed = list(smoothed) if smoothed is not None else None

    def _remap_vector(
        self,
        change: TopologyChange,
        values: List[float],
        rates: Dict[int, float],
    ) -> List[float]:
        """One shard vector remapped old→new (weights from ``rates``)."""
        remapped = [0.0] * change.new_plan.num_shards
        old_for_new = change.old_for_new
        for new_shard in change.new_plan.shards:
            for old_index in old_for_new[new_shard.index]:
                old_shard = change.old_plan.shards[old_index]
                start, stop = change.overlap_records(old_index, new_shard.index)
                if stop <= start:
                    continue
                if (start, stop) == (old_shard.start, old_shard.stop):
                    weight = 1.0  # whole overlap: merges sum their parents
                else:
                    weight = self._overlap_weight(old_shard, start, stop, rates)
                remapped[new_shard.index] += values[old_index] * weight
        return remapped

    @staticmethod
    def _overlap_weight(
        old_shard: ShardSpec, start: int, stop: int, rates: Dict[int, float]
    ) -> float:
        """The fraction of ``old_shard``'s heat owned by ``[start, stop)``.

        Measured per-record rates where available; a shard with no recorded
        heat splits proportionally to record counts (there is nothing
        better to weight by, and the vector being divided is ~0 anyway).
        """
        shard_total = 0.0
        overlap_total = 0.0
        for index, value in rates.items():
            if old_shard.start <= index < old_shard.stop:
                shard_total += value
                if start <= index < stop:
                    overlap_total += value
        if shard_total > 0:
            return overlap_total / shard_total
        if old_shard.num_records == 0:
            return 0.0
        return (stop - start) / old_shard.num_records

    def __repr__(self) -> str:
        return (
            f"HeatTracker(shards={self.plan.num_shards}, "
            f"window={self.window_seconds}s, decay={self.decay}, "
            f"windows_completed={self.windows_completed})"
        )
