"""Heat telemetry: decaying per-shard query-rate windows from live traffic.

The placement formulas in :mod:`repro.shard.fleet` price a shard by its
*heat* — expected queries touching it per operating window.  Offline, that
number comes from a trace sample; online, it has to be measured from the
batches the frontend actually flushes, and it has to *age*: a shard that was
hot an hour ago but is cold now must not stay pinned to preloaded PIM
forever.

A :class:`HeatTracker` is that measurement.  It is a frontend *observer*
(the same per-flush hook the AIMD batching policy uses for utilization —
see :func:`repro.pir.frontend.fold_metrics`), so both the simulated-clock
and the asyncio frontends feed it for free: every flushed batch's routed
indices are folded into the current window, and completed windows are
blended into an exponentially decayed estimate.  ``heats()`` then returns
per-window queries per shard — exactly the units
:func:`repro.shard.fleet.plan_placements` expects, and (by construction,
since :func:`repro.shard.fleet.heats_from_trace` routes through this class)
exactly the units offline planning uses.

The control plane runs on the **simulated clock only**: ``now`` always
comes from the caller (the sync frontend's arrival stamps, the asyncio
loop's time), never from ``time.time()`` — ``tools/lint.py`` enforces that
for this whole package, which is what keeps rebalancing decisions
deterministic and unit-testable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.errors import ConfigurationError, ProtocolError
from repro.shard.plan import ShardPlan


class HeatTracker:
    """Decaying sliding-window estimate of per-shard query heat.

    Counts are kept per window of ``window_seconds`` simulated time.  When
    a window completes, it is folded into the running estimate with an
    exponential moving average — ``smoothed = decay * smoothed +
    (1 - decay) * window_count`` — so old hotness ages out at a rate the
    caller controls (``decay`` is the weight history keeps per window).

    ``heats()`` reports the estimate over **completed** windows only: the
    in-progress window is deliberately excluded, because its counts start
    at zero after every roll and blending them raw would make the estimate
    dip ~``decay``-fold right after each roll and recover across the
    window — a shard priced near a placement break-even would then flap
    between kinds depending on where within the window a rebalance pass
    happens to fire, paying the migration transfer each time.  Before the
    first window completes the raw counts seen so far are the only
    estimate there is (which is why a one-shot offline trace through
    :func:`repro.shard.fleet.heats_from_trace` yields plain per-shard
    counts).
    """

    def __init__(
        self,
        plan: ShardPlan,
        window_seconds: float = 1.0,
        decay: float = 0.5,
    ) -> None:
        if window_seconds <= 0:
            raise ConfigurationError("window_seconds must be positive")
        if not 0.0 <= decay < 1.0:
            raise ConfigurationError("decay must be in [0, 1)")
        self.plan = plan
        self.window_seconds = window_seconds
        self.decay = decay
        #: Completed windows folded into the estimate so far.
        self.windows_completed = 0
        #: Indices observed over the tracker's lifetime (diagnostic).
        self.observed_indices = 0
        self._window_counts = [0.0] * plan.num_shards
        self._smoothed: Optional[List[float]] = None
        self._window_start: Optional[float] = None

    # -- feeding ----------------------------------------------------------------

    def observe_batch(self, indices: Sequence[int], now: float) -> None:
        """Fold one flushed batch's record indices into the current window.

        This is the frontend observer hook: ``now`` is the flush instant on
        the frontend's clock (simulated arrival stamps for the sync
        frontend, the event loop's clock for the asyncio one).
        """
        self.advance(now)
        for shard_index, routed in self.plan.route_records(indices).items():
            self._window_counts[shard_index] += len(routed)
        self.observed_indices += len(indices)

    def advance(self, now: float) -> None:
        """Advance the simulated clock, rolling any windows that completed.

        Idle time decays heat too: rolling three empty windows ages the
        estimate exactly as three windows of zero traffic would.
        """
        if self._window_start is None:
            self._window_start = now
            return
        if now < self._window_start:
            raise ProtocolError(
                f"time moves forward: {now} is before the current window "
                f"start {self._window_start}"
            )
        completed = int((now - self._window_start) // self.window_seconds)
        if completed < 1:
            return
        # First roll folds the live counts; the remaining completed-1
        # windows are empty, and an empty-window blend is exactly
        # ``smoothed *= decay`` — applied in closed form so a long idle gap
        # (this hook runs inside every frontend flush) costs O(shards), not
        # O(gap / window_seconds) list allocations.
        self._roll()
        if completed > 1:
            if self._smoothed is not None:
                factor = self.decay ** (completed - 1)
                self._smoothed = [value * factor for value in self._smoothed]
            self.windows_completed += completed - 1
        self._window_start += completed * self.window_seconds

    def _roll(self) -> None:
        self._smoothed = self._blend(self._smoothed, self._window_counts)
        self._window_counts = [0.0] * self.plan.num_shards
        self.windows_completed += 1

    def _blend(
        self, smoothed: Optional[List[float]], counts: Sequence[float]
    ) -> List[float]:
        if smoothed is None:
            return list(counts)
        return [
            self.decay * old + (1.0 - self.decay) * new
            for old, new in zip(smoothed, counts)
        ]

    # -- reading ----------------------------------------------------------------

    def heats(self) -> List[float]:
        """Per-window queries per shard, one entry per shard of the plan.

        The natural input for :func:`repro.shard.fleet.plan_placements`:
        the decayed estimate over completed windows (phase-stable — see the
        class docstring), falling back to the raw live counts before the
        first window completes.  State is not mutated; reading is free.
        """
        if self._smoothed is None:
            return list(self._window_counts)
        return list(self._smoothed)

    def shard_heat(self, shard_index: int) -> float:
        """The current heat estimate for one shard (cache admission helper)."""
        if not 0 <= shard_index < self.plan.num_shards:
            raise ConfigurationError(
                f"shard index {shard_index} out of range [0, {self.plan.num_shards})"
            )
        return self.heats()[shard_index]

    def record_heat(self, record_index: int) -> float:
        """The heat of the shard owning ``record_index``."""
        return self.heats()[self.plan.shard_for_record(record_index).index]

    def __repr__(self) -> str:
        return (
            f"HeatTracker(shards={self.plan.num_shards}, "
            f"window={self.window_seconds}s, decay={self.decay}, "
            f"windows_completed={self.windows_completed})"
        )
