"""The control plane assembled: telemetry → rebalancer → cache over one fleet.

Following RAFDA's separation of application logic from distribution policy,
the pieces of :mod:`repro.control` never touch the PIR protocol — they
observe the running data plane (every flushed batch, through the frontend
observe hook) and reconfigure it (shard migrations, cache contents) between
batches.  A :class:`ControlPlane` is the thin coordinator that wires the
three pieces around an existing :class:`~repro.shard.fleet.FleetRouter`:

* it registers itself as a frontend **observer**, so each flushed batch
  first feeds the :class:`~repro.control.telemetry.HeatTracker` and then
  gives the :class:`~repro.control.rebalancer.Rebalancer` a chance to act —
  the whole loop runs on the frontend's own (simulated or event-loop)
  clock, with no thread and no wall-clock read;
* the optional :class:`~repro.control.cache.HotRecordCache` is attached to
  the frontend's cache slot (requires ``dedup=True`` — same
  trusted-aggregator caveat) and invalidated through
  :meth:`~repro.shard.fleet.FleetRouter.apply_updates`.

Use :func:`controlled_fleet` to build a router with its control plane in
one call, or compose the pieces by hand for finer control.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.control.cache import HotRecordCache
from repro.control.rebalancer import RebalanceReport, Rebalancer
from repro.control.telemetry import HeatTracker
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.shard.fleet import FleetRouter
from repro.shard.plan import ShardPlan


class ControlPlane:
    """Observer tying a tracker, an optional rebalancer and a cache together.

    The object registered on the frontend's ``observers`` list; its
    :meth:`observe_batch` is invoked by the shared flush pipeline
    (:func:`repro.pir.frontend.fold_metrics`) after every batch, for the
    sync and async frontends alike.
    """

    def __init__(
        self,
        tracker: HeatTracker,
        rebalancer: Optional[Rebalancer] = None,
        cache: Optional[HotRecordCache] = None,
    ) -> None:
        self.tracker = tracker
        self.rebalancer = rebalancer
        self.cache = cache

    def observe_batch(self, indices: Sequence[int], now: float) -> None:
        """Fold one flushed batch into the heat window, then maybe rebalance.

        Ordering matters: the batch is folded *before* the rebalance check,
        so a pass always acts on the estimate including the batch that
        triggered it.  The batch itself completed before observers run —
        a migration here never races the scan that reported it.
        """
        self.tracker.observe_batch(indices, now)
        if self.rebalancer is not None:
            self.rebalancer.maybe_rebalance(now)

    @property
    def reports(self) -> List[RebalanceReport]:
        """Rebalance reports so far (empty without a rebalancer)."""
        return self.rebalancer.reports if self.rebalancer is not None else []

    def describe(self) -> List[str]:
        """Plain-text status lines for logs and bench output."""
        lines = [f"telemetry: {self.tracker!r}"]
        heats = self.tracker.heats()
        lines.append(
            "live heats: "
            + ", ".join(f"s{i}={heat:.1f}" for i, heat in enumerate(heats))
        )
        if self.rebalancer is not None:
            lines.append(
                f"rebalancer: {self.rebalancer.total_splits} split(s), "
                f"{self.rebalancer.total_merges} merge(s), "
                f"{self.rebalancer.total_migrations} migration(s) "
                f"over {len(self.rebalancer.reports)} pass(es), "
                f"{self.rebalancer.total_migration_seconds * 1e3:.3f}ms transfer "
                f"(plan v{self.tracker.plan.version}, "
                f"{self.tracker.plan.num_shards} shards)"
            )
            for report in self.rebalancer.reports:
                if report.migrations or report.splits or report.merges:
                    lines.append("  " + report.describe())
        if self.cache is not None:
            stats = self.cache.stats
            lines.append(
                f"hot cache: {len(self.cache)}/{self.cache.capacity} resident, "
                f"{stats.hits} hit(s) / {stats.lookups} lookup(s) "
                f"(rate {stats.hit_rate:.2f}), {stats.evictions} eviction(s), "
                f"{stats.invalidations} invalidation(s)"
            )
        return lines


def controlled_fleet(
    client: PIRClient,
    database: Database,
    plan: ShardPlan,
    heats: Sequence[float],
    window_seconds: float = 1.0,
    decay: float = 0.5,
    rebalance_interval_seconds: Optional[float] = 1.0,
    cache_capacity: Optional[int] = None,
    admit_min_heat: float = 0.0,
    split_heat_share: Optional[float] = None,
    merge_heat_floor: Optional[float] = None,
    min_shards: int = 1,
    max_shards: Optional[int] = None,
    hub=None,
    **router_kwargs,
) -> "tuple[FleetRouter, ControlPlane]":
    """Build a :class:`FleetRouter` with a live control plane attached.

    ``heats`` seeds the *initial* placement exactly as for a bare router;
    from then on the control plane measures its own.  Pass
    ``rebalance_interval_seconds=None`` to observe without migrating, and
    ``cache_capacity`` (with ``dedup=True`` in ``router_kwargs``) to enable
    the hot-record tier; ``admit_min_heat`` makes its admission
    heat-informed.  ``split_heat_share``/``merge_heat_floor`` (with the
    ``min_shards``/``max_shards`` bounds) switch on the rebalancer's
    plan-shape policy: the topology itself then follows the heat — hot
    shards split at their in-shard heat median, adjacent cold shards merge
    — with telemetry remapped (not reset) across every plan version.
    ``hub`` (an :class:`~repro.obs.hub.ObservabilityHub`) instruments the
    whole assembly — frontend flushes, engine batches, shard scans, heat
    windows, rebalance passes and cache churn — in one call; without it
    every telemetry slot stays ``None`` and the data plane runs exactly as
    before.  Returns ``(router, control_plane)``.
    """
    tracker = HeatTracker(plan, window_seconds=window_seconds, decay=decay)
    cache = None
    if cache_capacity is not None:
        cache = HotRecordCache(
            capacity=cache_capacity, tracker=tracker, admit_min_heat=admit_min_heat
        )
    router = FleetRouter(
        client, database, plan, heats, cache=cache, **router_kwargs
    )
    rebalancer = None
    if rebalance_interval_seconds is not None:
        rebalancer = Rebalancer(
            router,
            tracker,
            interval_seconds=rebalance_interval_seconds,
            split_heat_share=split_heat_share,
            merge_heat_floor=merge_heat_floor,
            min_shards=min_shards,
            max_shards=max_shards,
        )
    plane = ControlPlane(tracker, rebalancer=rebalancer, cache=cache)
    router.observers.append(plane)
    if hub is not None:
        # After the plane: flush observers run in list order, so the plane
        # folds heat (and maybe rebalances) before the hub snapshots state.
        hub.attach(router, plane)
    return router, plane
