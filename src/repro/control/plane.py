"""The control plane assembled: telemetry → rebalancer → cache over one fleet.

Following RAFDA's separation of application logic from distribution policy,
the pieces of :mod:`repro.control` never touch the PIR protocol — they
observe the running data plane (every flushed batch, through the frontend
observe hook) and reconfigure it (shard migrations, cache contents) between
batches.  A :class:`ControlPlane` is the thin coordinator that wires the
three pieces around an existing :class:`~repro.shard.fleet.FleetRouter`:

* it registers itself as a frontend **observer**, so each flushed batch
  first feeds the :class:`~repro.control.telemetry.HeatTracker` and then
  gives the :class:`~repro.control.rebalancer.Rebalancer` a chance to act —
  the whole loop runs on the frontend's own (simulated or event-loop)
  clock, with no thread and no wall-clock read;
* the optional :class:`~repro.control.cache.HotRecordCache` is attached to
  the frontend's cache slot (requires ``dedup=True`` — same
  trusted-aggregator caveat) and invalidated through
  :meth:`~repro.shard.fleet.FleetRouter.apply_updates`;
* the optional :class:`~repro.control.autoscaler.ReplicaAutoscaler` rides
  the same hook (``observer_driven=True``) or, on the async frontend, the
  :class:`~repro.control.autoscaler.AsyncControlDriver` the plane manages
  (:meth:`ControlPlane.start_driver`) — a managed asyncio task running
  each control pass through the writer-preferring quiesce gate instead of
  inside a flush's observer chain.

Use :func:`controlled_fleet` to build a router with its control plane in
one call, or compose the pieces by hand for finer control.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.control.autoscaler import (
    AsyncControlDriver,
    AutoscalePolicy,
    DampingPolicy,
    ReplicaAutoscaler,
)
from repro.control.cache import HotRecordCache
from repro.control.rebalancer import RebalanceReport, Rebalancer
from repro.control.telemetry import HeatTracker
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.shard.fleet import FleetRouter
from repro.shard.plan import ShardPlan


class ControlPlane:
    """Observer tying a tracker, an optional rebalancer and a cache together.

    The object registered on the frontend's ``observers`` list; its
    :meth:`observe_batch` is invoked by the shared flush pipeline
    (:func:`repro.pir.frontend.fold_metrics`) after every batch, for the
    sync and async frontends alike.
    """

    def __init__(
        self,
        tracker: HeatTracker,
        rebalancer: Optional[Rebalancer] = None,
        cache: Optional[HotRecordCache] = None,
        autoscaler: Optional[ReplicaAutoscaler] = None,
        observer_driven: bool = True,
    ) -> None:
        self.tracker = tracker
        self.rebalancer = rebalancer
        self.cache = cache
        self.autoscaler = autoscaler
        #: When True (the default), rebalance and autoscale checks run from
        #: the observe hook itself — right for the sync frontend, whose
        #: observers fire with no flush in flight.  Set False when an
        #: :class:`AsyncControlDriver` owns the control cadence: on the
        #: async frontend observers hold a *reader* slot, so acting there
        #: would both deadlock against the quiesce gate and double-drive
        #: the policy clocks.
        self.observer_driven = observer_driven
        #: The managed async driver, once :meth:`start_driver` ran.
        self.driver: Optional[AsyncControlDriver] = None
        #: Optional health provider (an object with ``health(now)`` —
        #: normally the hub's :class:`~repro.obs.slo.SloEngine`, wired by
        #: :meth:`~repro.obs.hub.ObservabilityHub.attach`).  Every control
        #: pass consults it: a fast-burn alert escalates scale-up and holds
        #: cosmetic reshapes while the budget is burning.
        self.health_source = None

    def observe_batch(self, indices: Sequence[int], now: float) -> None:
        """Fold one flushed batch into the heat window, then maybe act.

        Ordering matters: the batch is folded *before* the rebalance and
        autoscale checks, so a pass always acts on the estimate including
        the batch that triggered it.  The batch itself completed before
        observers run — a migration here never races the scan that
        reported it.  With ``observer_driven=False`` only the fold happens;
        the driver owns every decision.
        """
        self.tracker.observe_batch(indices, now)
        if self.observer_driven:
            self.control_pass(now)

    def current_health(self, now: float):
        """The SLO verdict for this pass, or ``None`` without a source.

        Note the one-flush lag on the observer-driven path: flush observers
        run in list order with the plane *before* the hub, so a pass sees
        the SLO state as of the previous flush — deliberate (the plane never
        waits on judgement), and one flush is the tightest cadence any
        signal could change at anyway.
        """
        if self.health_source is None:
            return None
        return self.health_source.health(now)

    def control_pass(self, now: float) -> None:
        """One decision round: autoscale first, then maybe rebalance.

        Scale-before-reshape keeps the pass coherent: a replica installed
        at ``now`` rides the same pass's reshape via ``router.fleets``
        instead of being built against a plan the reshape immediately
        retires.  Both halves see the same health verdict, so an escalated
        scale-up and the reshape hold-down always agree about the burn.
        """
        health = self.current_health(now)
        if self.autoscaler is not None:
            self.autoscaler.maybe_scale(now, health=health)
        if self.rebalancer is not None:
            self.rebalancer.maybe_rebalance(now, health=health)

    # -- the managed async driver ---------------------------------------------------

    def start_driver(
        self,
        frontend,
        interval_seconds: float,
        clock: Callable[[], float],
        sleep=None,
    ) -> AsyncControlDriver:
        """Spawn the plane's :class:`AsyncControlDriver` on the running loop.

        ``frontend`` is the (async) frontend whose ``reconfigure`` gate the
        passes run through; ``clock`` is injected (pass the event loop's
        ``loop.time`` from the caller — this package never reads wall time).
        Flips the plane to driver-owned cadence (``observer_driven=False``)
        so the observer hook keeps folding heat but stops double-driving
        decisions.
        """
        if self.driver is not None and self.driver.running:
            raise ConfigurationError("control driver already running")
        self.observer_driven = False
        self.driver = AsyncControlDriver(
            self, frontend, interval_seconds, clock, sleep=sleep
        )
        self.driver.start()
        return self.driver

    async def stop_driver(self) -> None:
        """Cancel and await the managed driver (no-op when none runs)."""
        if self.driver is not None:
            await self.driver.stop()

    @property
    def reports(self) -> List[RebalanceReport]:
        """Rebalance reports so far (empty without a rebalancer)."""
        return self.rebalancer.reports if self.rebalancer is not None else []

    def describe(self) -> List[str]:
        """Plain-text status lines for logs and bench output."""
        lines = [f"telemetry: {self.tracker!r}"]
        heats = self.tracker.heats()
        lines.append(
            "live heats: "
            + ", ".join(f"s{i}={heat:.1f}" for i, heat in enumerate(heats))
        )
        if self.rebalancer is not None:
            lines.append(
                f"rebalancer: {self.rebalancer.total_splits} split(s), "
                f"{self.rebalancer.total_merges} merge(s), "
                f"{self.rebalancer.total_migrations} migration(s), "
                f"{self.rebalancer.total_suppressed} damped "
                f"over {len(self.rebalancer.reports)} pass(es), "
                f"{self.rebalancer.total_migration_seconds * 1e3:.3f}ms transfer "
                f"(plan v{self.tracker.plan.version}, "
                f"{self.tracker.plan.num_shards} shards)"
            )
            for report in self.rebalancer.reports:
                if (
                    report.migrations
                    or report.splits
                    or report.merges
                    or report.suppressed
                ):
                    lines.append("  " + report.describe())
        if self.autoscaler is not None:
            autoscaler = self.autoscaler
            last = autoscaler.last_action
            lines.append(
                f"autoscaler: {autoscaler.router.replica_count} live replica(s) "
                f"per trust domain, {len(autoscaler.actions)} action(s), "
                f"utilization {autoscaler.utilization():.2f}"
            )
            for action in autoscaler.actions[:-1]:
                lines.append("  " + action.describe())
            if last is not None:
                lines.append("  last action: " + last.describe())
        if self.health_source is not None:
            health = self.health_source.health()
            state = "burning" if health.burning else "healthy"
            if health.fast_burn:
                state = "fast-burn"
            lines.append(
                f"slo health: {state}"
                + (f" ({', '.join(health.active)})" if health.active else "")
            )
        if self.cache is not None:
            stats = self.cache.stats
            lines.append(
                f"hot cache: {len(self.cache)}/{self.cache.capacity} resident, "
                f"{stats.hits} hit(s) / {stats.lookups} lookup(s) "
                f"(rate {stats.hit_rate:.2f}), {stats.evictions} eviction(s), "
                f"{stats.invalidations} invalidation(s)"
            )
        return lines


def controlled_fleet(
    client: PIRClient,
    database: Database,
    plan: ShardPlan,
    heats: Sequence[float],
    window_seconds: float = 1.0,
    decay: float = 0.5,
    rebalance_interval_seconds: Optional[float] = 1.0,
    cache_capacity: Optional[int] = None,
    admit_min_heat: float = 0.0,
    split_heat_share: Optional[float] = None,
    merge_heat_floor: Optional[float] = None,
    min_shards: int = 1,
    max_shards: Optional[int] = None,
    damping: Optional[DampingPolicy] = None,
    autoscale: Optional[AutoscalePolicy] = None,
    observer_driven: bool = True,
    hub=None,
    **router_kwargs,
) -> "tuple[FleetRouter, ControlPlane]":
    """Build a :class:`FleetRouter` with a live control plane attached.

    ``heats`` seeds the *initial* placement exactly as for a bare router;
    from then on the control plane measures its own.  Pass
    ``rebalance_interval_seconds=None`` to observe without migrating, and
    ``cache_capacity`` (with ``dedup=True`` in ``router_kwargs``) to enable
    the hot-record tier; ``admit_min_heat`` makes its admission
    heat-informed.  ``split_heat_share``/``merge_heat_floor`` (with the
    ``min_shards``/``max_shards`` bounds) switch on the rebalancer's
    plan-shape policy: the topology itself then follows the heat — hot
    shards split at their in-shard heat median, adjacent cold shards merge
    — with telemetry remapped (not reset) across every plan version.
    ``damping`` (a :class:`~repro.control.autoscaler.DampingPolicy`) gates
    every shape change and kind migration on amortized economics plus a
    record-range cooldown; ``autoscale`` (an
    :class:`~repro.control.autoscaler.AutoscalePolicy`) adds replica-count
    elasticity from sustained utilization (combine with the router's
    ``initial_replicas`` kwarg to start above one member per trust domain).
    ``observer_driven=False`` builds the plane for an
    :class:`~repro.control.autoscaler.AsyncControlDriver` — the observe
    hook then only folds heat, and :meth:`ControlPlane.start_driver` owns
    the decision cadence.
    ``hub`` (an :class:`~repro.obs.hub.ObservabilityHub`) instruments the
    whole assembly — frontend flushes, engine batches, shard scans, heat
    windows, rebalance passes, autoscale actions and cache churn — in one
    call; without it every telemetry slot stays ``None`` and the data plane
    runs exactly as before.  Returns ``(router, control_plane)``.
    """
    tracker = HeatTracker(plan, window_seconds=window_seconds, decay=decay)
    cache = None
    if cache_capacity is not None:
        cache = HotRecordCache(
            capacity=cache_capacity, tracker=tracker, admit_min_heat=admit_min_heat
        )
    router = FleetRouter(
        client, database, plan, heats, cache=cache, **router_kwargs
    )
    rebalancer = None
    if rebalance_interval_seconds is not None:
        rebalancer = Rebalancer(
            router,
            tracker,
            interval_seconds=rebalance_interval_seconds,
            split_heat_share=split_heat_share,
            merge_heat_floor=merge_heat_floor,
            min_shards=min_shards,
            max_shards=max_shards,
            damping=damping,
        )
    autoscaler = None
    if autoscale is not None:
        autoscaler = ReplicaAutoscaler(router, tracker, autoscale)
    plane = ControlPlane(
        tracker,
        rebalancer=rebalancer,
        cache=cache,
        autoscaler=autoscaler,
        observer_driven=observer_driven,
    )
    router.observers.append(plane)
    if hub is not None:
        # After the plane: flush observers run in list order, so the plane
        # folds heat (and maybe rebalances) before the hub snapshots state.
        hub.attach(router, plane)
    return router, plane
