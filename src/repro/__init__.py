"""IM-PIR: In-Memory Private Information Retrieval — Python reproduction.

The package reproduces the system described in "IM-PIR: In-Memory Private
Information Retrieval" (MIDDLEWARE 2025): a two-server DPF-based PIR scheme
whose memory-bound dpXOR stage is offloaded to a (simulated) UPMEM
processing-in-memory platform, together with the CPU- and GPU-based baselines
it is evaluated against.

Quick tour of the public API:

>>> from repro import Database, IMPIRConfig, IMPIRDeployment
>>> from repro.pim import scaled_down_config
>>> db = Database.random(4096, record_size=32, seed=1)
>>> config = IMPIRConfig(pim=scaled_down_config(num_dpus=8))
>>> deployment = IMPIRDeployment(db, config=config)
>>> deployment.retrieve(1234) == db.record(1234)
True

Sub-packages:

* :mod:`repro.dpf` — distributed point functions (GGM tree, traversals, PRGs)
* :mod:`repro.pir` — the multi-server PIR protocol and reference server
* :mod:`repro.pim` — the UPMEM PIM simulator (DPUs, MRAM/WRAM, kernels, timing)
* :mod:`repro.cpu`, :mod:`repro.gpu` — the processor-centric baselines
* :mod:`repro.core` — IM-PIR itself (partitioning, scheduling, the server)
* :mod:`repro.shard` — sharding: shard plans, replica fleets, placement
* :mod:`repro.analysis` — roofline, breakdowns, speedup reporting
* :mod:`repro.workloads` — synthetic hash-record databases and query traces
* :mod:`repro.bench` — analytic estimators and the per-figure harness
"""

from repro.core.config import IMPIRConfig
from repro.core.engine import QueryEngine, available_backends, create_server
from repro.core.impir import IMPIRDeployment, IMPIRServer
from repro.core.results import IMPIRBatchResult, IMPIRQueryResult
from repro.cpu.cpu_pir import CPUPIRServer
from repro.dpf.dpf import DPF, DPFKey
from repro.gpu.gpu_pir import GPUPIRServer
from repro.pim.config import PIMConfig
from repro.pim.system import UPMEMSystem
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import AdaptiveBatchingPolicy, BatchingPolicy, PIRFrontend
from repro.pir.protocol import MultiServerPIRProtocol
from repro.pir.server import PIRServer
from repro.shard import FleetRouter, ShardPlan, ShardedServer

__version__ = "1.0.0"

__all__ = [
    "IMPIRConfig",
    "QueryEngine",
    "available_backends",
    "create_server",
    "AdaptiveBatchingPolicy",
    "BatchingPolicy",
    "PIRFrontend",
    "FleetRouter",
    "ShardPlan",
    "ShardedServer",
    "IMPIRDeployment",
    "IMPIRServer",
    "IMPIRBatchResult",
    "IMPIRQueryResult",
    "CPUPIRServer",
    "DPF",
    "DPFKey",
    "GPUPIRServer",
    "PIMConfig",
    "UPMEMSystem",
    "PIRClient",
    "Database",
    "MultiServerPIRProtocol",
    "PIRServer",
    "__version__",
]
