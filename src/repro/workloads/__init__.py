"""Workloads: synthetic databases, domain scenarios and query traces."""

from repro.workloads.certificate_transparency import (
    CertificateTransparencyLog,
    build_ct_workload,
)
from repro.workloads.credentials import (
    CompromisedCredentialCorpus,
    build_credential_workload,
    hash_credential,
)
from repro.workloads.generator import (
    HASH_RECORD_SIZE,
    DatabaseSpec,
    paper_batch_sizes,
    paper_breakdown_sizes_gib,
    paper_db_sizes_gib,
    random_hash_database,
    scaled_functional_spec,
    sha256_database,
)
from repro.workloads.traces import QueryTrace, sequential_trace, uniform_trace, zipf_trace

__all__ = [
    "CertificateTransparencyLog",
    "build_ct_workload",
    "CompromisedCredentialCorpus",
    "build_credential_workload",
    "hash_credential",
    "HASH_RECORD_SIZE",
    "DatabaseSpec",
    "paper_batch_sizes",
    "paper_breakdown_sizes_gib",
    "paper_db_sizes_gib",
    "random_hash_database",
    "scaled_functional_spec",
    "sha256_database",
    "QueryTrace",
    "sequential_trace",
    "uniform_trace",
    "zipf_trace",
]
