"""Query traces: which indices clients request, and in what batches.

The PIR protocol's cost is index-oblivious by construction (the all-for-one
principle), but realistic traces still matter for end-to-end examples and for
validating that the batch pipeline returns every answer to the right query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional


from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng


@dataclass(frozen=True)
class QueryTrace:
    """A fixed sequence of record indices to retrieve."""

    indices: tuple
    num_records: int

    def __post_init__(self) -> None:
        if self.num_records <= 0:
            raise ConfigurationError("num_records must be positive")
        for index in self.indices:
            if not 0 <= index < self.num_records:
                raise ConfigurationError(
                    f"trace index {index} out of range [0, {self.num_records})"
                )

    def __len__(self) -> int:
        return len(self.indices)

    def __iter__(self) -> Iterator[int]:
        return iter(self.indices)

    def batches(self, batch_size: int) -> Iterator[List[int]]:
        """Yield the trace in consecutive batches of ``batch_size`` indices."""
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        for start in range(0, len(self.indices), batch_size):
            yield list(self.indices[start:start + batch_size])


def uniform_trace(
    num_records: int, num_queries: int, seed: Optional[int] = None
) -> QueryTrace:
    """Indices drawn uniformly at random (the paper's synthetic query load)."""
    if num_queries <= 0:
        raise ConfigurationError("num_queries must be positive")
    rng = make_rng(seed)
    indices = rng.integers(0, num_records, size=num_queries)
    return QueryTrace(indices=tuple(int(i) for i in indices), num_records=num_records)


def zipf_trace(
    num_records: int,
    num_queries: int,
    exponent: float = 1.1,
    seed: Optional[int] = None,
) -> QueryTrace:
    """Skewed (Zipf-like) indices, modelling popularity-driven lookups.

    Certificate-transparency audits and credential checks are heavily skewed
    toward recently issued certificates / commonly leaked passwords; a Zipf
    trace exercises the same behaviour.  Note the *server-side* cost of PIR is
    unchanged — that independence is itself asserted by the tests.
    """
    if num_queries <= 0:
        raise ConfigurationError("num_queries must be positive")
    if exponent <= 1.0:
        raise ConfigurationError("zipf exponent must be > 1")
    rng = make_rng(seed)
    # Rejection-sample out-of-range ranks instead of wrapping them with
    # ``% num_records``: wrapping folds the distribution's unbounded tail
    # back onto arbitrary in-range indices (rank N+1 onto index 0, the
    # hottest!), distorting exactly the skew the trace exists to model.
    # Rank 1 is always in range, so acceptance probability is bounded away
    # from zero and the loop terminates for any positive ``num_records``.
    indices: List[int] = []
    while len(indices) < num_queries:
        raw = rng.zipf(exponent, size=max(64, num_queries))
        accepted = raw[raw <= num_records]
        indices.extend(int(value - 1) for value in accepted)
    return QueryTrace(indices=tuple(indices[:num_queries]), num_records=num_records)


def sequential_trace(num_records: int, num_queries: int, start: int = 0) -> QueryTrace:
    """Consecutive indices starting at ``start`` (wrapping), for deterministic tests."""
    if num_queries <= 0:
        raise ConfigurationError("num_queries must be positive")
    indices = tuple((start + offset) % num_records for offset in range(num_queries))
    return QueryTrace(indices=indices, num_records=num_records)
