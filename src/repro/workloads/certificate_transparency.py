"""Certificate-transparency auditing workload.

One of the paper's motivating applications (§5.2): CT log auditors store
SHA-256 digests of issued TLS certificates; a domain owner (or monitor) wants
to check whether a particular certificate appears in the log *without
revealing which certificate they are interested in* — leaking the query would
reveal which domains they operate or investigate.

This module synthesises a CT-log-shaped database (SHA-256 digests of
deterministic synthetic certificate entries), provides the digest->index
mapping an auditor would obtain from the log's Merkle metadata, and builds
audit query traces.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.pir.database import Database
from repro.workloads.generator import HASH_RECORD_SIZE, sha256_database
from repro.workloads.traces import QueryTrace, zipf_trace


def _certificate_entry(index: int) -> bytes:
    """Canonical byte encoding of synthetic certificate number ``index``."""
    serial = index + 1
    domain = f"host{index % 100000}.example{index % 997}.org"
    issuer = f"Synthetic CA {index % 17}"
    not_before = 1577836800 + (index % 3650) * 86400  # spread over ~10 years
    return f"serial={serial};cn={domain};issuer={issuer};nb={not_before}".encode()


@dataclass
class CertificateTransparencyLog:
    """A synthetic CT log exposed as a PIR database of certificate digests."""

    num_certificates: int
    record_size: int = HASH_RECORD_SIZE

    def __post_init__(self) -> None:
        if self.num_certificates <= 0:
            raise ConfigurationError("num_certificates must be positive")
        if self.record_size <= 0:
            raise ConfigurationError("record_size must be positive")
        self._database: Optional[Database] = None
        self._index: Optional[Dict[bytes, int]] = None

    # -- database construction ------------------------------------------------------

    def build_database(self) -> Database:
        """The log as a PIR database (record ``i`` = digest of certificate ``i``)."""
        if self._database is None:
            self._database = sha256_database(
                self.num_certificates, _certificate_entry, record_size=self.record_size
            )
        return self._database

    def digest_of(self, certificate_index: int) -> bytes:
        """The full SHA-256 digest of certificate ``certificate_index``."""
        if not 0 <= certificate_index < self.num_certificates:
            raise ConfigurationError("certificate index out of range")
        return hashlib.sha256(_certificate_entry(certificate_index)).digest()

    def lookup_index(self, digest: bytes) -> Optional[int]:
        """Map a digest to its log position (what the public log metadata provides)."""
        if self._index is None:
            self._index = {
                self.digest_of(i)[: self.record_size]: i for i in range(self.num_certificates)
            }
        return self._index.get(digest[: self.record_size])

    # -- query traces ------------------------------------------------------------------

    def audit_trace(
        self, num_audits: int, skew: float = 1.2, seed: Optional[int] = None
    ) -> QueryTrace:
        """Audit lookups skewed toward recently issued certificates."""
        trace = zipf_trace(self.num_certificates, num_audits, exponent=skew, seed=seed)
        # Zipf ranks favour small indices; map rank r to a recent certificate.
        recent_first = tuple(self.num_certificates - 1 - index for index in trace.indices)
        return QueryTrace(indices=recent_first, num_records=self.num_certificates)

    def monitor_trace(self, num_domains: int, seed: Optional[int] = None) -> QueryTrace:
        """A monitor re-checking a fixed set of domains (uniformly spread)."""
        if num_domains <= 0:
            raise ConfigurationError("num_domains must be positive")
        rng = make_rng(seed)
        picks = rng.choice(
            self.num_certificates, size=min(num_domains, self.num_certificates), replace=False
        )
        return QueryTrace(indices=tuple(int(p) for p in picks), num_records=self.num_certificates)

    def verify_inclusion(self, database: Database, certificate_index: int, record: bytes) -> bool:
        """Check that a privately retrieved record matches the expected digest."""
        expected = database.record(certificate_index)
        return record == expected


def build_ct_workload(
    num_certificates: int = 4096, num_audits: int = 32, seed: Optional[int] = None
) -> tuple:
    """Convenience: (log, database, audit trace) for examples and tests."""
    log = CertificateTransparencyLog(num_certificates=num_certificates)
    database = log.build_database()
    trace = log.audit_trace(num_audits, seed=seed)
    return log, database, trace
