"""Compromised-credential checking workload (Have-I-Been-Pwned style).

The paper's second motivating application: breach-notification services store
SHA-256 hashes of leaked passwords; a password manager wants to check whether
a user's credential appears in the corpus without revealing the credential
(or even its hash prefix) to the service.  PIR gives exactly that guarantee.

The workload synthesises a breached-credential corpus, hashes candidate
credentials the same way, and produces check traces mixing hits (credentials
that are in the corpus) and misses (fresh credentials).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.pir.database import Database
from repro.workloads.generator import HASH_RECORD_SIZE, sha256_database
from repro.workloads.traces import QueryTrace

_COMMON_PASSWORDS = (
    "123456", "password", "qwerty", "letmein", "dragon", "monkey", "sunshine",
    "iloveyou", "admin", "welcome", "football", "princess", "shadow", "master",
)


def _leaked_credential(index: int) -> bytes:
    """Canonical encoding of leaked credential number ``index``."""
    base = _COMMON_PASSWORDS[index % len(_COMMON_PASSWORDS)]
    return f"{base}{index}".encode()


def hash_credential(credential: bytes, record_size: int = HASH_RECORD_SIZE) -> bytes:
    """SHA-256 digest of a credential, truncated to the database record size."""
    if record_size <= 0:
        raise ConfigurationError("record_size must be positive")
    return hashlib.sha256(credential).digest()[:record_size]


@dataclass
class CompromisedCredentialCorpus:
    """A synthetic breached-credential corpus exposed as a PIR database."""

    num_credentials: int
    record_size: int = HASH_RECORD_SIZE

    def __post_init__(self) -> None:
        if self.num_credentials <= 0:
            raise ConfigurationError("num_credentials must be positive")
        self._database: Optional[Database] = None

    def build_database(self) -> Database:
        """The corpus as a PIR database of credential hashes."""
        if self._database is None:
            self._database = sha256_database(
                self.num_credentials, _leaked_credential, record_size=self.record_size
            )
        return self._database

    def credential_at(self, index: int) -> bytes:
        """The plaintext credential stored at corpus position ``index``."""
        if not 0 <= index < self.num_credentials:
            raise ConfigurationError("credential index out of range")
        return _leaked_credential(index)

    # -- client-side checking ----------------------------------------------------------

    def check_trace(
        self,
        num_checks: int,
        hit_fraction: float = 0.5,
        seed: Optional[int] = None,
    ) -> Tuple[QueryTrace, List[bytes], List[bool]]:
        """Build a credential-check trace.

        Returns ``(trace, candidate_credentials, expected_hits)``: for a hit
        the trace queries the credential's true corpus position; for a miss it
        queries a random position (the client still learns "not present"
        because the returned hash will not match).
        """
        if num_checks <= 0:
            raise ConfigurationError("num_checks must be positive")
        if not 0.0 <= hit_fraction <= 1.0:
            raise ConfigurationError("hit_fraction must be in [0, 1]")
        rng = make_rng(seed)
        indices: List[int] = []
        candidates: List[bytes] = []
        expected: List[bool] = []
        for check in range(num_checks):
            is_hit = rng.random() < hit_fraction
            if is_hit:
                index = int(rng.integers(0, self.num_credentials))
                candidates.append(self.credential_at(index))
                indices.append(index)
                expected.append(True)
            else:
                candidates.append(f"fresh-credential-{check}-{int(rng.integers(1 << 30))}".encode())
                indices.append(int(rng.integers(0, self.num_credentials)))
                expected.append(False)
        trace = QueryTrace(indices=tuple(indices), num_records=self.num_credentials)
        return trace, candidates, expected

    def is_compromised(self, candidate: bytes, retrieved_record: bytes) -> bool:
        """Client-side verdict: does the retrieved hash match the candidate's?"""
        return hash_credential(candidate, record_size=self.record_size) == retrieved_record


def build_credential_workload(
    num_credentials: int = 4096, num_checks: int = 32, seed: Optional[int] = None
) -> tuple:
    """Convenience: (corpus, database, trace, candidates, expected) bundle."""
    corpus = CompromisedCredentialCorpus(num_credentials=num_credentials)
    database = corpus.build_database()
    trace, candidates, expected = corpus.check_trace(num_checks, seed=seed)
    return corpus, database, trace, candidates, expected
