"""Synthetic PIR database generators.

The paper's evaluation database consists of random 32-byte records standing
in for SHA-256 digests, "a data format widely used across security- and
integrity-critical applications" (§5.2).  The generators here produce the
same shape deterministically, either as purely random bytes or as actual
SHA-256 digests of structured synthetic entries (used by the domain-specific
workloads).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.units import GIB
from repro.pir.database import Database

HASH_RECORD_SIZE = 32


@dataclass(frozen=True)
class DatabaseSpec:
    """Shape of a synthetic PIR database."""

    num_records: int
    record_size: int = HASH_RECORD_SIZE

    def __post_init__(self) -> None:
        if self.num_records <= 0 or self.record_size <= 0:
            raise ConfigurationError("num_records and record_size must be positive")

    @property
    def size_bytes(self) -> int:
        """Total database size."""
        return self.num_records * self.record_size

    @classmethod
    def from_size_bytes(cls, size_bytes: int, record_size: int = HASH_RECORD_SIZE) -> "DatabaseSpec":
        """Spec for a database of approximately ``size_bytes`` (paper axis values)."""
        if size_bytes <= 0:
            raise ConfigurationError("size_bytes must be positive")
        num_records = max(1, size_bytes // record_size)
        return cls(num_records=num_records, record_size=record_size)

    @classmethod
    def from_size_gib(cls, size_gib: float, record_size: int = HASH_RECORD_SIZE) -> "DatabaseSpec":
        """Spec for a database of ``size_gib`` GiB (the paper's x-axis unit)."""
        return cls.from_size_bytes(int(size_gib * GIB), record_size)


def random_hash_database(spec: DatabaseSpec, seed: Optional[int] = None) -> Database:
    """A database of uniformly random ``record_size``-byte records."""
    return Database.random(spec.num_records, spec.record_size, seed=seed)


def sha256_database(
    num_records: int,
    entry_builder: Callable[[int], bytes],
    record_size: int = HASH_RECORD_SIZE,
) -> Database:
    """A database whose records are SHA-256 digests of synthetic entries.

    ``entry_builder(i)`` returns the canonical byte encoding of logical entry
    ``i`` (a certificate, a leaked credential, ...); its digest becomes record
    ``i``.  Digests are truncated/padded to ``record_size`` bytes so non-32-byte
    layouts remain possible for experimentation.
    """
    if num_records <= 0 or record_size <= 0:
        raise ConfigurationError("num_records and record_size must be positive")
    records = np.empty((num_records, record_size), dtype=np.uint8)
    for index in range(num_records):
        digest = hashlib.sha256(entry_builder(index)).digest()
        padded = (digest * (record_size // len(digest) + 1))[:record_size]
        records[index] = np.frombuffer(padded, dtype=np.uint8)
    return Database(records)


def scaled_functional_spec(
    target_spec: DatabaseSpec, max_records: int = 4096
) -> DatabaseSpec:
    """A shrunken spec preserving the record size, for functional validation runs.

    Paper-scale databases (GBs) cannot be materialised in this environment;
    the benchmark harness validates correctness on a database with the same
    record format but at most ``max_records`` records, while the cost model is
    evaluated at the target size.
    """
    if max_records <= 0:
        raise ConfigurationError("max_records must be positive")
    return DatabaseSpec(
        num_records=min(target_spec.num_records, max_records),
        record_size=target_spec.record_size,
    )


def paper_db_sizes_gib() -> List[float]:
    """Database sizes (GiB) swept by the paper's Fig. 9 throughput experiment."""
    return [0.5, 1.0, 2.0, 4.0, 8.0]


def paper_breakdown_sizes_gib() -> List[float]:
    """Database sizes (GiB) swept by the paper's Fig. 10 breakdown experiment."""
    return [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]


def paper_batch_sizes() -> List[int]:
    """Query batch sizes swept by the paper's Fig. 9(b)/(d) experiment."""
    return [4, 8, 16, 32, 64, 128, 256, 512]
