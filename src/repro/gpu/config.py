"""Configuration of the GPU-PIR baseline platform.

The paper compares against the GPU-accelerated DPF-PIR of Lam et al.
(ASPLOS'24) running on an NVIDIA GeForce RTX 4090: 24 GB of GDDR6X at about
1.01 TB/s, a 72 MB L2 cache, and PCIe 4.0 x16 to the host.  Like the CPU
baseline it is processor-centric: the database must stream from VRAM to the
SMs for every query, and anything that does not fit in VRAM has to be staged
over PCIe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.units import GIB, MIB


@dataclass(frozen=True)
class GPUConfig:
    """GPU-PIR platform parameters (RTX 4090 in the paper)."""

    vram_bytes: int = 24 * GIB
    l2_bytes: int = 72 * MIB
    memory_bandwidth: float = 1.01e12
    #: Fraction of peak VRAM bandwidth the select-and-XOR kernel sustains
    #: (irregular per-record predication keeps it below STREAM-like rates).
    memory_efficiency: float = 0.72
    sm_count: int = 128
    frequency_hz: float = 2.235e9
    #: Effective PRG expansion rate for full-domain DPF evaluation on the GPU
    #: (AES-128 block equivalents per second, all SMs).  GPUs lack AES-NI; the
    #: bit-sliced/table implementations used by GPU DPF libraries land in the
    #: low billions of blocks per second.
    prg_blocks_per_second: float = 1.5e9
    #: Host<->device bandwidth (PCIe 4.0 x16, effective).
    pcie_bandwidth: float = 12.5e9
    #: Fixed kernel-launch + synchronisation cost per query.
    kernel_launch_overhead_s: float = 50e-6
    #: Queries processed concurrently by one kernel wave (batched execution).
    concurrent_queries: int = 8

    def __post_init__(self) -> None:
        if self.vram_bytes <= 0 or self.l2_bytes <= 0:
            raise ConfigurationError("memory sizes must be positive")
        if self.memory_bandwidth <= 0 or self.pcie_bandwidth <= 0:
            raise ConfigurationError("bandwidths must be positive")
        if not 0.0 < self.memory_efficiency <= 1.0:
            raise ConfigurationError("memory_efficiency must be in (0, 1]")
        if self.prg_blocks_per_second <= 0:
            raise ConfigurationError("prg_blocks_per_second must be positive")
        if self.concurrent_queries <= 0:
            raise ConfigurationError("concurrent_queries must be positive")

    @property
    def effective_memory_bandwidth(self) -> float:
        """Sustained VRAM bandwidth for the dpXOR kernel."""
        return self.memory_bandwidth * self.memory_efficiency

    def fits_in_vram(self, db_bytes: int, reserve_fraction: float = 0.15) -> bool:
        """Whether a database of ``db_bytes`` fits in VRAM with working headroom."""
        if db_bytes < 0:
            raise ConfigurationError("db_bytes must be non-negative")
        return db_bytes <= self.vram_bytes * (1.0 - reserve_fraction)


#: The paper's GPU platform.
GPU_BASELINE_CONFIG = GPUConfig()
