"""GPU cost model for the DPF-PIR baseline of Lam et al.

The GPU executes both protocol phases itself (the database is preloaded into
VRAM): full-domain DPF evaluation on the SMs, then the dpXOR scan at VRAM
bandwidth.  Per query the host ships the DPF key (tiny) and receives the
32-byte sub-result, so PCIe only matters when the database itself exceeds
VRAM and must be streamed per query — the capacity cliff the model exposes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.events import PhaseTimer
from repro.gpu.config import GPUConfig

#: Same fixed-key single-AES-per-child DPF construction as the other servers.
BLOCKS_PER_LEAF = 1.0

PHASE_EVAL = "eval"
PHASE_DPXOR = "dpxor"
PHASE_PCIE = "pcie_stream"
PHASE_LAUNCH = "kernel_launch"


@dataclass
class GPUBatchEstimate:
    """Latency/throughput estimate for a batch of queries on the GPU baseline."""

    batch_size: int
    latency_seconds: float
    throughput_qps: float
    per_query_breakdown: PhaseTimer
    vram_resident: bool


class GPUModel:
    """Analytic cost model for GPU-PIR."""

    def __init__(self, config: GPUConfig | None = None) -> None:
        self.config = config if config is not None else GPUConfig()

    def dpf_eval_seconds(self, num_leaves: int, blocks_per_leaf: float = BLOCKS_PER_LEAF) -> float:
        """Full-domain DPF evaluation time for one query on the GPU."""
        if num_leaves < 0:
            raise ConfigurationError("num_leaves must be non-negative")
        return num_leaves * blocks_per_leaf / self.config.prg_blocks_per_second

    def dpxor_seconds(self, db_bytes: int) -> float:
        """dpXOR scan time for one query with a VRAM-resident database."""
        if db_bytes < 0:
            raise ConfigurationError("db_bytes must be non-negative")
        return db_bytes / self.config.effective_memory_bandwidth

    def pcie_stream_seconds(self, db_bytes: int) -> float:
        """Time to stream ``db_bytes`` from host memory over PCIe (VRAM overflow)."""
        if db_bytes < 0:
            raise ConfigurationError("db_bytes must be non-negative")
        return db_bytes / self.config.pcie_bandwidth

    def single_query_breakdown(self, num_records: int, record_size: int) -> PhaseTimer:
        """Per-phase latency of one query."""
        db_bytes = num_records * record_size
        timer = PhaseTimer()
        timer.record(PHASE_EVAL, self.dpf_eval_seconds(num_records))
        timer.record(PHASE_DPXOR, self.dpxor_seconds(db_bytes))
        timer.record(PHASE_LAUNCH, self.config.kernel_launch_overhead_s)
        if not self.config.fits_in_vram(db_bytes):
            timer.record(PHASE_PCIE, self.pcie_stream_seconds(db_bytes))
        return timer

    def batch_estimate(self, num_records: int, record_size: int, batch_size: int) -> GPUBatchEstimate:
        """Batch makespan: ``concurrent_queries`` queries share the GPU per wave.

        Queries in a wave run concurrently but share the memory system, so a
        wave takes roughly the per-query time (evaluation parallelises across
        SMs, the scans serialise on bandwidth).  Waves execute back to back.
        """
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        per_query = self.single_query_breakdown(num_records, record_size)
        wave_size = min(self.config.concurrent_queries, batch_size)
        num_waves = -(-batch_size // wave_size)

        # Within a wave: evaluation of the wave's queries shares the SMs (so it
        # scales with wave size only until the PRG rate saturates), while the
        # dpXOR scans are bandwidth-bound and strictly additive.
        eval_wave = per_query.get(PHASE_EVAL) * wave_size
        scan_wave = (per_query.get(PHASE_DPXOR) + per_query.get(PHASE_PCIE)) * wave_size
        launch_wave = self.config.kernel_launch_overhead_s
        wave_seconds = max(eval_wave, scan_wave) + launch_wave

        latency = num_waves * wave_seconds
        throughput = batch_size / latency if latency > 0 else float("inf")
        return GPUBatchEstimate(
            batch_size=batch_size,
            latency_seconds=latency,
            throughput_qps=throughput,
            per_query_breakdown=per_query,
            vram_resident=self.config.fits_in_vram(num_records * record_size),
        )
