"""GPU-PIR: the GPU-accelerated baseline server (functional + cost model).

Functionally identical to the reference server — the GPU changes *where* the
work runs, not *what* is computed — so the functional path answers through
the shared :class:`~repro.core.engine.QueryEngine` over the plain-numpy
:class:`~repro.core.engine.ReferenceBackend`, with the GPU cost model
attached so the comparison benchmarks (Fig. 12) can report simulated
latencies/throughputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.events import PhaseTimer
from repro.core.engine import QueryEngine, ReferenceBackend
from repro.dpf.prf import LengthDoublingPRG
from repro.gpu.config import GPUConfig
from repro.gpu.model import GPUBatchEstimate, GPUModel
from repro.pir.database import Database
from repro.pir.messages import PIRAnswer
from repro.pir.server import Query, ServerStats


@dataclass
class GPUQueryResult:
    """A functional answer plus the simulated per-phase cost of producing it."""

    answer: PIRAnswer
    breakdown: PhaseTimer

    @property
    def latency_seconds(self) -> float:
        """Simulated server-side latency of this query."""
        return self.breakdown.total


@dataclass
class GPUBatchResult:
    """Functional answers plus the simulated makespan for a query batch."""

    answers: List[PIRAnswer]
    estimate: GPUBatchEstimate

    @property
    def latency_seconds(self) -> float:
        """Simulated makespan of the batch."""
        return self.estimate.latency_seconds

    @property
    def throughput_qps(self) -> float:
        """Queries per simulated second."""
        return self.estimate.throughput_qps


class GPUPIRServer:
    """GPU baseline server: reference functional path + GPU cost model."""

    def __init__(
        self,
        database: Database,
        server_id: int = 0,
        config: Optional[GPUConfig] = None,
        prg: Optional[LengthDoublingPRG] = None,
    ) -> None:
        self.database = database
        self.config = config if config is not None else GPUConfig()
        self.model = GPUModel(self.config)
        self.stats = ServerStats()
        self.backend = ReferenceBackend(name="gpu-pir", dpxor_stats=self.stats.dpxor)
        self.engine = QueryEngine(
            self.backend, server_id=server_id, prg=prg, stats=self.stats
        )
        self.engine.prepare(database)

    @property
    def server_id(self) -> int:
        """Identifier of the replica this server plays."""
        return self.engine.server_id

    @property
    def vram_resident(self) -> bool:
        """Whether the database fits in VRAM (otherwise queries stream over PCIe)."""
        return self.config.fits_in_vram(self.database.size_bytes)

    def answer(self, query: Query) -> PIRAnswer:
        """Answer a query functionally (no timing attached)."""
        return self.engine.answer(query).answer

    def answer_with_breakdown(self, query: Query) -> GPUQueryResult:
        """Answer a query and report its per-phase simulated latency."""
        answer = self.engine.answer(query).answer
        breakdown = self.model.single_query_breakdown(
            self.database.num_records, self.database.record_size
        )
        return GPUQueryResult(answer=answer, breakdown=breakdown)

    def answer_batch(self, queries: Sequence[Query]) -> GPUBatchResult:
        """Answer a batch functionally and attach the batch-mode makespan estimate."""
        answers = [r.answer for r in self.engine.answer_many(queries).results]
        estimate = self.model.batch_estimate(
            self.database.num_records, self.database.record_size, batch_size=len(queries)
        )
        return GPUBatchResult(answers=answers, estimate=estimate)

    def estimate_batch(self, num_records: int, record_size: int, batch_size: int) -> GPUBatchEstimate:
        """Batch estimate for an arbitrary database shape (no functional run)."""
        return self.model.batch_estimate(num_records, record_size, batch_size)
