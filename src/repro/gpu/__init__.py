"""GPU-accelerated baseline: GPU cost model and GPU-PIR server."""

from repro.gpu.config import GPU_BASELINE_CONFIG, GPUConfig
from repro.gpu.gpu_pir import GPUBatchResult, GPUPIRServer, GPUQueryResult
from repro.gpu.model import (
    PHASE_DPXOR,
    PHASE_EVAL,
    PHASE_LAUNCH,
    PHASE_PCIE,
    GPUBatchEstimate,
    GPUModel,
)

__all__ = [
    "GPU_BASELINE_CONFIG",
    "GPUConfig",
    "GPUBatchResult",
    "GPUPIRServer",
    "GPUQueryResult",
    "PHASE_DPXOR",
    "PHASE_EVAL",
    "PHASE_LAUNCH",
    "PHASE_PCIE",
    "GPUBatchEstimate",
    "GPUModel",
]
