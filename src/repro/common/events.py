"""Lightweight simulated-time accounting.

The simulators in :mod:`repro.pim`, :mod:`repro.cpu` and :mod:`repro.gpu` do
real work on real buffers but report *model time*: seconds derived from bytes
moved and operations executed under the configured hardware rates.  This
module provides the small ledger used everywhere to accumulate that time per
named phase (``"eval"``, ``"copy_cpu_to_dpu"``, ``"dpxor"``, ...), so a single
mechanism feeds both the end-to-end latency numbers and the per-phase
breakdowns of Figure 10 / Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Tuple


@dataclass
class PhaseTimer:
    """Accumulates simulated seconds under named phases.

    The timer is additive: recording the same phase twice sums the durations.
    Phases are kept in insertion order so breakdown tables print in pipeline
    order.
    """

    durations: Dict[str, float] = field(default_factory=dict)

    def record(self, phase: str, seconds: float) -> None:
        """Add ``seconds`` of simulated time to ``phase``."""
        if seconds < 0:
            raise ValueError(f"negative duration for phase {phase!r}: {seconds}")
        self.durations[phase] = self.durations.get(phase, 0.0) + seconds

    def get(self, phase: str) -> float:
        """Simulated seconds recorded under ``phase`` (0.0 if never recorded)."""
        return self.durations.get(phase, 0.0)

    @property
    def total(self) -> float:
        """Sum of all recorded phases."""
        return sum(self.durations.values())

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer into this one (phase-wise addition)."""
        for phase, seconds in other.durations.items():
            self.record(phase, seconds)

    def merge_parallel(self, other: "PhaseTimer") -> None:
        """Fold another timer assuming it ran concurrently with this one.

        Each phase becomes the max of the two contributions, matching the
        behaviour of independent workers whose per-phase costs overlap.
        """
        for phase, seconds in other.durations.items():
            current = self.durations.get(phase, 0.0)
            self.durations[phase] = max(current, seconds)

    def scaled(self, factor: float) -> "PhaseTimer":
        """Return a new timer with every phase multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        scaled = PhaseTimer()
        for phase, seconds in self.durations.items():
            scaled.record(phase, seconds * factor)
        return scaled

    def fractions(self) -> Dict[str, float]:
        """Return each phase's share of the total (empty dict if total is 0)."""
        total = self.total
        if total <= 0.0:
            return {}
        return {phase: seconds / total for phase, seconds in self.durations.items()}

    def items(self) -> Iterator[Tuple[str, float]]:
        """Iterate over ``(phase, seconds)`` pairs in insertion order."""
        return iter(self.durations.items())

    def as_dict(self) -> Mapping[str, float]:
        """Copy of the underlying phase->seconds mapping."""
        return dict(self.durations)

    def copy(self) -> "PhaseTimer":
        """Independent copy of this timer."""
        duplicate = PhaseTimer()
        duplicate.durations = dict(self.durations)
        return duplicate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{phase}={seconds:.6f}s" for phase, seconds in self.durations.items())
        return f"PhaseTimer({parts})"


@dataclass
class SimClock:
    """A monotonically advancing simulated clock.

    Components that model sequential pipelines (for example a DPU executing
    tasklets then DMA transfers) advance the clock explicitly; components that
    model parallel resources take the max of their children's clocks.
    """

    now: float = 0.0

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError("cannot advance a clock by a negative duration")
        self.now += seconds
        return self.now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to ``timestamp`` if it is in the future."""
        if timestamp > self.now:
            self.now = timestamp
        return self.now

    def reset(self) -> None:
        """Reset the clock to zero."""
        self.now = 0.0
