"""Exception hierarchy shared across the IM-PIR reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch library failures without also swallowing programming errors such as
``TypeError`` raised by misuse of the Python API itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent or out of range."""


class CapacityError(ReproError):
    """A simulated hardware resource (MRAM, WRAM, VRAM, ...) would overflow."""


class ProtocolError(ReproError):
    """A PIR protocol invariant was violated (wrong key, wrong server count, ...)."""


class KeyMismatchError(ProtocolError):
    """A DPF key was used against the wrong domain or the wrong party."""


class DatabaseError(ReproError):
    """The PIR database is malformed or an index is out of range."""


class SchedulingError(ReproError):
    """The batch scheduler was asked to do something impossible."""


class TransferError(ReproError):
    """A simulated CPU<->DPU transfer referenced an invalid buffer or range."""


class KernelError(ReproError):
    """A simulated DPU kernel was launched with invalid arguments."""
