"""Byte/size/time unit helpers.

The paper uses KB/MB/GB for 2**10 / 2**20 / 2**30 bytes; this module fixes the
same convention so database sizes quoted in experiments line up with the
paper's axes.
"""

from __future__ import annotations

KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30

#: Aliases matching the paper's notation (KB/MB/GB are powers of two).
KB = KIB
MB = MIB
GB = GIB

MICROSECOND = 1e-6
MILLISECOND = 1e-3


def bytes_to_gib(num_bytes: int | float) -> float:
    """Convert a byte count to GiB (the paper's "GB")."""
    return float(num_bytes) / GIB


def bytes_to_mib(num_bytes: int | float) -> float:
    """Convert a byte count to MiB (the paper's "MB")."""
    return float(num_bytes) / MIB


def gib(value: float) -> int:
    """Return ``value`` GiB expressed in bytes (rounded down to an int)."""
    return int(value * GIB)


def mib(value: float) -> int:
    """Return ``value`` MiB expressed in bytes (rounded down to an int)."""
    return int(value * MIB)


def kib(value: float) -> int:
    """Return ``value`` KiB expressed in bytes (rounded down to an int)."""
    return int(value * KIB)


def format_bytes(num_bytes: int | float) -> str:
    """Render a byte count with a human-friendly binary suffix.

    >>> format_bytes(2048)
    '2.00 KB'
    >>> format_bytes(3 * GIB)
    '3.00 GB'
    """
    value = float(num_bytes)
    for suffix, scale in (("GB", GIB), ("MB", MIB), ("KB", KIB)):
        if abs(value) >= scale:
            return f"{value / scale:.2f} {suffix}"
    return f"{value:.0f} B"


def format_seconds(seconds: float) -> str:
    """Render a duration using the most readable unit.

    >>> format_seconds(0.0032)
    '3.200 ms'
    """
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= MILLISECOND:
        return f"{seconds / MILLISECOND:.3f} ms"
    return f"{seconds / MICROSECOND:.3f} us"


def throughput_qps(num_queries: int, elapsed_seconds: float) -> float:
    """Queries-per-second for ``num_queries`` completed in ``elapsed_seconds``."""
    if elapsed_seconds <= 0.0:
        raise ValueError("elapsed_seconds must be positive")
    return num_queries / elapsed_seconds
