"""Deterministic randomness helpers.

All stochastic pieces of the library (database generation, naive query shares,
DPF seeds when no explicit seed is given) draw from ``numpy.random.Generator``
instances created here so experiments are reproducible run-to-run.
"""

from __future__ import annotations

import numpy as np

_DEFAULT_SEED = 0x1337_5EED


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a new :class:`numpy.random.Generator`.

    ``seed=None`` still yields a deterministic generator (a fixed library
    default) because reproducibility matters more than entropy for this
    simulation-oriented code base.  Pass an explicit seed to derive independent
    streams.
    """
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(seed)


def random_bytes(num_bytes: int, rng: np.random.Generator | None = None) -> bytes:
    """Return ``num_bytes`` uniformly random bytes from ``rng``."""
    if num_bytes < 0:
        raise ValueError("num_bytes must be non-negative")
    generator = rng if rng is not None else make_rng()
    return generator.integers(0, 256, size=num_bytes, dtype=np.uint8).tobytes()


def random_bit_vector(length: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Return a uint8 vector of ``length`` independent uniform bits."""
    if length < 0:
        raise ValueError("length must be non-negative")
    generator = rng if rng is not None else make_rng()
    return generator.integers(0, 2, size=length, dtype=np.uint8)


def derive_seed(base_seed: int, *labels: int) -> int:
    """Derive a child seed from ``base_seed`` and integer labels.

    Uses a splitmix64-style mix so that streams labelled by (server id,
    query id, ...) are statistically independent while remaining deterministic.
    """
    state = np.uint64(base_seed & 0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        for label in labels:
            state = np.uint64((int(state) + (label & 0xFFFFFFFFFFFFFFFF) + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF)
            z = int(state)
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
            z = (z ^ (z >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
            z = z ^ (z >> 31)
            state = np.uint64(z)
    return int(state)
