"""Roofline model (paper Fig. 3b).

The roofline model bounds a kernel's attainable performance by
``min(peak_compute, operational_intensity * memory_bandwidth)``.  The paper
uses it to show that the server-side PIR operations (dpXOR and, to a lesser
extent, DPF evaluation) sit far left of the ridge point, i.e. they are
memory-bound on a processor-centric machine — the observation motivating the
move to PIM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class KernelCharacteristics:
    """Operations and bytes moved by one kernel invocation."""

    name: str
    operations: float
    bytes_moved: float

    def __post_init__(self) -> None:
        if self.operations < 0 or self.bytes_moved <= 0:
            raise ConfigurationError("operations must be >= 0 and bytes_moved > 0")

    @property
    def operational_intensity(self) -> float:
        """Operations per byte of memory traffic."""
        return self.operations / self.bytes_moved


def dpxor_characteristics(db_bytes: int, record_size: int = 32) -> KernelCharacteristics:
    """Operational profile of the dpXOR scan over a ``db_bytes`` database.

    Per record: one selector test plus (for roughly half the records)
    ``record_size / 8`` 64-bit XORs; traffic is the database itself plus the
    selector vector.  The resulting intensity is a fraction of an op per byte
    — deep inside the memory-bound region.
    """
    if db_bytes <= 0 or record_size <= 0:
        raise ConfigurationError("db_bytes and record_size must be positive")
    num_records = db_bytes // record_size
    operations = num_records * (1 + 0.5 * (record_size / 8))
    bytes_moved = db_bytes + num_records
    return KernelCharacteristics("dpXOR", operations, bytes_moved)


def dpf_eval_characteristics(num_leaves: int, seed_bytes: int = 16) -> KernelCharacteristics:
    """Operational profile of full-domain DPF evaluation.

    Each leaf costs ~2 AES-128 blocks (~2 x 160 table/xor operations with
    AES-NI counted as ~20 ops per block retired) and writes one selector bit;
    traffic is the expanded level state plus the output vector.
    """
    if num_leaves <= 0:
        raise ConfigurationError("num_leaves must be positive")
    ops_per_leaf = 2 * 20.0
    operations = num_leaves * ops_per_leaf
    bytes_moved = num_leaves * (2 * seed_bytes + 1)
    return KernelCharacteristics("Eval", operations, bytes_moved)


def key_gen_characteristics(domain_bits: int) -> KernelCharacteristics:
    """Operational profile of client-side key generation (O(log N) work)."""
    if domain_bits <= 0:
        raise ConfigurationError("domain_bits must be positive")
    operations = domain_bits * 4 * 20.0
    bytes_moved = domain_bits * (16 + 2) + 16
    return KernelCharacteristics("Gen", operations, bytes_moved)


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on the roofline."""

    name: str
    operational_intensity: float
    attainable_gops: float
    memory_bound: bool


class RooflineModel:
    """Classic two-ceiling roofline for a given machine."""

    def __init__(self, peak_gops: float, memory_bandwidth_gbps: float) -> None:
        if peak_gops <= 0 or memory_bandwidth_gbps <= 0:
            raise ConfigurationError("peak_gops and memory_bandwidth_gbps must be positive")
        self.peak_gops = peak_gops
        self.memory_bandwidth_gbps = memory_bandwidth_gbps

    @property
    def ridge_point(self) -> float:
        """Operational intensity at which compute and bandwidth ceilings meet."""
        return self.peak_gops / self.memory_bandwidth_gbps

    def attainable_gops(self, operational_intensity: float) -> float:
        """Attainable performance (Gops/s) at ``operational_intensity`` ops/byte."""
        if operational_intensity <= 0:
            raise ConfigurationError("operational_intensity must be positive")
        return min(self.peak_gops, operational_intensity * self.memory_bandwidth_gbps)

    def is_memory_bound(self, operational_intensity: float) -> bool:
        """Whether a kernel of this intensity is limited by memory bandwidth."""
        return operational_intensity < self.ridge_point

    def place(self, kernel: KernelCharacteristics) -> RooflinePoint:
        """Place one kernel on the roofline."""
        intensity = kernel.operational_intensity
        return RooflinePoint(
            name=kernel.name,
            operational_intensity=intensity,
            attainable_gops=self.attainable_gops(intensity),
            memory_bound=self.is_memory_bound(intensity),
        )

    def place_all(self, kernels: Sequence[KernelCharacteristics]) -> List[RooflinePoint]:
        """Place several kernels on the roofline (Fig. 3b's point set)."""
        return [self.place(kernel) for kernel in kernels]

    def ceiling_series(self, intensities: Sequence[float]) -> List[float]:
        """Roofline ceiling evaluated at each intensity (for plotting/reporting)."""
        return [self.attainable_gops(oi) for oi in intensities]
