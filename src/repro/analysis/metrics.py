"""Throughput/latency series and speedup reporting.

Small data containers used by the benchmark harness to hold one curve of a
figure (e.g. "IM-PIR throughput vs DB size") and to compare two curves the
way the paper does ("IM-PIR improves throughput by up to 3.7x over CPU-PIR").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class MeasurementPoint:
    """One (x, latency, throughput) sample of a sweep."""

    x: float
    latency_seconds: float
    throughput_qps: float

    def __post_init__(self) -> None:
        if self.latency_seconds < 0 or self.throughput_qps < 0:
            raise ConfigurationError("latency and throughput must be non-negative")


@dataclass
class SweepSeries:
    """A named curve: one measurement per x value (DB size, batch size, ...)."""

    name: str
    x_label: str
    points: List[MeasurementPoint] = field(default_factory=list)

    def add(self, x: float, latency_seconds: float, throughput_qps: float) -> None:
        """Append one measurement."""
        self.points.append(MeasurementPoint(x, latency_seconds, throughput_qps))

    @property
    def xs(self) -> List[float]:
        """The sweep's x values, in insertion order."""
        return [point.x for point in self.points]

    @property
    def latencies(self) -> List[float]:
        """Latency values, in insertion order."""
        return [point.latency_seconds for point in self.points]

    @property
    def throughputs(self) -> List[float]:
        """Throughput values, in insertion order."""
        return [point.throughput_qps for point in self.points]

    def point_at(self, x: float) -> MeasurementPoint:
        """The measurement at ``x`` (exact match required)."""
        for point in self.points:
            if math.isclose(point.x, x, rel_tol=1e-9):
                return point
        raise KeyError(f"no measurement at x={x} in series {self.name!r}")


@dataclass
class SpeedupReport:
    """Point-wise ratios between a candidate series and a baseline series."""

    candidate: str
    baseline: str
    x_label: str
    throughput_speedups: Dict[float, float] = field(default_factory=dict)
    latency_speedups: Dict[float, float] = field(default_factory=dict)

    @property
    def max_throughput_speedup(self) -> float:
        """Largest throughput ratio across the sweep (the paper's headline figure)."""
        return max(self.throughput_speedups.values(), default=0.0)

    @property
    def min_throughput_speedup(self) -> float:
        """Smallest throughput ratio across the sweep."""
        return min(self.throughput_speedups.values(), default=0.0)

    @property
    def mean_throughput_speedup(self) -> float:
        """Geometric-mean throughput ratio across the sweep."""
        values = list(self.throughput_speedups.values())
        if not values:
            return 0.0
        return math.exp(sum(math.log(v) for v in values) / len(values))

    @property
    def max_latency_speedup(self) -> float:
        """Largest latency ratio (baseline / candidate) across the sweep."""
        return max(self.latency_speedups.values(), default=0.0)


def compute_speedup(candidate: SweepSeries, baseline: SweepSeries) -> SpeedupReport:
    """Compare two sweeps sharing the same x values."""
    if candidate.x_label != baseline.x_label:
        raise ConfigurationError(
            f"series sweep different axes: {candidate.x_label!r} vs {baseline.x_label!r}"
        )
    report = SpeedupReport(
        candidate=candidate.name, baseline=baseline.name, x_label=candidate.x_label
    )
    for point in candidate.points:
        base = baseline.point_at(point.x)
        if base.throughput_qps > 0:
            report.throughput_speedups[point.x] = point.throughput_qps / base.throughput_qps
        if point.latency_seconds > 0:
            report.latency_speedups[point.x] = base.latency_seconds / point.latency_seconds
    return report


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0 for an empty sequence)."""
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


def format_series_table(series_list: Sequence[SweepSeries], value: str = "throughput") -> str:
    """Render several series as an aligned text table (one row per x value)."""
    if not series_list:
        return ""
    xs = series_list[0].xs
    header = [series_list[0].x_label] + [s.name for s in series_list]
    lines = ["  ".join(f"{h:>18}" for h in header)]
    for i, x in enumerate(xs):
        cells = [f"{x:>18.3f}"]
        for series in series_list:
            point = series.points[i]
            cell = point.throughput_qps if value == "throughput" else point.latency_seconds
            cells.append(f"{cell:>18.3f}")
        lines.append("  ".join(cells))
    return "\n".join(lines)
