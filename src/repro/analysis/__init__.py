"""Analysis helpers: roofline model, phase breakdowns, speedup reporting."""

from repro.analysis.breakdown import BreakdownRow, BreakdownTable, compare_fraction_tables
from repro.analysis.metrics import (
    MeasurementPoint,
    SpeedupReport,
    SweepSeries,
    compute_speedup,
    format_series_table,
    geometric_mean,
)
from repro.analysis.roofline import (
    KernelCharacteristics,
    RooflineModel,
    RooflinePoint,
    dpf_eval_characteristics,
    dpxor_characteristics,
    key_gen_characteristics,
)

__all__ = [
    "BreakdownRow",
    "BreakdownTable",
    "compare_fraction_tables",
    "MeasurementPoint",
    "SpeedupReport",
    "SweepSeries",
    "compute_speedup",
    "format_series_table",
    "geometric_mean",
    "KernelCharacteristics",
    "RooflineModel",
    "RooflinePoint",
    "dpf_eval_characteristics",
    "dpxor_characteristics",
    "key_gen_characteristics",
]
