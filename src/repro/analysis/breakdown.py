"""Phase-breakdown tables (paper Fig. 10 and Table 1).

Turns per-query :class:`~repro.common.events.PhaseTimer` objects into the
stacked-latency series of Fig. 10 and the percentage-contribution rows of
Table 1, plus plain-text rendering used by the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.common.errors import ConfigurationError
from repro.common.events import PhaseTimer


@dataclass
class BreakdownRow:
    """One configuration's per-phase latencies (one bar of Fig. 10)."""

    label: str
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total latency of the row."""
        return sum(self.phases.values())

    def fractions(self) -> Dict[str, float]:
        """Phase shares of the total (0 when the total is zero)."""
        total = self.total
        if total <= 0:
            return {phase: 0.0 for phase in self.phases}
        return {phase: value / total for phase, value in self.phases.items()}


class BreakdownTable:
    """A collection of breakdown rows sharing the same phase set."""

    def __init__(self, phase_order: Sequence[str]) -> None:
        if not phase_order:
            raise ConfigurationError("phase_order must not be empty")
        self.phase_order = list(phase_order)
        self.rows: List[BreakdownRow] = []

    def add_row(self, label: str, timer: PhaseTimer | Mapping[str, float]) -> BreakdownRow:
        """Add one configuration's breakdown (missing phases count as zero)."""
        durations = timer.as_dict() if isinstance(timer, PhaseTimer) else dict(timer)
        phases = {phase: float(durations.get(phase, 0.0)) for phase in self.phase_order}
        row = BreakdownRow(label=label, phases=phases)
        self.rows.append(row)
        return row

    def average_fractions(self) -> Dict[str, float]:
        """Mean phase shares across rows — the quantity Table 1 reports."""
        if not self.rows:
            return {phase: 0.0 for phase in self.phase_order}
        sums = {phase: 0.0 for phase in self.phase_order}
        for row in self.rows:
            for phase, fraction in row.fractions().items():
                sums[phase] += fraction
        return {phase: sums[phase] / len(self.rows) for phase in self.phase_order}

    def totals(self) -> List[float]:
        """Total latency per row, in insertion order."""
        return [row.total for row in self.rows]

    # -- rendering -------------------------------------------------------------------

    def to_text(self, unit: str = "ms", scale: float = 1e3) -> str:
        """Render the table as aligned plain text (latencies in ``unit``)."""
        header = ["config"] + self.phase_order + ["total"]
        lines = ["  ".join(f"{h:>16}" for h in header)]
        for row in self.rows:
            cells = [f"{row.label:>16}"]
            for phase in self.phase_order:
                cells.append(f"{row.phases[phase] * scale:>14.3f}{unit:>2}")
            cells.append(f"{row.total * scale:>14.3f}{unit:>2}")
            lines.append("  ".join(cells))
        return "\n".join(lines)

    def fractions_to_text(self) -> str:
        """Render the average percentage contributions (the Table 1 row)."""
        fractions = self.average_fractions()
        cells = [f"{phase}: {fraction * 100.0:.2f}%" for phase, fraction in fractions.items()]
        return "  ".join(cells)


def compare_fraction_tables(
    measured: Mapping[str, float], reference: Mapping[str, float]
) -> Dict[str, float]:
    """Absolute difference (in percentage points) between two fraction tables.

    Used by EXPERIMENTS.md / the Table 1 benchmark to report how far the
    reproduction's phase shares land from the paper's.
    """
    phases = set(measured) | set(reference)
    return {
        phase: abs(measured.get(phase, 0.0) - reference.get(phase, 0.0)) * 100.0
        for phase in phases
    }
