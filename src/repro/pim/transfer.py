"""CPU <-> DPU transfer engine.

UPMEM has disjoint address spaces for host DRAM and DPU MRAM, so every byte a
DPU processes must be explicitly pushed by the host (and every result pulled
back).  The engine distinguishes three transfer shapes with different
sustained bandwidths:

* **scatter** — a different buffer per DPU (per-query selector shares, and the
  initial database preload);
* **broadcast** — the same buffer replicated to every DPU (used when a DPU
  cluster holds a full database copy smaller than one MRAM bank, and by some
  workloads' metadata);
* **gather** — small per-DPU results pulled back to the host.

Each call performs the functional copy into/out of the DPUs' MRAM and returns
a :class:`TransferReport` carrying the simulated duration from the shared
timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.common.errors import TransferError
from repro.pim.dpu import DPU
from repro.pim.timing import PIMTimingModel


@dataclass
class TransferReport:
    """Outcome of one host<->DPU transfer batch."""

    direction: str
    total_bytes: int
    num_dpus: int
    simulated_seconds: float

    @property
    def effective_bandwidth(self) -> float:
        """Achieved bytes/second including the fixed latency component."""
        if self.simulated_seconds <= 0:
            return 0.0
        return self.total_bytes / self.simulated_seconds


class TransferEngine:
    """Moves data between the host and a set of DPUs, with cost accounting."""

    def __init__(self, timing: PIMTimingModel) -> None:
        self.timing = timing
        self.bytes_to_dpus = 0
        self.bytes_from_dpus = 0

    # -- host -> DPU -------------------------------------------------------------

    def scatter(
        self,
        dpus: Sequence[DPU],
        buffer_name: str,
        arrays: Sequence[np.ndarray],
    ) -> TransferReport:
        """Push a distinct buffer to each DPU under the same MRAM name."""
        if len(dpus) != len(arrays):
            raise TransferError(
                f"scatter needs one array per DPU: {len(dpus)} DPUs, {len(arrays)} arrays"
            )
        total_bytes = 0
        for dpu, array in zip(dpus, arrays):
            flat = np.ascontiguousarray(array, dtype=np.uint8).reshape(-1)
            dpu.store(buffer_name, flat)
            total_bytes += int(flat.size)
        seconds = self.timing.host_to_dpu_seconds(total_bytes)
        self.bytes_to_dpus += total_bytes
        return TransferReport(
            direction="host_to_dpu",
            total_bytes=total_bytes,
            num_dpus=len(dpus),
            simulated_seconds=seconds,
        )

    def broadcast(
        self,
        dpus: Sequence[DPU],
        buffer_name: str,
        array: np.ndarray,
    ) -> TransferReport:
        """Push the same buffer to every DPU (higher sustained bandwidth)."""
        if not dpus:
            raise TransferError("broadcast needs at least one DPU")
        flat = np.ascontiguousarray(array, dtype=np.uint8).reshape(-1)
        for dpu in dpus:
            dpu.store(buffer_name, flat)
        total_bytes = int(flat.size) * len(dpus)
        seconds = self.timing.host_broadcast_seconds(total_bytes)
        self.bytes_to_dpus += total_bytes
        return TransferReport(
            direction="host_to_dpu_broadcast",
            total_bytes=total_bytes,
            num_dpus=len(dpus),
            simulated_seconds=seconds,
        )

    # -- DPU -> host -------------------------------------------------------------

    def gather(
        self,
        dpus: Sequence[DPU],
        buffer_name: str,
        size_bytes: int,
    ) -> tuple:
        """Pull ``size_bytes`` of ``buffer_name`` from every DPU.

        Returns ``(arrays, report)`` where ``arrays`` preserves DPU order.
        """
        if size_bytes <= 0:
            raise TransferError("size_bytes must be positive")
        arrays: List[np.ndarray] = []
        for dpu in dpus:
            arrays.append(dpu.load(buffer_name, size_bytes=size_bytes))
        total_bytes = size_bytes * len(dpus)
        seconds = self.timing.dpu_to_host_seconds(total_bytes)
        self.bytes_from_dpus += total_bytes
        report = TransferReport(
            direction="dpu_to_host",
            total_bytes=total_bytes,
            num_dpus=len(dpus),
            simulated_seconds=seconds,
        )
        return arrays, report
