"""UPMEM topology: chips, ranks and modules.

The hierarchy only matters for capacity accounting and transfer scheduling
(transfers are issued per rank), but modelling it explicitly keeps the
simulator faithful to the hardware the paper describes: 8 DPUs per PIM chip,
8 chips per rank, 2 ranks per module, 128 DPUs and 8 GB of MRAM per module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

from repro.common.errors import ConfigurationError
from repro.pim.config import CHIPS_PER_RANK, DPUS_PER_CHIP, RANKS_PER_MODULE
from repro.pim.dpu import DPU


@dataclass
class PIMChip:
    """Eight DPUs sharing one PIM chip."""

    chip_id: int
    dpus: List[DPU] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.dpus) > DPUS_PER_CHIP:
            raise ConfigurationError(
                f"a PIM chip holds at most {DPUS_PER_CHIP} DPUs, got {len(self.dpus)}"
            )

    @property
    def num_dpus(self) -> int:
        """DPUs present on this chip."""
        return len(self.dpus)


@dataclass
class PIMRank:
    """Eight PIM chips forming one DRAM rank (the unit of host transfers)."""

    rank_id: int
    chips: List[PIMChip] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.chips) > CHIPS_PER_RANK:
            raise ConfigurationError(
                f"a rank holds at most {CHIPS_PER_RANK} chips, got {len(self.chips)}"
            )

    @property
    def dpus(self) -> List[DPU]:
        """All DPUs in this rank, chip order."""
        return [dpu for chip in self.chips for dpu in chip.dpus]

    @property
    def num_dpus(self) -> int:
        """DPUs present in this rank."""
        return sum(chip.num_dpus for chip in self.chips)


@dataclass
class PIMModule:
    """One PIM-enabled DIMM: two ranks, up to 128 DPUs, 8 GB of MRAM."""

    module_id: int
    ranks: List[PIMRank] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.ranks) > RANKS_PER_MODULE:
            raise ConfigurationError(
                f"a module holds at most {RANKS_PER_MODULE} ranks, got {len(self.ranks)}"
            )

    @property
    def dpus(self) -> List[DPU]:
        """All DPUs in this module, rank order."""
        return [dpu for rank in self.ranks for dpu in rank.dpus]

    @property
    def num_dpus(self) -> int:
        """DPUs present in this module."""
        return sum(rank.num_dpus for rank in self.ranks)

    @property
    def mram_bytes(self) -> int:
        """Total MRAM capacity of the module."""
        return sum(dpu.config.mram_bytes for dpu in self.dpus)


def build_topology(dpus: List[DPU]) -> List[PIMModule]:
    """Group a flat DPU list into the chip/rank/module hierarchy."""
    modules: List[PIMModule] = []
    dpus_per_module = DPUS_PER_CHIP * CHIPS_PER_RANK * RANKS_PER_MODULE
    for module_index in range(0, len(dpus), dpus_per_module):
        module_dpus = dpus[module_index:module_index + dpus_per_module]
        ranks: List[PIMRank] = []
        dpus_per_rank = DPUS_PER_CHIP * CHIPS_PER_RANK
        for rank_index in range(0, len(module_dpus), dpus_per_rank):
            rank_dpus = module_dpus[rank_index:rank_index + dpus_per_rank]
            chips = [
                PIMChip(
                    chip_id=chip_index // DPUS_PER_CHIP,
                    dpus=rank_dpus[chip_index:chip_index + DPUS_PER_CHIP],
                )
                for chip_index in range(0, len(rank_dpus), DPUS_PER_CHIP)
            ]
            ranks.append(PIMRank(rank_id=rank_index // dpus_per_rank, chips=chips))
        modules.append(PIMModule(module_id=module_index // dpus_per_module, ranks=ranks))
    return modules


def iter_dpus(modules: List[PIMModule]) -> Iterator[DPU]:
    """Iterate over every DPU in a module list, in topology order."""
    for module in modules:
        for dpu in module.dpus:
            yield dpu
