"""UPMEM PIM simulator: DPUs, memories, kernels, transfers, timing."""

from repro.pim.cluster import (
    ClusterPlan,
    DPUCluster,
    make_clusters,
    max_clusters_for_database,
    plan_clusters,
)
from repro.pim.config import (
    CHIPS_PER_RANK,
    DPUS_PER_CHIP,
    DPUS_PER_MODULE,
    DPUS_PER_RANK,
    RANKS_PER_MODULE,
    UPMEM_PAPER_CONFIG,
    DPUConfig,
    HostConfig,
    PIMConfig,
    TransferConfig,
    scaled_down_config,
)
from repro.pim.dpu import DPU, DPUExecutionReport, Kernel
from repro.pim.kernels import (
    DB_BUFFER,
    RESULT_BUFFER,
    SELECTOR_BUFFER,
    DpXorKernel,
    MramFillKernel,
)
from repro.pim.module import PIMChip, PIMModule, PIMRank, build_topology
from repro.pim.mram import MRAM, MRAMBuffer
from repro.pim.system import DPUSet, LaunchReport, UPMEMSystem
from repro.pim.tasklet import TaskletGroup, TaskletReport
from repro.pim.timing import DpuKernelCost, PIMTimingModel, dpxor_kernel_cost
from repro.pim.transfer import TransferEngine, TransferReport
from repro.pim.wram import WRAM

__all__ = [
    "ClusterPlan",
    "DPUCluster",
    "make_clusters",
    "max_clusters_for_database",
    "plan_clusters",
    "CHIPS_PER_RANK",
    "DPUS_PER_CHIP",
    "DPUS_PER_MODULE",
    "DPUS_PER_RANK",
    "RANKS_PER_MODULE",
    "UPMEM_PAPER_CONFIG",
    "DPUConfig",
    "HostConfig",
    "PIMConfig",
    "TransferConfig",
    "scaled_down_config",
    "DPU",
    "DPUExecutionReport",
    "Kernel",
    "DB_BUFFER",
    "RESULT_BUFFER",
    "SELECTOR_BUFFER",
    "DpXorKernel",
    "MramFillKernel",
    "PIMChip",
    "PIMModule",
    "PIMRank",
    "build_topology",
    "MRAM",
    "MRAMBuffer",
    "DPUSet",
    "LaunchReport",
    "UPMEMSystem",
    "TaskletGroup",
    "TaskletReport",
    "DpuKernelCost",
    "PIMTimingModel",
    "dpxor_kernel_cost",
    "TransferEngine",
    "TransferReport",
    "WRAM",
]
