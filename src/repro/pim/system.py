"""The UPMEM PIM system: host view of the DPU population.

:class:`UPMEMSystem` owns the DPUs (organised into the chip/rank/module
topology), hands out :class:`DPUSet` allocations, and routes transfers and
kernel launches through the shared timing model.  A :class:`DPUSet` is the
unit the IM-PIR pipeline works with: the paper's "single cluster" experiments
use one set spanning all 2,048 DPUs, the clustering experiments split the
population into several sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.common.errors import CapacityError, ConfigurationError, KernelError
from repro.pim.config import PIMConfig
from repro.pim.dpu import DPU, DPUExecutionReport, Kernel
from repro.pim.module import PIMModule, build_topology
from repro.pim.timing import PIMTimingModel
from repro.pim.transfer import TransferEngine, TransferReport


@dataclass
class LaunchReport:
    """Outcome of launching a kernel across a DPU set."""

    kernel_name: str
    num_dpus: int
    simulated_seconds: float
    launch_overhead_seconds: float
    max_dpu_seconds: float
    reports: List[DPUExecutionReport] = field(default_factory=list)

    @property
    def total_instructions(self) -> int:
        """Instructions retired across the whole set."""
        return sum(report.instructions for report in self.reports)

    def results(self) -> List[Any]:
        """Per-DPU kernel results in set order."""
        return [report.result for report in self.reports]


class DPUSet:
    """A host-side handle to a group of allocated DPUs."""

    def __init__(self, dpus: Sequence[DPU], timing: PIMTimingModel, set_id: int = 0) -> None:
        if not dpus:
            raise ConfigurationError("a DPU set needs at least one DPU")
        self.dpus = list(dpus)
        self.timing = timing
        self.set_id = set_id
        self.transfer = TransferEngine(timing)

    def __len__(self) -> int:
        return len(self.dpus)

    @property
    def num_dpus(self) -> int:
        """Number of DPUs in this set."""
        return len(self.dpus)

    @property
    def mram_capacity_bytes(self) -> int:
        """Aggregate MRAM capacity of the set."""
        return sum(dpu.config.mram_bytes for dpu in self.dpus)

    # -- program + data movement ---------------------------------------------------

    def load_program(self, name: str) -> None:
        """Load a kernel binary onto every DPU in the set."""
        for dpu in self.dpus:
            dpu.load_program(name)

    def scatter(self, buffer_name: str, arrays: Sequence[np.ndarray]) -> TransferReport:
        """Distribute distinct per-DPU buffers (one array per DPU, set order)."""
        return self.transfer.scatter(self.dpus, buffer_name, arrays)

    def broadcast(self, buffer_name: str, array: np.ndarray) -> TransferReport:
        """Copy the same buffer to every DPU in the set."""
        return self.transfer.broadcast(self.dpus, buffer_name, array)

    def gather(self, buffer_name: str, size_bytes: int) -> tuple:
        """Collect ``size_bytes`` of ``buffer_name`` from every DPU (set order)."""
        return self.transfer.gather(self.dpus, buffer_name, size_bytes)

    # -- execution -------------------------------------------------------------------

    def launch(
        self,
        kernel: Kernel,
        per_dpu_kwargs: Optional[Sequence[Dict[str, Any]]] = None,
        **common_kwargs: Any,
    ) -> LaunchReport:
        """Launch ``kernel`` on every DPU of the set.

        ``common_kwargs`` are passed to every DPU; ``per_dpu_kwargs`` (if
        given) supplies per-DPU overrides in set order.  The simulated launch
        duration is the fixed launch overhead plus the slowest DPU's kernel
        time — all DPUs run concurrently in the model, exactly as on hardware.
        """
        if per_dpu_kwargs is not None and len(per_dpu_kwargs) != len(self.dpus):
            raise KernelError(
                f"per_dpu_kwargs must have one entry per DPU "
                f"({len(self.dpus)}), got {len(per_dpu_kwargs)}"
            )
        reports: List[DPUExecutionReport] = []
        for index, dpu in enumerate(self.dpus):
            kwargs = dict(common_kwargs)
            if per_dpu_kwargs is not None:
                kwargs.update(per_dpu_kwargs[index])
            reports.append(dpu.launch(kernel, **kwargs))

        overhead = self.timing.launch_seconds(len(self.dpus))
        max_dpu_seconds = max(report.simulated_seconds for report in reports)
        return LaunchReport(
            kernel_name=kernel.name,
            num_dpus=len(self.dpus),
            simulated_seconds=overhead + max_dpu_seconds,
            launch_overhead_seconds=overhead,
            max_dpu_seconds=max_dpu_seconds,
            reports=reports,
        )

    # -- partitioning -----------------------------------------------------------------

    def split(self, num_subsets: int) -> List["DPUSet"]:
        """Split this set into ``num_subsets`` near-equal subsets (cluster mode)."""
        if num_subsets <= 0:
            raise ConfigurationError("num_subsets must be positive")
        if num_subsets > len(self.dpus):
            raise ConfigurationError(
                f"cannot split {len(self.dpus)} DPUs into {num_subsets} subsets"
            )
        subsets: List[DPUSet] = []
        base = len(self.dpus) // num_subsets
        remainder = len(self.dpus) % num_subsets
        start = 0
        for subset_index in range(num_subsets):
            size = base + (1 if subset_index < remainder else 0)
            subsets.append(
                DPUSet(self.dpus[start:start + size], self.timing, set_id=subset_index)
            )
            start += size
        return subsets


class UPMEMSystem:
    """The full PIM server: host + PIM-enabled memory modules."""

    def __init__(self, config: Optional[PIMConfig] = None) -> None:
        self.config = config if config is not None else PIMConfig()
        self.timing = PIMTimingModel(self.config)
        self._dpus = [DPU(dpu_id=i, config=self.config.dpu) for i in range(self.config.num_dpus)]
        self._modules = build_topology(self._dpus)
        self._allocated = 0

    @property
    def num_dpus(self) -> int:
        """DPUs available to this system."""
        return len(self._dpus)

    @property
    def modules(self) -> List[PIMModule]:
        """The chip/rank/module topology of the DPU population."""
        return self._modules

    @property
    def total_mram_bytes(self) -> int:
        """Aggregate MRAM capacity of the system."""
        return sum(dpu.config.mram_bytes for dpu in self._dpus)

    @property
    def aggregate_bandwidth(self) -> float:
        """Aggregate MRAM<->WRAM bandwidth (the paper's headline ~1.79 TB/s)."""
        return self.config.aggregate_mram_bandwidth

    def allocate(self, num_dpus: Optional[int] = None) -> DPUSet:
        """Allocate a set of DPUs (defaults to all of them).

        Allocation is modelled as exclusive: repeated allocations draw from the
        remaining population, matching ``dpu_alloc`` semantics.
        """
        if num_dpus is None:
            num_dpus = len(self._dpus) - self._allocated
        if num_dpus <= 0:
            raise CapacityError("num_dpus must be positive")
        if self._allocated + num_dpus > len(self._dpus):
            raise CapacityError(
                f"cannot allocate {num_dpus} DPUs: "
                f"{len(self._dpus) - self._allocated} of {len(self._dpus)} remain"
            )
        start = self._allocated
        self._allocated += num_dpus
        return DPUSet(self._dpus[start:start + num_dpus], self.timing, set_id=start)

    def release_all(self) -> None:
        """Return every DPU to the free pool (buffers are left in MRAM)."""
        self._allocated = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UPMEMSystem(dpus={self.num_dpus}, modules={len(self._modules)}, "
            f"allocated={self._allocated})"
        )
