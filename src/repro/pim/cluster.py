"""DPU clusters: independent groups of DPUs each serving whole queries.

The paper's §3.4 / §5.4 clustering strategy splits the DPU population into
``C`` clusters.  Each cluster holds a copy of the database (provided it fits
in the cluster's aggregate MRAM) and processes one query at a time, so up to
``C`` queries run concurrently.  With a single cluster every query's dpXOR is
serialised behind the previous one — the configuration used for the large-DB
experiments of Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import CapacityError, ConfigurationError
from repro.pir.database import Database
from repro.pim.system import DPUSet


@dataclass
class ClusterPlan:
    """How a DPU population is divided into query-serving clusters."""

    num_clusters: int
    dpus_per_cluster: int
    db_bytes_per_dpu: int

    @property
    def total_dpus(self) -> int:
        """DPUs used across all clusters."""
        return self.num_clusters * self.dpus_per_cluster


class DPUCluster:
    """One cluster: a DPU set plus the database partition layout it holds."""

    def __init__(self, cluster_id: int, dpu_set: DPUSet) -> None:
        self.cluster_id = cluster_id
        self.dpu_set = dpu_set
        self.preloaded_records = 0
        self.record_size = 0

    @property
    def num_dpus(self) -> int:
        """DPUs in this cluster."""
        return self.dpu_set.num_dpus

    @property
    def mram_capacity_bytes(self) -> int:
        """Aggregate MRAM capacity of this cluster."""
        return self.dpu_set.mram_capacity_bytes

    def can_hold(self, database: Database, reserve_fraction: float = 0.25) -> bool:
        """Whether the cluster's MRAM can hold ``database`` plus working buffers.

        ``reserve_fraction`` keeps headroom for the per-query selector shares
        and result buffers that must coexist with the database in MRAM.
        """
        usable = self.mram_capacity_bytes * (1.0 - reserve_fraction)
        return database.size_bytes <= usable


def plan_clusters(
    total_dpus: int,
    num_clusters: int,
    database: Database,
    mram_bytes_per_dpu: int,
    reserve_fraction: float = 0.25,
) -> ClusterPlan:
    """Validate and describe a clustering of ``total_dpus`` into ``num_clusters``.

    Raises :class:`~repro.common.errors.CapacityError` if a cluster cannot hold
    the full database — the situation in which the paper falls back to the
    single-cluster (database partitioned across all DPUs) strategy.
    """
    if num_clusters <= 0:
        raise ConfigurationError("num_clusters must be positive")
    if total_dpus < num_clusters:
        raise ConfigurationError(
            f"cannot build {num_clusters} clusters out of {total_dpus} DPUs"
        )
    dpus_per_cluster = total_dpus // num_clusters
    db_bytes_per_dpu = -(-database.size_bytes // dpus_per_cluster)
    usable_per_dpu = int(mram_bytes_per_dpu * (1.0 - reserve_fraction))
    if num_clusters > 1 and db_bytes_per_dpu > usable_per_dpu:
        raise CapacityError(
            f"a cluster of {dpus_per_cluster} DPUs cannot hold a "
            f"{database.size_bytes}-byte database "
            f"({db_bytes_per_dpu} bytes/DPU needed, {usable_per_dpu} usable)"
        )
    return ClusterPlan(
        num_clusters=num_clusters,
        dpus_per_cluster=dpus_per_cluster,
        db_bytes_per_dpu=db_bytes_per_dpu,
    )


def make_clusters(dpu_set: DPUSet, num_clusters: int) -> List[DPUCluster]:
    """Split an allocated DPU set into ``num_clusters`` clusters."""
    subsets = dpu_set.split(num_clusters)
    return [DPUCluster(cluster_id=i, dpu_set=subset) for i, subset in enumerate(subsets)]


def max_clusters_for_database(
    total_dpus: int,
    database: Database,
    mram_bytes_per_dpu: int,
    reserve_fraction: float = 0.25,
    limit: Optional[int] = None,
) -> int:
    """Largest power-of-two cluster count whose clusters each hold the full DB."""
    best = 1
    candidate = 2
    while total_dpus // candidate >= 1 and (limit is None or candidate <= limit):
        try:
            plan_clusters(
                total_dpus,
                candidate,
                database,
                mram_bytes_per_dpu,
                reserve_fraction=reserve_fraction,
            )
        except CapacityError:
            break
        best = candidate
        candidate *= 2
    return best
