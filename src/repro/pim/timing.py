"""Cost formulas for the PIM simulator.

Every simulated second reported by :mod:`repro.pim` is computed here, so the
functional simulator (which executes kernels on real buffers) and the analytic
estimators in :mod:`repro.bench.estimators` (which evaluate the same formulas
at paper-scale database sizes) can never disagree about the model.

The dpXOR kernel cost is the maximum of two terms, mirroring how a DPU
overlaps DMA with computation:

* a *DMA term*: every database byte plus every selector byte must cross the
  MRAM<->WRAM interface at the per-DPU bandwidth (~700 MB/s), in transfers of
  at least the DMA granularity;
* an *instruction term*: the 32-bit in-order pipeline retires about one
  instruction per cycle once >= 11 tasklets are resident; the kernel spends a
  per-record bookkeeping overhead (loop, selector test, address arithmetic)
  plus a per-8-byte-word XOR cost for selected records.

For the paper's 32-byte records the instruction term dominates, which is why
the effective per-DPU dpXOR rate sits well below the raw 700 MB/s DMA
bandwidth — the same observation the UPMEM characterisation papers make for
lightweight streaming kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.pim.config import DPUConfig, PIMConfig

#: Instructions charged per record for loop control, selector-bit unpacking
#: and test, DMA bookkeeping and address computation in the DPU dpXOR kernel
#: (a 32-bit in-order core without fused load-op instructions).
INSTRUCTIONS_PER_RECORD_OVERHEAD = 28
#: Instructions per 8-byte word XORed into the accumulator (two 32-bit loads,
#: two XORs, plus address bookkeeping emulating 64-bit ops on a 32-bit core).
INSTRUCTIONS_PER_XOR_WORD = 6
#: Instructions per 8-byte word for the master tasklet's final reduction.
INSTRUCTIONS_PER_REDUCE_WORD = 8


@dataclass
class DpuKernelCost:
    """Breakdown of one DPU's dpXOR kernel execution."""

    dma_seconds: float
    compute_seconds: float
    reduction_seconds: float

    @property
    def total_seconds(self) -> float:
        """Kernel wall time: DMA overlaps compute, the reduction is serial."""
        return max(self.dma_seconds, self.compute_seconds) + self.reduction_seconds


def dpxor_kernel_cost(
    dpu: DPUConfig,
    chunk_bytes: int,
    record_size: int,
    selected_fraction: float = 0.5,
    tasklets: int | None = None,
) -> DpuKernelCost:
    """Cost of one DPU running the dpXOR kernel over ``chunk_bytes`` of database.

    Shared by the functional kernel (:mod:`repro.pim.kernels`), the system-level
    timing model and the analytic estimators so all three agree by construction.
    """
    if chunk_bytes < 0 or record_size <= 0:
        raise ConfigurationError("chunk_bytes must be >= 0 and record_size > 0")
    if not 0.0 <= selected_fraction <= 1.0:
        raise ConfigurationError("selected_fraction must be in [0, 1]")
    tasklets = dpu.tasklets if tasklets is None else tasklets
    if tasklets <= 0:
        raise ConfigurationError("tasklets must be positive")

    num_records = chunk_bytes // record_size if record_size else 0

    granularity = dpu.dma_granularity_bytes
    record_transfer = -(-record_size // granularity) * granularity
    selector_transfer_per_record = 1  # selectors are staged in WRAM in bulk
    dma_bytes = num_records * (record_transfer + selector_transfer_per_record)
    dma_seconds = dma_bytes / dpu.mram_wram_bandwidth

    words_per_record = -(-record_size // 8)
    instructions = num_records * (
        INSTRUCTIONS_PER_RECORD_OVERHEAD
        + selected_fraction * words_per_record * INSTRUCTIONS_PER_XOR_WORD
    )
    pipeline_efficiency = min(1.0, tasklets / dpu.full_pipeline_tasklets)
    instruction_rate = dpu.frequency_hz * pipeline_efficiency
    compute_seconds = instructions / instruction_rate

    reduction_instructions = tasklets * words_per_record * INSTRUCTIONS_PER_REDUCE_WORD
    reduction_seconds = reduction_instructions / dpu.frequency_hz

    return DpuKernelCost(
        dma_seconds=dma_seconds,
        compute_seconds=compute_seconds,
        reduction_seconds=reduction_seconds,
    )


class PIMTimingModel:
    """Derives simulated durations from byte/op counts for a PIM configuration."""

    def __init__(self, config: PIMConfig) -> None:
        self.config = config

    # -- DPU-side -------------------------------------------------------------

    def dpu_dpxor_cost(
        self,
        chunk_bytes: int,
        record_size: int,
        selected_fraction: float = 0.5,
        tasklets: int | None = None,
    ) -> DpuKernelCost:
        """Cost of running the dpXOR kernel over one DPU's database chunk.

        ``chunk_bytes`` is the DPU-resident database block size, ``record_size``
        the record length in bytes and ``selected_fraction`` the expected share
        of records whose selector bit is set (1/2 for a pseudorandom DPF
        share).
        """
        return dpxor_kernel_cost(
            self.config.dpu,
            chunk_bytes,
            record_size,
            selected_fraction=selected_fraction,
            tasklets=tasklets,
        )

    def dpu_effective_dpxor_bandwidth(
        self, record_size: int, selected_fraction: float = 0.5
    ) -> float:
        """Sustained dpXOR bytes/second of one DPU for the given record size."""
        probe_bytes = 4 * (1 << 20)
        cost = self.dpu_dpxor_cost(probe_bytes, record_size, selected_fraction)
        return probe_bytes / cost.total_seconds

    # -- host <-> DPU transfers -------------------------------------------------

    def host_to_dpu_seconds(self, total_bytes: int) -> float:
        """Time to push ``total_bytes`` from host DRAM into DPU MRAM (batched)."""
        if total_bytes < 0:
            raise ConfigurationError("total_bytes must be non-negative")
        transfer = self.config.transfer
        return transfer.transfer_latency_s + total_bytes / transfer.host_to_dpu_bandwidth

    def dpu_to_host_seconds(self, total_bytes: int) -> float:
        """Time to pull ``total_bytes`` of results from DPU MRAM back to the host."""
        if total_bytes < 0:
            raise ConfigurationError("total_bytes must be non-negative")
        transfer = self.config.transfer
        return transfer.transfer_latency_s + total_bytes / transfer.dpu_to_host_bandwidth

    def launch_seconds(self, num_dpus: int | None = None) -> float:
        """Cost of launching a kernel on a set of ``num_dpus`` DPUs."""
        if num_dpus is None:
            num_dpus = self.config.num_dpus
        return self.config.transfer.launch_overhead_s(num_dpus)

    def host_broadcast_seconds(self, total_bytes: int) -> float:
        """Time to broadcast the same ``total_bytes`` buffer to a DPU set."""
        if total_bytes < 0:
            raise ConfigurationError("total_bytes must be non-negative")
        transfer = self.config.transfer
        return transfer.transfer_latency_s + total_bytes / transfer.host_broadcast_bandwidth

    # -- host-side DPF evaluation -------------------------------------------------

    def host_dpf_eval_seconds(
        self,
        num_leaves: int,
        blocks_per_leaf: float = 2.0,
        threads: int | None = None,
    ) -> float:
        """Host-CPU time to expand a full DPF evaluation tree of ``num_leaves``.

        ``blocks_per_leaf`` is the amortised AES-block count per leaf: a full
        GGM tree has ~2N nodes and each expansion costs two AES blocks, but
        half the expansions belong to internal levels whose cost is shared, so
        ~2 blocks/leaf is the right amortised figure (it also matches how the
        paper's baseline library batches AES-NI calls).
        """
        if num_leaves < 0:
            raise ConfigurationError("num_leaves must be non-negative")
        host = self.config.host
        threads = host.total_threads if threads is None else threads
        if threads <= 0:
            raise ConfigurationError("threads must be positive")
        per_thread = host.aes_blocks_per_second_per_thread
        aggregate = per_thread * threads * (
            host.thread_scaling_efficiency if threads > 1 else 1.0
        )
        return num_leaves * blocks_per_leaf / aggregate

    def host_aggregate_xor_seconds(self, num_partials: int, record_size: int) -> float:
        """Host time to XOR-fold per-DPU sub-results into the server answer."""
        if num_partials < 0 or record_size <= 0:
            raise ConfigurationError("invalid aggregation parameters")
        bytes_to_fold = num_partials * record_size
        # Aggregation is a tiny cache-resident XOR loop; charge it at a fixed
        # per-byte rate well below DRAM bandwidth to stay conservative.
        host_xor_bytes_per_second = 4e9
        return bytes_to_fold / host_xor_bytes_per_second
