"""The DPU: a 32-bit in-order core bolted onto a 64 MB MRAM bank.

A :class:`DPU` owns its MRAM and WRAM, tracks how long it has been busy in
simulated time, and executes kernels (callables following the
:class:`~repro.pim.kernels.Kernel` protocol).  Kernel launches are the only
way work happens on a DPU — exactly like the real hardware, where the host
loads a binary and calls ``dpu_launch``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.common.errors import KernelError
from repro.pim.config import DPUConfig
from repro.pim.mram import MRAM
from repro.pim.wram import WRAM


@dataclass
class DPUExecutionReport:
    """Outcome of one kernel launch on one DPU."""

    dpu_id: int
    kernel_name: str
    simulated_seconds: float
    instructions: int
    dma_bytes: int
    tasklets_used: int
    result: Any = None
    details: Dict[str, Any] = field(default_factory=dict)


class DPU:
    """One DRAM processing unit with its private memories."""

    def __init__(self, dpu_id: int, config: Optional[DPUConfig] = None) -> None:
        if dpu_id < 0:
            raise KernelError("dpu_id must be non-negative")
        self.dpu_id = dpu_id
        self.config = config if config is not None else DPUConfig()
        self.mram = MRAM(self.config.mram_bytes)
        self.wram = WRAM(self.config.wram_bytes)
        self.busy_seconds = 0.0
        self.launches = 0
        self._loaded_program: Optional[str] = None

    # -- program management -----------------------------------------------------

    def load_program(self, name: str) -> None:
        """Record which kernel binary is resident in IRAM.

        The simulator does not model instruction bytes, but keeping the loaded
        program explicit lets tests assert that the host loads binaries before
        launching, as the UPMEM SDK requires.
        """
        self._loaded_program = name

    @property
    def loaded_program(self) -> Optional[str]:
        """Name of the currently loaded kernel binary, if any."""
        return self._loaded_program

    # -- MRAM convenience ---------------------------------------------------------

    def store(self, name: str, array: np.ndarray) -> int:
        """Allocate (if needed) and write a named MRAM buffer; returns bytes written.

        A buffer too small for the incoming data is reallocated (still
        capacity-checked): batched dispatches legitimately grow the selector
        and result buffers past their per-query size, and batch sizes vary
        flush to flush.  Shrinking never reallocates — a smaller write into a
        larger buffer is an ordinary partial write.
        """
        flat = np.ascontiguousarray(array, dtype=np.uint8).reshape(-1)
        if self.mram.has_buffer(name) and self.mram.buffer_size(name) < flat.size:
            self.mram.free(name)
        if not self.mram.has_buffer(name):
            self.mram.allocate(name, flat.size)
        return self.mram.write(name, flat)

    def load(self, name: str, size_bytes: Optional[int] = None) -> np.ndarray:
        """Read a named MRAM buffer back as a flat uint8 array."""
        return self.mram.read(name, size_bytes=size_bytes)

    # -- execution ----------------------------------------------------------------

    def launch(self, kernel: "Kernel", **kwargs: Any) -> DPUExecutionReport:
        """Run ``kernel`` on this DPU and advance its busy time."""
        if self._loaded_program is not None and self._loaded_program != kernel.name:
            raise KernelError(
                f"DPU {self.dpu_id} has program {self._loaded_program!r} loaded, "
                f"cannot launch {kernel.name!r}"
            )
        self.wram.release_all()
        report = kernel.run(self, **kwargs)
        self.busy_seconds += report.simulated_seconds
        self.launches += 1
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DPU(id={self.dpu_id}, busy={self.busy_seconds:.6f}s, launches={self.launches})"


class Kernel:
    """Protocol for DPU kernels.

    Subclasses implement :meth:`run`, performing the functional computation on
    the DPU's MRAM buffers and returning a :class:`DPUExecutionReport` whose
    ``simulated_seconds`` comes from the shared timing model.
    """

    name = "abstract-kernel"

    def run(self, dpu: DPU, **kwargs: Any) -> DPUExecutionReport:
        raise NotImplementedError
