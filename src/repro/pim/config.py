"""UPMEM PIM hardware configuration.

Default values follow the paper's evaluation platform (§5.2): a server with
20 PIM-enabled modules totalling 2,560 DPUs at 350 MHz, 64 MB of MRAM and
64 KB of WRAM per DPU, ~700 MB/s of MRAM<->WRAM bandwidth per DPU, and a host
with two 8-core Xeon Silver 4110 CPUs.  Experiments use 2,048 DPUs with 16
tasklets each unless stated otherwise, exactly as the paper does.

The UPMEM topology is hierarchical: a module holds two ranks, a rank holds
eight PIM chips, and a chip holds eight DPUs — so one 8 GB module exposes 128
DPUs.  The topology matters for capacity accounting and for the CPU<->DPU
transfer engine, which moves data rank-by-rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.units import GIB, KIB, MIB

DPUS_PER_CHIP = 8
CHIPS_PER_RANK = 8
RANKS_PER_MODULE = 2
DPUS_PER_RANK = DPUS_PER_CHIP * CHIPS_PER_RANK
DPUS_PER_MODULE = DPUS_PER_RANK * RANKS_PER_MODULE


@dataclass(frozen=True)
class DPUConfig:
    """Per-DPU hardware parameters."""

    mram_bytes: int = 64 * MIB
    wram_bytes: int = 64 * KIB
    iram_bytes: int = 24 * KIB
    frequency_hz: float = 350e6
    hardware_threads: int = 24
    tasklets: int = 16
    #: Sustained MRAM<->WRAM DMA bandwidth for one DPU (paper: ~700 MB/s at 350 MHz).
    mram_wram_bandwidth: float = 700e6
    #: Pipeline utilisation: with >= 11 tasklets the DPU retires about one
    #: instruction per cycle; fewer tasklets leave bubbles in the 14-stage
    #: pipeline (Gomez-Luna et al. characterisation).
    full_pipeline_tasklets: int = 11
    #: Minimum efficient DMA transfer size; smaller transfers pay the same cost.
    dma_granularity_bytes: int = 8

    def __post_init__(self) -> None:
        if self.mram_bytes <= 0 or self.wram_bytes <= 0 or self.iram_bytes <= 0:
            raise ConfigurationError("DPU memory sizes must be positive")
        if not 1 <= self.tasklets <= self.hardware_threads:
            raise ConfigurationError(
                f"tasklets must be in [1, {self.hardware_threads}], got {self.tasklets}"
            )
        if self.frequency_hz <= 0 or self.mram_wram_bandwidth <= 0:
            raise ConfigurationError("frequency and bandwidth must be positive")

    @property
    def pipeline_efficiency(self) -> float:
        """Fraction of the 1-instruction/cycle peak the tasklet count achieves."""
        return min(1.0, self.tasklets / self.full_pipeline_tasklets)

    @property
    def instructions_per_second(self) -> float:
        """Effective retired-instruction rate for the configured tasklet count."""
        return self.frequency_hz * self.pipeline_efficiency


@dataclass(frozen=True)
class HostConfig:
    """Host-CPU parameters of the PIM server (Xeon Silver 4110 in the paper)."""

    sockets: int = 2
    cores_per_socket: int = 8
    threads_per_core: int = 2
    frequency_hz: float = 2.1e9
    llc_bytes: int = 11 * MIB
    dram_bytes: int = 256 * GIB
    #: Aggregate host DRAM bandwidth (6-channel DDR4-2400 per socket, derated).
    dram_bandwidth: float = 68e9
    #: Pipelined AES-NI throughput per hardware thread (blocks/second).  A
    #: Skylake-SP core at 2.1 GHz retires roughly one AESENC per cycle once
    #: eight independent blocks are in flight, i.e. ~210 M blocks/s for
    #: 10-round AES-128; IM-PIR's host evaluation batches AES calls across
    #: sibling nodes (§3.2) which keeps it close to that peak.
    aes_blocks_per_second_per_thread: float = 210e6
    #: Fraction of ideal scaling achieved when all threads cooperate on a
    #: *single* key's evaluation (latency mode): the per-level subtree handoff
    #: and the shared output vector introduce barriers and cache-line sharing
    #: that cost roughly half the ideal speedup.  Independent per-key worker
    #: threads (batch mode) do not pay this penalty.
    thread_scaling_efficiency: float = 0.5

    def __post_init__(self) -> None:
        if self.sockets <= 0 or self.cores_per_socket <= 0 or self.threads_per_core <= 0:
            raise ConfigurationError("host core topology values must be positive")
        if self.frequency_hz <= 0 or self.dram_bandwidth <= 0:
            raise ConfigurationError("host frequency and bandwidth must be positive")

    @property
    def total_threads(self) -> int:
        """Hardware threads available on the host."""
        return self.sockets * self.cores_per_socket * self.threads_per_core

    @property
    def aggregate_aes_blocks_per_second(self) -> float:
        """AES-NI throughput with every hardware thread active."""
        return (
            self.aes_blocks_per_second_per_thread
            * self.total_threads
            * self.thread_scaling_efficiency
        )


@dataclass(frozen=True)
class TransferConfig:
    """CPU <-> DPU data-movement parameters.

    UPMEM exposes no direct DPU-DPU path: every transfer is staged through the
    host.  The per-query selector shares are *scatter* transfers (a different
    buffer per DPU), which sustain markedly less bandwidth than same-buffer
    broadcasts; the values below follow the UPMEM characterisation literature
    the paper cites (Gomez-Luna et al., Hyun et al.).
    """

    #: Scatter (different data per DPU) host->MRAM bandwidth, aggregate.
    host_to_dpu_bandwidth: float = 5.0e9
    #: Broadcast (same data to every DPU) host->MRAM bandwidth, aggregate.
    host_broadcast_bandwidth: float = 6.0e9
    dpu_to_host_bandwidth: float = 4.7e9
    #: Fixed software cost of initiating a batched transfer to a DPU set.
    transfer_latency_s: float = 120e-6
    #: Kernel-launch cost: a fixed driver component plus a per-DPU component
    #: (binary load / boot fan-out across ranks).
    launch_base_s: float = 250e-6
    launch_per_dpu_s: float = 2.3e-6

    def __post_init__(self) -> None:
        if self.host_to_dpu_bandwidth <= 0 or self.dpu_to_host_bandwidth <= 0:
            raise ConfigurationError("transfer bandwidths must be positive")
        if self.host_broadcast_bandwidth <= 0:
            raise ConfigurationError("broadcast bandwidth must be positive")
        if self.transfer_latency_s < 0 or self.launch_base_s < 0 or self.launch_per_dpu_s < 0:
            raise ConfigurationError("latencies must be non-negative")

    def launch_overhead_s(self, num_dpus: int) -> float:
        """Kernel-launch overhead for a set of ``num_dpus`` DPUs."""
        if num_dpus <= 0:
            raise ConfigurationError("num_dpus must be positive")
        return self.launch_base_s + self.launch_per_dpu_s * num_dpus


@dataclass(frozen=True)
class PIMConfig:
    """Full PIM-server configuration used by the simulator and cost models."""

    num_dpus: int = 2048
    dpu: DPUConfig = field(default_factory=DPUConfig)
    host: HostConfig = field(default_factory=HostConfig)
    transfer: TransferConfig = field(default_factory=TransferConfig)
    #: Total DPUs physically present (20 modules in the paper's server).
    available_dpus: int = 2560

    def __post_init__(self) -> None:
        if self.num_dpus <= 0:
            raise ConfigurationError("num_dpus must be positive")
        if self.num_dpus > self.available_dpus:
            raise ConfigurationError(
                f"requested {self.num_dpus} DPUs but the system only has {self.available_dpus}"
            )

    @property
    def num_modules(self) -> int:
        """PIM modules needed to expose ``available_dpus``."""
        return -(-self.available_dpus // DPUS_PER_MODULE)

    @property
    def total_mram_bytes(self) -> int:
        """MRAM capacity across the DPUs used by experiments."""
        return self.num_dpus * self.dpu.mram_bytes

    @property
    def aggregate_mram_bandwidth(self) -> float:
        """Sum of the per-DPU MRAM<->WRAM bandwidths (the paper's ~1.79 TB/s)."""
        return self.num_dpus * self.dpu.mram_wram_bandwidth

    def with_dpus(self, num_dpus: int) -> "PIMConfig":
        """A copy of this configuration using ``num_dpus`` DPUs."""
        return PIMConfig(
            num_dpus=num_dpus,
            dpu=self.dpu,
            host=self.host,
            transfer=self.transfer,
            available_dpus=self.available_dpus,
        )

    def with_tasklets(self, tasklets: int) -> "PIMConfig":
        """A copy of this configuration with a different tasklet count per DPU."""
        dpu = DPUConfig(
            mram_bytes=self.dpu.mram_bytes,
            wram_bytes=self.dpu.wram_bytes,
            iram_bytes=self.dpu.iram_bytes,
            frequency_hz=self.dpu.frequency_hz,
            hardware_threads=self.dpu.hardware_threads,
            tasklets=tasklets,
            mram_wram_bandwidth=self.dpu.mram_wram_bandwidth,
            full_pipeline_tasklets=self.dpu.full_pipeline_tasklets,
            dma_granularity_bytes=self.dpu.dma_granularity_bytes,
        )
        return PIMConfig(
            num_dpus=self.num_dpus,
            dpu=dpu,
            host=self.host,
            transfer=self.transfer,
            available_dpus=self.available_dpus,
        )


#: The paper's evaluation platform: 2,048 of 2,560 DPUs, 16 tasklets each.
UPMEM_PAPER_CONFIG = PIMConfig()


def scaled_down_config(num_dpus: int = 8, tasklets: int = 4) -> PIMConfig:
    """A small configuration for functional tests and examples.

    The hardware parameters are unchanged — only the population is reduced so
    end-to-end functional runs stay fast in pure Python.
    """
    base = PIMConfig(num_dpus=num_dpus, available_dpus=max(num_dpus, 2560))
    return base.with_tasklets(tasklets)
