"""DPU-side kernels.

:class:`DpXorKernel` is the Python analogue of the paper's ~200 LoC C kernel:
it scans the DPU's MRAM-resident database block, XORs the records whose
selector bit is set into per-tasklet accumulators (Algorithm 1, TASKLETXOR),
and lets the master tasklet fold the partials into the DPU's sub-result
(MASTERXOR).  The functional result is computed with numpy on the real
buffers; the simulated duration comes from the shared cost formula in
:mod:`repro.pim.timing`, parameterised by the *actual* selected fraction and
tasklet count of the launch.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.common.errors import KernelError
from repro.pim.dpu import DPU, DPUExecutionReport, Kernel
from repro.pim.tasklet import TaskletGroup
from repro.pim.timing import (
    INSTRUCTIONS_PER_RECORD_OVERHEAD,
    INSTRUCTIONS_PER_XOR_WORD,
    dpxor_kernel_cost,
)
from repro.pir.xor_ops import dpxor_many

#: Default MRAM buffer names used by the IM-PIR pipeline.
DB_BUFFER = "db"
SELECTOR_BUFFER = "selector"
RESULT_BUFFER = "result"

#: WRAM staging block per tasklet (database records are streamed in blocks of
#: this size, as in the real kernel's DMA loop).
WRAM_BLOCK_BYTES = 2048


class DpXorKernel(Kernel):
    """Two-stage parallel-reduction dpXOR over one DPU's database block."""

    name = "dpxor"

    def run(
        self,
        dpu: DPU,
        num_records: int,
        record_size: int,
        tasklets: Optional[int] = None,
        db_buffer: str = DB_BUFFER,
        selector_buffer: str = SELECTOR_BUFFER,
        result_buffer: str = RESULT_BUFFER,
        **_: Any,
    ) -> DPUExecutionReport:
        if num_records < 0 or record_size <= 0:
            raise KernelError("num_records must be >= 0 and record_size > 0")
        tasklets = dpu.config.tasklets if tasklets is None else tasklets
        if not 1 <= tasklets <= dpu.config.hardware_threads:
            raise KernelError(
                f"tasklets must be in [1, {dpu.config.hardware_threads}], got {tasklets}"
            )

        # WRAM working set: one staging block + one accumulator per tasklet,
        # plus the packed selector slice shared by all tasklets.
        selector_bytes = (num_records + 7) // 8
        dpu.wram.reserve("dpxor:blocks", max(1, tasklets * WRAM_BLOCK_BYTES))
        dpu.wram.reserve("dpxor:accumulators", max(1, tasklets * record_size))
        dpu.wram.reserve(
            "dpxor:selector", max(1, min(selector_bytes, dpu.wram.free_bytes // 2 or 1))
        )

        # Stage 0: pull the operands out of MRAM (the real kernel streams them;
        # the functional simulator reads them wholesale and charges DMA below).
        db_bytes = num_records * record_size
        database = np.zeros((0, record_size), dtype=np.uint8)
        selector = np.zeros(0, dtype=np.uint8)
        if num_records:
            database = dpu.load(db_buffer, size_bytes=db_bytes).reshape(num_records, record_size)
            packed = dpu.load(selector_buffer, size_bytes=selector_bytes)
            selector = np.unpackbits(packed, bitorder="big")[:num_records]

        # Stage 1: TASKLETXOR — each tasklet scans its contiguous share.
        group = TaskletGroup(num_tasklets=tasklets)
        partials = np.zeros((tasklets, record_size), dtype=np.uint8)
        for report, (start, stop) in zip(group.reports, group.partition(num_records)):
            if start < stop:
                chunk = database[start:stop]
                bits = selector[start:stop]
                mask = bits.astype(bool)
                if mask.any():
                    partials[report.tasklet_id] = np.bitwise_xor.reduce(chunk[mask], axis=0)
                report.records_processed = stop - start
                report.records_selected = int(mask.sum())
                words = -(-record_size // 8)
                report.instructions = (
                    (stop - start) * INSTRUCTIONS_PER_RECORD_OVERHEAD
                    + report.records_selected * words * INSTRUCTIONS_PER_XOR_WORD
                )
                report.dma_bytes = (stop - start) * (words * 8) + (stop - start + 7) // 8

        # Stage 2: MASTERXOR — tasklet 0 folds the partial results.
        result = np.zeros(record_size, dtype=np.uint8)
        for partial in partials:
            result ^= partial

        dpu.store(result_buffer, result)

        selected_fraction = (
            group.total_records_selected / num_records if num_records else 0.0
        )
        cost = dpxor_kernel_cost(
            dpu.config,
            chunk_bytes=db_bytes,
            record_size=record_size,
            selected_fraction=selected_fraction,
            tasklets=tasklets,
        )
        return DPUExecutionReport(
            dpu_id=dpu.dpu_id,
            kernel_name=self.name,
            simulated_seconds=cost.total_seconds,
            instructions=group.total_instructions,
            dma_bytes=group.total_dma_bytes,
            tasklets_used=tasklets,
            result=result,
            details={
                "records": num_records,
                "records_selected": group.total_records_selected,
                "dma_seconds": cost.dma_seconds,
                "compute_seconds": cost.compute_seconds,
                "reduction_seconds": cost.reduction_seconds,
            },
        )


class DpXorManyKernel(Kernel):
    """Batched dpXOR: one launch scans the DPU's block for a whole batch.

    The batched entry point of the same kernel binary as :class:`DpXorKernel`
    (hence the shared ``name``): the selector buffer carries ``batch`` packed
    selector slices back to back, the batch loop runs *inside* the launch via
    the one-pass :func:`~repro.pir.xor_ops.dpxor_many` per tasklet share, and
    the result buffer returns ``batch`` sub-results.  Fixed per-dispatch
    charges (scatter latency, launch overhead) are paid once per batch by the
    caller; the scan itself is still priced per query — each row adds exactly
    the kernel cost its own sequential launch would, with its own measured
    selected fraction, so batching never discounts scan work (the
    all-for-one principle).
    """

    name = "dpxor"

    def run(
        self,
        dpu: DPU,
        num_records: int,
        record_size: int,
        batch: int,
        tasklets: Optional[int] = None,
        db_buffer: str = DB_BUFFER,
        selector_buffer: str = SELECTOR_BUFFER,
        result_buffer: str = RESULT_BUFFER,
        **_: Any,
    ) -> DPUExecutionReport:
        if num_records < 0 or record_size <= 0:
            raise KernelError("num_records must be >= 0 and record_size > 0")
        if batch <= 0:
            raise KernelError("batch must be positive")
        tasklets = dpu.config.tasklets if tasklets is None else tasklets
        if not 1 <= tasklets <= dpu.config.hardware_threads:
            raise KernelError(
                f"tasklets must be in [1, {dpu.config.hardware_threads}], got {tasklets}"
            )

        # Same WRAM working set as the sequential kernel: the batch reuses the
        # staging blocks and accumulators query by query inside the launch.
        selector_bytes = (num_records + 7) // 8
        dpu.wram.reserve("dpxor:blocks", max(1, tasklets * WRAM_BLOCK_BYTES))
        dpu.wram.reserve("dpxor:accumulators", max(1, tasklets * record_size))
        dpu.wram.reserve(
            "dpxor:selector", max(1, min(selector_bytes, dpu.wram.free_bytes // 2 or 1))
        )

        db_bytes = num_records * record_size
        database = np.zeros((0, record_size), dtype=np.uint8)
        selectors = np.zeros((batch, 0), dtype=np.uint8)
        if num_records:
            database = dpu.load(db_buffer, size_bytes=db_bytes).reshape(num_records, record_size)
            packed = dpu.load(
                selector_buffer, size_bytes=batch * selector_bytes
            ).reshape(batch, selector_bytes)
            selectors = np.unpackbits(packed, axis=1, bitorder="big")[:, :num_records]

        # Stage 1: TASKLETXOR — each tasklet one-pass scans its contiguous
        # share for every batch row at once.
        group = TaskletGroup(num_tasklets=tasklets)
        partials = np.zeros((tasklets, batch, record_size), dtype=np.uint8)
        words = -(-record_size // 8)
        for report, (start, stop) in zip(group.reports, group.partition(num_records)):
            if start < stop:
                share_bits = selectors[:, start:stop]
                dpxor_many(database[start:stop], share_bits, out=partials[report.tasklet_id])
                report.records_processed = batch * (stop - start)
                report.records_selected = int(share_bits.sum())
                report.instructions = (
                    batch * (stop - start) * INSTRUCTIONS_PER_RECORD_OVERHEAD
                    + report.records_selected * words * INSTRUCTIONS_PER_XOR_WORD
                )
                report.dma_bytes = batch * (
                    (stop - start) * (words * 8) + (stop - start + 7) // 8
                )

        # Stage 2: MASTERXOR — fold the per-tasklet partials per batch row.
        result = np.bitwise_xor.reduce(partials, axis=0)
        dpu.store(result_buffer, result)

        # Per-query kernel cost, summed: the batched launch charges exactly
        # what ``batch`` sequential launches would on this DPU, each with its
        # own row's selected fraction.
        if num_records:
            selected_per_row = selectors.sum(axis=1, dtype=np.int64)
        else:
            selected_per_row = np.zeros(batch, dtype=np.int64)
        simulated = dma = compute = reduction = 0.0
        for selected in selected_per_row.tolist():
            cost = dpxor_kernel_cost(
                dpu.config,
                chunk_bytes=db_bytes,
                record_size=record_size,
                selected_fraction=selected / num_records if num_records else 0.0,
                tasklets=tasklets,
            )
            simulated += cost.total_seconds
            dma += cost.dma_seconds
            compute += cost.compute_seconds
            reduction += cost.reduction_seconds
        return DPUExecutionReport(
            dpu_id=dpu.dpu_id,
            kernel_name=self.name,
            simulated_seconds=simulated,
            instructions=group.total_instructions,
            dma_bytes=group.total_dma_bytes,
            tasklets_used=tasklets,
            result=result,
            details={
                "batch": batch,
                "records": num_records,
                "records_selected": group.total_records_selected,
                "dma_seconds": dma,
                "compute_seconds": compute,
                "reduction_seconds": reduction,
            },
        )


class MramFillKernel(Kernel):
    """Diagnostic kernel that fills an MRAM buffer with a constant byte.

    Used by tests to exercise the launch machinery independently of the PIR
    pipeline (and as the simplest possible example of writing a new kernel).
    """

    name = "mram-fill"

    def run(
        self,
        dpu: DPU,
        buffer: str,
        size_bytes: int,
        value: int = 0,
        **_: Any,
    ) -> DPUExecutionReport:
        if size_bytes <= 0:
            raise KernelError("size_bytes must be positive")
        if not 0 <= value <= 255:
            raise KernelError("value must be a byte")
        data = np.full(size_bytes, value, dtype=np.uint8)
        dpu.store(buffer, data)
        instructions = size_bytes  # one store-byte per element, order of magnitude
        seconds = max(
            size_bytes / dpu.config.mram_wram_bandwidth,
            instructions / dpu.config.instructions_per_second,
        )
        return DPUExecutionReport(
            dpu_id=dpu.dpu_id,
            kernel_name=self.name,
            simulated_seconds=seconds,
            instructions=instructions,
            dma_bytes=size_bytes,
            tasklets_used=1,
            result=None,
            details={"buffer": buffer, "value": value},
        )
