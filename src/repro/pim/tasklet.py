"""Tasklets: the software threads multiplexed onto a DPU's hardware pipeline.

UPMEM exposes up to 24 hardware threads per DPU; kernels spawn a configurable
number of *tasklets* that share WRAM and cooperate through barriers.  The
simulator executes tasklets sequentially in Python (the functional result is
identical) while accounting the per-tasklet instruction and DMA-byte counts
that the timing model turns into simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.common.errors import KernelError


@dataclass
class TaskletReport:
    """Work performed by a single tasklet during one kernel launch."""

    tasklet_id: int
    records_processed: int = 0
    records_selected: int = 0
    instructions: int = 0
    dma_bytes: int = 0

    def charge_record(self, record_size: int, selected: bool, overhead: int, per_word: int) -> None:
        """Account one record's worth of work in the dpXOR kernel."""
        self.records_processed += 1
        self.instructions += overhead
        words = -(-record_size // 8)
        self.dma_bytes += -(-record_size // 8) * 8
        if selected:
            self.records_selected += 1
            self.instructions += words * per_word


@dataclass
class TaskletGroup:
    """The set of tasklets participating in one kernel launch on one DPU."""

    num_tasklets: int
    reports: List[TaskletReport] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_tasklets <= 0:
            raise KernelError("a kernel needs at least one tasklet")
        if not self.reports:
            self.reports = [TaskletReport(tasklet_id=i) for i in range(self.num_tasklets)]

    def partition(self, num_items: int) -> List[Tuple[int, int]]:
        """Split ``[0, num_items)`` into contiguous per-tasklet ranges.

        Mirrors Algorithm 1: each tasklet gets ``ceil(num_items / T)`` items,
        with trailing tasklets possibly idle.  Returns ``(start, stop)`` pairs,
        one per tasklet.
        """
        if num_items < 0:
            raise KernelError("num_items must be non-negative")
        per_tasklet = -(-num_items // self.num_tasklets) if num_items else 0
        ranges = []
        for tasklet_id in range(self.num_tasklets):
            start = min(tasklet_id * per_tasklet, num_items)
            stop = min(start + per_tasklet, num_items)
            ranges.append((start, stop))
        return ranges

    @property
    def total_instructions(self) -> int:
        """Instructions retired across all tasklets."""
        return sum(report.instructions for report in self.reports)

    @property
    def total_dma_bytes(self) -> int:
        """Bytes DMA-ed between MRAM and WRAM across all tasklets."""
        return sum(report.dma_bytes for report in self.reports)

    @property
    def total_records_selected(self) -> int:
        """Records whose selector bit was set, across all tasklets."""
        return sum(report.records_selected for report in self.reports)

    @property
    def total_records_processed(self) -> int:
        """Records scanned across all tasklets."""
        return sum(report.records_processed for report in self.reports)

    @property
    def max_tasklet_instructions(self) -> int:
        """Instruction count of the busiest tasklet (the critical path)."""
        return max((report.instructions for report in self.reports), default=0)
