"""WRAM: the 64 KB scratchpad shared by a DPU's tasklets.

The dpXOR kernel streams MRAM-resident data through WRAM in DMA blocks; the
simulator does not need to physically stage every block, but it does enforce
the capacity constraint — the same constraint that makes the branch-parallel
DPF traversal infeasible on DPUs (§3.2) — and accounts the bytes that would
cross the MRAM<->WRAM interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common.errors import CapacityError
from repro.common.units import format_bytes


@dataclass
class WRAM:
    """Capacity accounting for one DPU's working RAM."""

    capacity_bytes: int
    _reservations: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise CapacityError("WRAM capacity must be positive")

    @property
    def used_bytes(self) -> int:
        """Bytes currently reserved by kernel working sets."""
        return sum(self._reservations.values())

    @property
    def free_bytes(self) -> int:
        """Remaining reservable capacity."""
        return self.capacity_bytes - self.used_bytes

    def reserve(self, name: str, size_bytes: int) -> None:
        """Reserve a named working-set region; raises if WRAM would overflow."""
        if size_bytes <= 0:
            raise CapacityError(f"WRAM reservation {name!r} must have a positive size")
        if name in self._reservations:
            raise CapacityError(f"WRAM reservation {name!r} already exists")
        if size_bytes > self.free_bytes:
            raise CapacityError(
                f"reserving {format_bytes(size_bytes)} for {name!r} exceeds WRAM capacity "
                f"({format_bytes(self.free_bytes)} free of {format_bytes(self.capacity_bytes)})"
            )
        self._reservations[name] = size_bytes

    def release(self, name: str) -> None:
        """Release a named reservation (missing names are ignored)."""
        self._reservations.pop(name, None)

    def release_all(self) -> None:
        """Release every reservation (called between kernel launches)."""
        self._reservations.clear()

    def fits(self, size_bytes: int) -> bool:
        """Whether a working set of ``size_bytes`` could currently be reserved."""
        return 0 < size_bytes <= self.free_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WRAM(used={format_bytes(self.used_bytes)}/{format_bytes(self.capacity_bytes)})"
