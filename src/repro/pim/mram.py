"""MRAM: the 64 MB DRAM bank private to each DPU.

The simulator keeps MRAM as a dictionary of named buffers backed by numpy
arrays.  Capacity accounting is strict (allocating past 64 MB raises
:class:`~repro.common.errors.CapacityError`) but storage is lazy: only buffers
that are actually written occupy host memory, which is what lets functional
tests instantiate thousands of DPUs cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.common.errors import CapacityError, TransferError
from repro.common.units import format_bytes


@dataclass
class MRAMBuffer:
    """A named, fixed-size region of a DPU's MRAM."""

    name: str
    offset: int
    size_bytes: int
    data: Optional[np.ndarray] = None

    def materialize(self) -> np.ndarray:
        """Return the backing array, creating a zeroed one on first access."""
        if self.data is None:
            self.data = np.zeros(self.size_bytes, dtype=np.uint8)
        return self.data


class MRAM:
    """Capacity-checked buffer store standing in for one DPU's MRAM bank."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise CapacityError("MRAM capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._buffers: Dict[str, MRAMBuffer] = {}
        self._next_offset = 0

    # -- allocation -----------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated (whether or not they have been written)."""
        return sum(buffer.size_bytes for buffer in self._buffers.values())

    @property
    def free_bytes(self) -> int:
        """Remaining allocatable capacity."""
        return self.capacity_bytes - self.used_bytes

    def allocate(self, name: str, size_bytes: int) -> MRAMBuffer:
        """Reserve ``size_bytes`` under ``name``; idempotent re-allocation is an error."""
        if size_bytes <= 0:
            raise CapacityError(f"buffer {name!r} must have a positive size")
        if name in self._buffers:
            raise CapacityError(f"MRAM buffer {name!r} already allocated")
        if size_bytes > self.free_bytes:
            raise CapacityError(
                f"allocating {format_bytes(size_bytes)} for {name!r} exceeds MRAM capacity "
                f"({format_bytes(self.free_bytes)} free of {format_bytes(self.capacity_bytes)})"
            )
        buffer = MRAMBuffer(name=name, offset=self._next_offset, size_bytes=size_bytes)
        self._buffers[name] = buffer
        self._next_offset += size_bytes
        return buffer

    def free(self, name: str) -> None:
        """Release the buffer ``name`` (no-op compaction; offsets are not reused)."""
        if name not in self._buffers:
            raise TransferError(f"MRAM buffer {name!r} does not exist")
        del self._buffers[name]

    def has_buffer(self, name: str) -> bool:
        """Whether ``name`` is currently allocated."""
        return name in self._buffers

    def buffer_names(self) -> tuple:
        """Names of all allocated buffers."""
        return tuple(self._buffers)

    def buffer_size(self, name: str) -> int:
        """Allocated size of buffer ``name`` in bytes."""
        return self._require(name).size_bytes

    # -- data movement ----------------------------------------------------------

    def write(self, name: str, array: np.ndarray, offset: int = 0) -> int:
        """Copy ``array`` (flattened to bytes) into buffer ``name`` at ``offset``.

        Returns the number of bytes written.  The buffer must already be
        allocated and large enough.
        """
        buffer = self._require(name)
        flat = np.ascontiguousarray(array, dtype=np.uint8).reshape(-1)
        if offset < 0 or offset + flat.size > buffer.size_bytes:
            raise TransferError(
                f"write of {flat.size} bytes at offset {offset} overflows buffer {name!r} "
                f"({buffer.size_bytes} bytes)"
            )
        backing = buffer.materialize()
        backing[offset:offset + flat.size] = flat
        return int(flat.size)

    def read(self, name: str, offset: int = 0, size_bytes: Optional[int] = None) -> np.ndarray:
        """Read ``size_bytes`` from buffer ``name`` starting at ``offset``."""
        buffer = self._require(name)
        if size_bytes is None:
            size_bytes = buffer.size_bytes - offset
        if offset < 0 or size_bytes < 0 or offset + size_bytes > buffer.size_bytes:
            raise TransferError(
                f"read of {size_bytes} bytes at offset {offset} overflows buffer {name!r}"
            )
        backing = buffer.materialize()
        return backing[offset:offset + size_bytes].copy()

    def _require(self, name: str) -> MRAMBuffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise TransferError(f"MRAM buffer {name!r} does not exist") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MRAM(used={format_bytes(self.used_bytes)}/{format_bytes(self.capacity_bytes)}, "
            f"buffers={list(self._buffers)})"
        )
