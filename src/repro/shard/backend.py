"""Sharded execution: one :class:`PIRBackend` composed of per-shard children.

A :class:`ShardedBackend` implements the engine's backend protocol by
delegating to one child backend per (non-empty) shard of a
:class:`~repro.shard.plan.ShardPlan`:

* ``prepare`` slices the database along the plan and hands each child its
  shard (children preload concurrently, so their preload timers fold with
  per-phase max);
* ``execute`` splits the engine's full-domain selector vector per shard,
  lets every child scan its slice (schedule-wise in parallel — child phase
  timers fold with per-phase max) and XOR-folds the sub-payloads into one
  answer that is bit-identical to the unsharded scan;
* ``apply_updates`` routes dirty records to the owning shard only, leaving
  every other child's buffers untouched;
* ``swap_child`` / ``apply_topology`` are the control plane's live
  reconfiguration points: a child migration or a whole plan split/merge is
  prepared off to the side and swapped in with one reference assignment,
  in-flight queries finishing against the old snapshot.

The engine on top is a completely ordinary :class:`QueryEngine`: validation,
DPF evaluation and answer assembly neither know nor care that the database
is distributed.  Children are *bare* backends (no engine of their own) built
by a factory, so a fleet can mix kinds — preloaded PIM for hot shards,
streamed IM-PIR for cold ones (see :mod:`repro.shard.fleet`).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError, ProtocolError
from repro.common.events import PhaseTimer
from repro.core.config import IMPIRConfig
from repro.core.engine import BackendCapabilities, PIRBackend, QueryEngine
from repro.core.partitioning import fold_partials
from repro.pir.database import Database
from repro.shard.plan import ShardPlan, ShardSpec, TopologyChange
from repro.shard.tuner import ScanTuner, default_tuner

#: A callable building the bare execution backend for one shard.
ShardBackendFactory = Callable[[ShardSpec], PIRBackend]

#: One fleet member: ``(shard, child backend, child lane count)``.
ShardMember = Tuple[ShardSpec, PIRBackend, int]


def _close_children(
    members: Sequence[ShardMember], keep: Optional[Sequence[PIRBackend]] = None
) -> None:
    """Close every member child exposing ``close``, except those in ``keep``.

    Children are bare backends without a uniform lifecycle protocol, so the
    close is duck-typed; ``keep`` carries children a reshape reused in the
    successor topology, which must stay live.
    """
    kept = {id(child) for child in keep} if keep is not None else set()
    for _, child, _ in members:
        if id(child) in kept:
            continue
        child_close = getattr(child, "close", None)
        if child_close is not None:
            child_close()


class _Topology:
    """One immutable snapshot of the fleet's distribution state.

    The plan and the member triples must be read *together*: a concurrent
    ``execute`` that paired an old member tuple with a new plan (or vice
    versa) would zip a selector split against the wrong children and
    silently mis-fold the XOR.  Bundling them in one object — always
    replaced by a single reference assignment, never mutated — makes every
    reader's view consistent by construction: in-flight queries finish
    against the snapshot they started with, the next query sees the new one.
    """

    __slots__ = ("plan", "members")

    def __init__(self, plan: ShardPlan, members: Tuple[ShardMember, ...]) -> None:
        self.plan = plan
        self.members = members


class StagedTopology:
    """A reshape prepared but not yet installed (see ``stage_topology``).

    Holds the fully prepared replacement snapshot plus the snapshot it was
    built against, so ``commit_topology`` can refuse a staging that raced
    another reconfiguration instead of silently dropping it.
    """

    __slots__ = ("backend", "built_on", "topology", "report")

    def __init__(self, backend, built_on, topology, report) -> None:
        self.backend = backend
        self.built_on = built_on
        self.topology = topology
        self.report = report

#: Backend kinds :func:`bare_backend_factory` can instantiate per shard.
BARE_BACKEND_KINDS: Tuple[str, ...] = (
    "reference",
    "cpu",
    "gpu",
    "im-pir",
    "im-pir-streamed",
)

#: How a :class:`ShardedBackend` runs its per-shard ``execute`` calls.
#: ``auto`` defers the serial-vs-threads decision to a measured
#: :class:`~repro.shard.tuner.ScanTuner` crossover, per batch shape.
EXECUTOR_SERIAL = "serial"
EXECUTOR_THREADS = "threads"
EXECUTOR_AUTO = "auto"
SHARD_EXECUTORS: Tuple[str, ...] = (EXECUTOR_SERIAL, EXECUTOR_THREADS, EXECUTOR_AUTO)


def default_child_config() -> IMPIRConfig:
    """The per-shard PIM configuration used when none is supplied.

    Small (4 DPUs, 2 tasklets) because a shard is a fraction of the database
    and functional runs must stay fast; pass an explicit config to
    :func:`bare_backend_factory` / :class:`ShardedServer` to override.
    """
    from repro.pim.config import scaled_down_config

    return IMPIRConfig(pim=scaled_down_config(num_dpus=4, tasklets=2))


def bare_backend_factory(
    kind: str,
    config: Optional[IMPIRConfig] = None,
    segment_records: Optional[int] = None,
) -> ShardBackendFactory:
    """A factory producing fresh bare backends of ``kind`` for each shard.

    The CPU/GPU kinds share the reference scan substrate (their cost models
    live in the server facades, not the backend); the PIM kinds each get
    their own simulated UPMEM system so shards are independent machines.
    """
    if kind not in BARE_BACKEND_KINDS:
        raise ConfigurationError(
            f"unknown shard backend kind {kind!r}; known: {', '.join(BARE_BACKEND_KINDS)}"
        )

    def build(shard: ShardSpec) -> PIRBackend:
        from repro.core.engine import ReferenceBackend

        if kind == "reference":
            return ReferenceBackend()
        if kind == "cpu":
            return ReferenceBackend(name="cpu-pir")
        if kind == "gpu":
            return ReferenceBackend(name="gpu-pir")
        child_config = config if config is not None else default_child_config()
        from repro.pim.system import UPMEMSystem

        if kind == "im-pir":
            from repro.core.impir import PIMClusterBackend

            return PIMClusterBackend(child_config, UPMEMSystem(child_config.pim))
        from repro.core.streaming import StreamedPIMBackend

        return StreamedPIMBackend(
            child_config,
            UPMEMSystem(child_config.pim),
            segment_records=segment_records,
        )

    return build


class ShardedBackend(PIRBackend):
    """A replica fleet: child backends per shard behind one backend surface."""

    def __init__(
        self,
        child_factory: ShardBackendFactory,
        num_shards: int = 2,
        plan: Optional[ShardPlan] = None,
        block_records: int = 1,
        name: str = "sharded",
        executor: str = EXECUTOR_SERIAL,
        tuner: Optional[ScanTuner] = None,
    ) -> None:
        if num_shards <= 0:
            raise ConfigurationError("num_shards must be positive")
        if executor not in SHARD_EXECUTORS:
            raise ConfigurationError(
                f"unknown shard executor {executor!r}; known: {', '.join(SHARD_EXECUTORS)}"
            )
        self._child_factory = child_factory
        #: ``serial`` scans shards one after another on the calling thread;
        #: ``threads`` overlaps the children's blocking numpy scans in a
        #: thread pool — what lets a fleet's shards genuinely run in parallel
        #: under the asyncio frontend.  ``auto`` keeps the pool warm and asks
        #: the :class:`~repro.shard.tuner.ScanTuner`'s measured crossover per
        #: batch whether threads actually beat serial at that shape.
        #: Simulated time is identical in every mode (timers fold per-phase
        #: max in shard order regardless).
        self.executor = executor
        self._tuner = (
            tuner
            if tuner is not None
            else (default_tuner() if executor == EXECUTOR_AUTO else None)
        )
        self._num_shards = plan.num_shards if plan is not None else num_shards
        self._block_records = plan.block_records if plan is not None else block_records
        self._requested_plan = plan
        self._name = name
        #: The plan and the ``(shard, child, lanes)`` member triples, bundled
        #: in one immutable :class:`_Topology` snapshot that is only ever
        #: replaced by a single reference assignment.  A live migration
        #: (:meth:`swap_child`) must never let a concurrent ``execute`` pair
        #: a new child with a stale lane count, and an online reshape
        #: (:meth:`apply_topology`) must never let it pair a new plan's
        #: selector split with the old member tuple — both invariants fall
        #: out of reading the snapshot once.  The per-member lane cache
        #: lives *inside* the triple for the same reason (the hot path must
        #: not rebuild child capability objects per query either).
        self._topology: Optional[_Topology] = None
        self._database: Optional[Database] = None
        #: Optional observability hooks (:meth:`instrument`): a structured
        #: event log for per-shard scan / topology events and a tracer whose
        #: shard-scan side channel carries per-shard timers up to per-query
        #: traces.  Both default to ``None`` — the uninstrumented hot path
        #: pays one identity check per fold.
        self.events = None
        self.tracer = None
        #: Persistent scan pool for the ``threads`` executor, (re)built at
        #: prepare — spawning threads per ``execute`` call would put
        #: ms-scale thread churn on the per-query hot path.  Sized with
        #: headroom over the prepare-time member count because an online
        #: split can grow the fleet without a re-prepare; scans beyond the
        #: width queue (still correct, just less overlapped).
        self._pool: Optional[ThreadPoolExecutor] = None

    @property
    def plan(self) -> Optional[ShardPlan]:
        """The plan currently in effect (``None`` before ``prepare``)."""
        snapshot = self._topology
        return snapshot.plan if snapshot is not None else None

    @property
    def _members(self) -> Tuple[ShardMember, ...]:
        """Current member triples (one consistent read of the snapshot)."""
        snapshot = self._topology
        return snapshot.members if snapshot is not None else ()

    # -- database lifecycle ------------------------------------------------------

    def prepare(self, database: Database) -> Optional[PhaseTimer]:
        """Slice the database along the plan and prepare one child per shard.

        Shards preload concurrently on independent machines, so child preload
        timers fold with per-phase max.  With an explicitly pinned plan the
        database must match its shape (silently substituting a uniform plan
        would discard the caller's placement); without one, a re-prepare with
        a different shape rebuilds the plan uniformly, keeping the shard
        count and alignment.
        """
        self._database = database
        if self._requested_plan is not None:
            self._requested_plan.check_shape(database.num_records)
            plan = self._requested_plan
        else:
            plan = ShardPlan.uniform(
                database.num_records, self._num_shards, self._block_records
            )
        timer = PhaseTimer()
        members: List[ShardMember] = []
        for shard, shard_db in zip(
            plan.non_empty_shards, plan.slice_database(database)
        ):
            child = self._child_factory(shard)
            report = child.prepare(shard_db)
            if report is not None:
                timer.merge_parallel(report)
            members.append((shard, child, child.capabilities().lanes))
        # A re-prepare replaces the children wholesale; release the old
        # generation's resources (scan pools of nested fleets, etc.) so
        # repeated re-prepares never accumulate leaked threads.
        if self._topology is not None:
            _close_children(self._topology.members)
        self._topology = _Topology(plan, tuple(members))
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self.executor in (EXECUTOR_THREADS, EXECUTOR_AUTO):
            # Width headroom (+4) over the prepare-time member count: online
            # splits grow the fleet without re-preparing, and the pool is
            # deliberately kept for the backend's whole life — swapping pools
            # mid-reshape could hand an in-flight execute a shut-down pool.
            self._pool = ThreadPoolExecutor(
                max_workers=len(members) + 4, thread_name_prefix="shard-scan"
            )
        return timer if timer.durations else None

    def close(self) -> None:
        """Release the scan resources of a backend that will never serve again.

        The drain path for elastic replicas: a drained member is detached
        under the reconfigure gate, so no scan is in flight and the pool's
        idle threads can be dropped without waiting.  Closing propagates to
        every child exposing ``close`` (a nested sharded fleet, a future
        pooled child), so a fleet drain releases the whole subtree's thread
        pools — long-lived deployments reshape replicas for their entire
        life and must never leak executor threads generation over
        generation.  The backend stays structurally intact (children,
        topology) — only future ``execute`` calls fall back to sequential
        scans if it is ever revived.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        snapshot = self._topology
        if snapshot is not None:
            _close_children(snapshot.members)

    def apply_updates(self, database: Database, dirty_indices: Sequence[int]) -> PhaseTimer:
        """Swap in an updated database, touching only the owning shards.

        Dirty records are routed through the plan; a child whose shard holds
        none of them keeps its execution buffers untouched (and costs
        nothing).  Children exposing their own ``apply_updates`` (the PIM
        backend's partial MRAM re-copy) get shard-local dirty indices;
        others re-prepare their shard slice.
        """
        snapshot = self._topology
        if snapshot is None:
            raise ProtocolError("sharded backend has no prepared database")
        plan, members = snapshot.plan, snapshot.members
        plan.check_shape(database.num_records)
        routed = plan.route_records(dirty_indices)
        timer = PhaseTimer()
        for shard, child, _ in members:
            dirty = routed.get(shard.index)
            if not dirty:
                continue
            # Same slicing rule as prepare (plan.slice_database goes through
            # slice_shard too): update slices must be byte-identical to the
            # prepare-time slices or shards drift from the full database.
            shard_db = plan.slice_shard(database, shard)
            local = sorted(index - shard.start for index in dirty)
            child_apply = getattr(child, "apply_updates", None)
            if child_apply is not None:
                report = child_apply(shard_db, local)
            else:
                report = child.prepare(shard_db)
            if report is not None:
                timer.merge_parallel(report)
        self._database = database
        return timer

    # -- capability metadata -----------------------------------------------------

    def capabilities(self) -> BackendCapabilities:
        """Fleet-level capabilities aggregated from the children.

        Lanes and batch workers take the fleet minimum (every shard must be
        able to serve the lane the engine picks); ``supports_naive`` and
        ``preloaded`` hold only if they hold for every member; capacity is
        the sum of the members' advertised bounds when all are known.
        """
        children = [child.capabilities() for _, child, _ in self._members]
        if not children:
            # No members yet: advertise no residency and no capacity, so a
            # router sizing against these capabilities never mistakes an
            # unprepared fleet for a preloaded one.
            return BackendCapabilities(
                name=self._name,
                preloaded=False,
                max_records=0,
                description="sharded (unprepared)",
            )
        max_records: Optional[int] = 0
        for caps in children:
            if caps.max_records is None:
                max_records = None
                break
            max_records += caps.max_records
        kinds = sorted({caps.name for caps in children})
        return BackendCapabilities(
            name=self._name,
            lanes=min(caps.lanes for caps in children),
            batch_workers=min(caps.batch_workers for caps in children),
            supports_naive=all(caps.supports_naive for caps in children),
            preloaded=all(caps.preloaded for caps in children),
            max_records=max_records,
            description=(
                f"{len(self._members)} shards over {'+'.join(kinds)} backends"
            ),
        )

    # -- timing hooks --------------------------------------------------------------

    def latency_eval_seconds(self, num_records: int) -> float:
        """Host DPF evaluation happens once for the full domain; the fleet is
        as slow as its slowest member's host."""
        return max(
            (child.latency_eval_seconds(num_records) for _, child, _ in self._members),
            default=0.0,
        )

    def batch_eval_seconds(self, num_records: int) -> float:
        return max(
            (child.batch_eval_seconds(num_records) for _, child, _ in self._members),
            default=0.0,
        )

    # -- the sharded dpXOR ---------------------------------------------------------

    def execute(
        self, selector_bits: np.ndarray, breakdown: PhaseTimer, lane: int = 0
    ) -> np.ndarray:
        """Split the selector per shard, scan children, XOR-fold sub-payloads.

        Shards run on independent machines, so the children's phase timers
        combine with per-phase max (schedule-wise parallel) before being
        charged to the query's breakdown.
        """
        snapshot = self._topology
        if self._database is None or snapshot is None:
            raise ProtocolError("sharded backend has no prepared database")

        def scan_shard(job) -> Tuple[np.ndarray, PhaseTimer]:
            (shard, child, child_lanes), selector_slice = job
            child_timer = PhaseTimer()
            # The engine bounds lane by the fleet minimum, but members keep
            # serving if a caller drives a bare backend with a larger lane.
            child_lane = min(lane, child_lanes - 1)
            sub = child.execute(selector_slice, child_timer, lane=child_lane)
            return np.asarray(sub, dtype=np.uint8).reshape(-1), child_timer

        # One read of the topology snapshot: a live migration swapping a
        # child mid-batch — or a reshape swapping the whole plan — must not
        # tear this job list (the snapshot pairs the plan with its members,
        # and each triple pairs the child with its lane count).
        jobs = list(
            zip(snapshot.members, snapshot.plan.split_selector(selector_bits))
        )
        if self._pool is not None and len(jobs) > 1:
            # Children are independent machines with independent state, so
            # their blocking scans can genuinely overlap; results come back
            # in shard order, keeping the fold below deterministic.
            scans = list(self._pool.map(scan_shard, jobs))
        else:
            scans = [scan_shard(job) for job in jobs]

        accumulator = np.zeros(self._database.record_size, dtype=np.uint8)
        combined = PhaseTimer()
        for (shard, _, _), (sub, child_timer) in zip(snapshot.members, scans):
            accumulator ^= sub
            combined.merge_parallel(child_timer)
            if self.tracer is not None:
                self.tracer.record_shard_scan(breakdown, shard.index, child_timer)
            if self.events is not None:
                self.events.emit(
                    "shard.scan",
                    shard=shard.index,
                    records=shard.num_records,
                    seconds=child_timer.total,
                )
        breakdown.merge(combined)
        return accumulator

    def execute_many(
        self,
        selector_matrix: np.ndarray,
        breakdowns: Sequence[PhaseTimer],
        lanes: Sequence[int],
    ) -> np.ndarray:
        """Batched sharded scan: split once, scan slabs, word-fold across shards.

        The selector matrix is split into zero-copy per-shard column views
        **once per batch** (not once per query), and each shard job runs one
        batched scan with **no per-query Python in the worker**: children
        exposing ``scan_many_into`` (the reference-substrate kinds) scan
        their column block straight into a preallocated per-shard slab of
        one ``(num_shards, B, record_size)`` accumulator array; other kinds
        serve the block through their own ``execute_many``.  The slabs then
        XOR-fold across shards through the uint64 word path of
        :func:`~repro.core.partitioning.fold_partials`.

        Under the ``threads`` executor the shard jobs overlap in the
        persistent scan pool; ``auto`` asks the
        :class:`~repro.shard.tuner.ScanTuner` per flush whether threads beat
        serial at this shape's measured crossover (and with which chunk
        size).  Simulated time is identical in every mode: child timers
        still fold with per-phase max per query, exactly like the
        sequential path (fast-path children record no phases, also exactly
        like their sequential scans).
        """
        snapshot = self._topology
        if self._database is None or snapshot is None:
            raise ProtocolError("sharded backend has no prepared database")
        selector_matrix = np.asarray(selector_matrix, dtype=np.uint8)
        batch = selector_matrix.shape[0]
        record_size = self._database.record_size
        members = snapshot.members
        blocks = snapshot.plan.split_selector_many(selector_matrix)
        num_jobs = len(members)
        #: One slab per shard; fast-path workers write into their slab
        #: in place, so nothing is allocated or marshalled per query.
        partials = np.zeros((num_jobs, batch, record_size), dtype=np.uint8)

        chunk_records = None
        use_pool = self._pool is not None and num_jobs > 1
        if self.executor == EXECUTOR_AUTO and self._tuner is not None:
            calibration = self._tuner.choose(
                self._database.num_records, record_size, batch
            )
            chunk_records = calibration.chunk_records
            use_pool = use_pool and calibration.executor == EXECUTOR_THREADS

        def scan_shard_batch(index: int) -> Optional[List[PhaseTimer]]:
            (shard, child, child_lanes), block = members[index], blocks[index]
            scan_into = getattr(child, "scan_many_into", None)
            if scan_into is not None:
                scan_into(block, partials[index], chunk_records=chunk_records)
                return None
            child_timers = [PhaseTimer() for _ in breakdowns]
            child_query_lanes = [min(lane, child_lanes - 1) for lane in lanes]
            subs = child.execute_many(block, child_timers, child_query_lanes)
            partials[index] = np.asarray(subs, dtype=np.uint8).reshape(
                batch, record_size
            )
            return child_timers

        if use_pool:
            timers_per_shard = list(self._pool.map(scan_shard_batch, range(num_jobs)))
        else:
            timers_per_shard = [scan_shard_batch(index) for index in range(num_jobs)]

        # Cross-shard fold through the same uint64 word path as the
        # single-query pipeline (one flattened fold, B * record_size bytes
        # per shard, bit-identical to per-query byte folds).
        accumulators = fold_partials(
            [slab.reshape(-1) for slab in partials], batch * record_size
        ).reshape(batch, record_size)

        combined = [PhaseTimer() for _ in breakdowns]
        for (shard, _, _), child_timers in zip(members, timers_per_shard):
            if child_timers is not None:
                for query_combined, child_timer in zip(combined, child_timers):
                    query_combined.merge_parallel(child_timer)
            if self.tracer is not None:
                trace_timers = (
                    child_timers
                    if child_timers is not None
                    else [PhaseTimer() for _ in breakdowns]
                )
                for breakdown, child_timer in zip(breakdowns, trace_timers):
                    self.tracer.record_shard_scan(breakdown, shard.index, child_timer)
            if self.events is not None:
                self.events.emit(
                    "shard.scan",
                    shard=shard.index,
                    records=shard.num_records,
                    batch=batch,
                    seconds=(
                        sum(timer.total for timer in child_timers)
                        if child_timers is not None
                        else 0.0
                    ),
                )
        for breakdown, query_combined in zip(breakdowns, combined):
            breakdown.merge(query_combined)
        return accumulators

    # -- views for facades/tests ----------------------------------------------------

    @property
    def members(self) -> Tuple[Tuple[ShardSpec, PIRBackend], ...]:
        """``(shard, child backend)`` pairs, in shard order.

        An **immutable snapshot**: the tuple is derived from one read of the
        topology snapshot, so it stays internally consistent while
        concurrent :meth:`swap_child` / :meth:`apply_topology` calls land —
        but it also goes stale the moment one does.  Re-read the property
        for a fresh view; mutating fleet membership goes through the swap
        methods, never through this tuple.
        """
        return tuple((shard, child) for shard, child, _ in self._members)

    # -- observability ---------------------------------------------------------------

    def instrument(self, events=None, tracer=None) -> None:
        """Attach observability hooks (both optional, both default off).

        ``events`` (an :class:`repro.obs.events.EventLog`) receives per-shard
        ``shard.scan`` events and the ``topology.*`` reconfiguration events;
        ``tracer`` (an :class:`repro.obs.tracing.Tracer`) receives per-shard
        child timers keyed by each query's breakdown object, so the hub can
        nest shard scan spans under the query's server span.  Emission is
        fault-isolated and thread-safe on the hooks' side; with both left
        ``None`` the scan path is exactly the uninstrumented one.
        """
        self.events = events
        self.tracer = tracer

    # -- live reconfiguration (the control plane's swap points) ----------------------

    def swap_child(self, shard_index: int, child: PIRBackend) -> Optional[PhaseTimer]:
        """Atomically replace one shard's child backend with ``child``.

        The migration primitive of the online rebalancer
        (:class:`repro.control.rebalancer.Rebalancer`): the new child is
        prepared on the shard's current database slice (the same
        :meth:`~repro.shard.plan.ShardPlan.slice_shard` cut ``prepare`` and
        ``apply_updates`` use, so its bytes cannot drift from the fleet's)
        *before* the member entry is replaced — queries keep hitting the old
        child until the single-assignment swap, and are bit-identical either
        way because both children hold the same slice.  Returns the new
        child's preload report (the migration's transfer cost), if any.
        """
        snapshot = self._topology
        if self._database is None or snapshot is None:
            raise ProtocolError("sharded backend has no prepared database")
        plan, members = snapshot.plan, snapshot.members
        for position, (shard, _, _) in enumerate(members):
            if shard.index == shard_index:
                break
        else:
            raise ConfigurationError(
                f"no non-empty shard with index {shard_index} to swap"
            )
        report = child.prepare(plan.slice_shard(self._database, shard))
        replaced = list(members)
        outgoing = replaced[position]
        replaced[position] = (shard, child, child.capabilities().lanes)
        # Single reference assignment: an execute() running concurrently (the
        # threads executor under the asyncio frontend) reads either the old
        # snapshot or the new one, never a child paired with a stale lane
        # count or a stale plan.
        self._topology = _Topology(plan, tuple(replaced))
        # Migrations run under the control plane's reconfigure gate, so the
        # outgoing child has no scan in flight; release its resources now or
        # a long-lived fleet leaks one backend per migration.
        _close_children([outgoing])
        if self.events is not None:
            self.events.emit(
                "topology.swap_child",
                shard=shard_index,
                child=child.capabilities().name,
                transfer_seconds=report.total if report is not None else 0.0,
            )
        return report

    def stage_topology(
        self,
        change: TopologyChange,
        child_factory: Optional[ShardBackendFactory] = None,
    ) -> "StagedTopology":
        """Prepare a reshape off to the side, **mutating nothing**.

        The fallible half of the two-phase reshape: children for the
        *changed* ranges (the split halves, the merged spans) are built by
        ``child_factory`` (defaulting to the backend's own) and prepared on
        the **new** plan's slices; children whose shard range survived the
        reshape byte-for-byte are reused as-is (their prepared buffers are
        still exactly their slice — only the shard index moved).  Any
        failure here — a factory error, a child refusing its slice —
        leaves the backend exactly as it was.  The returned staging is
        installed by :meth:`commit_topology`, which *cannot* fail: that is
        what lets a router stage a change across every replica fleet
        before any fleet commits, so a multi-fleet reshape never applies
        partially.

        Raises :class:`ConfigurationError` when ``change`` was built
        against any plan but the one currently in effect (topology
        versions must evolve linearly; a stale change would silently drop
        a concurrent reshape).
        """
        snapshot = self._topology
        if self._database is None or snapshot is None:
            raise ProtocolError("sharded backend has no prepared database")
        plan, members = snapshot.plan, snapshot.members
        change.require_built_on(plan, "this backend")
        factory = child_factory if child_factory is not None else self._child_factory
        child_by_old_index: Dict[int, Tuple[PIRBackend, int]] = {
            shard.index: (child, lanes) for shard, child, lanes in members
        }
        reused_old = {
            new_index: old_index
            for old_index, new_index in change.unchanged_pairs()
        }
        timer = PhaseTimer()
        new_members: List[ShardMember] = []
        for shard in change.new_plan.non_empty_shards:
            old_index = reused_old.get(shard.index)
            if old_index is not None and old_index in child_by_old_index:
                child, lanes = child_by_old_index[old_index]
                new_members.append((shard, child, lanes))
                continue
            child = factory(shard)
            report = child.prepare(
                change.new_plan.slice_shard(self._database, shard)
            )
            if report is not None:
                timer.merge_parallel(report)
            new_members.append((shard, child, child.capabilities().lanes))
        return StagedTopology(
            backend=self,
            built_on=snapshot,
            topology=_Topology(change.new_plan, tuple(new_members)),
            report=timer if timer.durations else None,
        )

    def commit_topology(self, staged: "StagedTopology") -> Optional[PhaseTimer]:
        """Install a staged reshape: one reference assignment, cannot fail.

        Threaded in-flight ``execute`` calls finish against the old
        snapshot and the next query sees the new topology whole; retrievals
        are bit-identical throughout (both topologies tile the same
        database bytes).  Returns the staging's preload report (the
        reshape's transfer cost, folded per-phase max — changed ranges
        stand up in parallel), or ``None`` when nothing charged a timer.
        """
        if staged.backend is not self:
            raise ConfigurationError(
                "staged topology belongs to a different backend"
            )
        if staged.built_on is not self._topology:
            raise ConfigurationError(
                "the topology moved between stage and commit; re-stage "
                "against the live plan"
            )
        outgoing = staged.built_on
        # The single-assignment swap (see _Topology): in-flight queries keep
        # the old plan *and* the old members; nothing ever mixes the two.
        self._topology = staged.topology
        # A later full re-prepare must rebuild the topology in effect, not
        # resurrect the pre-reshape plan.
        self._requested_plan = staged.topology.plan
        # Children the reshape did not carry forward are done serving
        # (commits happen under the reconfigure gate); close them so repeated
        # reshapes never accumulate leaked scan pools.
        _close_children(
            outgoing.members, keep=[child for _, child, _ in staged.topology.members]
        )
        if self.events is not None:
            self.events.emit(
                "topology.applied",
                version=staged.topology.plan.version,
                shards=staged.topology.plan.num_shards,
                transfer_seconds=(
                    staged.report.total if staged.report is not None else 0.0
                ),
            )
        return staged.report

    def apply_topology(
        self,
        change: TopologyChange,
        child_factory: Optional[ShardBackendFactory] = None,
    ) -> Optional[PhaseTimer]:
        """Atomically reshape the fleet along a plan split/merge change.

        The topology counterpart of :meth:`swap_child`:
        :meth:`stage_topology` then :meth:`commit_topology` in one call —
        the convenient form when there is only this one backend to
        reshape.  A router coordinating *several* replica fleets stages
        them all before committing any (see
        :meth:`repro.shard.fleet.FleetRouter.apply_topology`), so a
        failure can never leave the fleets on different plan versions.
        """
        return self.commit_topology(self.stage_topology(change, child_factory))


class ShardedServer:
    """Server facade over a :class:`ShardedBackend`: one replica, many shards."""

    def __init__(
        self,
        database: Database,
        server_id: int = 0,
        num_shards: int = 2,
        child_kind: str = "reference",
        child_factory: Optional[ShardBackendFactory] = None,
        plan: Optional[ShardPlan] = None,
        block_records: int = 1,
        config: Optional[IMPIRConfig] = None,
        segment_records: Optional[int] = None,
        executor: str = EXECUTOR_SERIAL,
        tuner: Optional[ScanTuner] = None,
        prg=None,
    ) -> None:
        if child_factory is None:
            child_factory = bare_backend_factory(
                child_kind, config=config, segment_records=segment_records
            )
        self.backend = ShardedBackend(
            child_factory,
            num_shards=num_shards,
            plan=plan,
            block_records=block_records,
            executor=executor,
            tuner=tuner,
        )
        self.engine = QueryEngine(self.backend, server_id=server_id, prg=prg)
        self.engine.prepare(database)
        self.server_id = server_id

    @property
    def database(self) -> Database:
        """The replica's current (full, unsharded) database snapshot."""
        return self.engine.database

    @property
    def plan(self) -> ShardPlan:
        """The shard plan currently in effect."""
        return self.backend.plan

    @property
    def num_shards(self) -> int:
        """Shard count of the current plan."""
        return self.backend.plan.num_shards

    @property
    def preload_report(self) -> Optional[PhaseTimer]:
        """Fleet preload cost (per-phase max across shards), if any was charged."""
        return self.engine.preload_report

    def answer(self, query, cluster_index: int = 0):
        """Answer one query across every shard of the fleet."""
        return self.engine.answer(query, lane=cluster_index)

    def answer_batch(self, queries: Sequence):
        """Answer a batch; every query fans out to every shard."""
        return self.engine.answer_many(queries)

    def apply_updates(self, updates) -> PhaseTimer:
        """Apply ``(index, record_bytes)`` updates, touching owning shards only."""
        updates = list(updates)
        if not updates:
            return PhaseTimer()
        new_database = self.database.with_updates(updates)
        dirty_indices = sorted({index for index, _ in updates})
        timer = self.backend.apply_updates(new_database, dirty_indices)
        self.engine.database = new_database
        return timer

    def swap_child(self, shard_index: int, child: PIRBackend) -> Optional[PhaseTimer]:
        """Live-migrate one shard onto ``child`` (see
        :meth:`ShardedBackend.swap_child`); returns its preload report."""
        return self.backend.swap_child(shard_index, child)

    def apply_topology(
        self,
        change: TopologyChange,
        child_factory: Optional[ShardBackendFactory] = None,
    ) -> Optional[PhaseTimer]:
        """Live-reshape this replica's shards along ``change`` (see
        :meth:`ShardedBackend.apply_topology`); returns the transfer report."""
        return self.backend.apply_topology(change, child_factory)

    def shard_for_record(self, record_index: int) -> ShardSpec:
        """The shard owning ``record_index`` (routing/diagnostic helper)."""
        return self.backend.plan.shard_for_record(record_index)

    def shard_utilization(self) -> Dict[int, int]:
        """Records held per shard index (diagnostic)."""
        return {shard.index: shard.num_records for shard in self.backend.plan.shards}
