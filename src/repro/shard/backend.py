"""Sharded execution: one :class:`PIRBackend` composed of per-shard children.

A :class:`ShardedBackend` implements the engine's backend protocol by
delegating to one child backend per (non-empty) shard of a
:class:`~repro.shard.plan.ShardPlan`:

* ``prepare`` slices the database along the plan and hands each child its
  shard (children preload concurrently, so their preload timers fold with
  per-phase max);
* ``execute`` splits the engine's full-domain selector vector per shard,
  lets every child scan its slice (schedule-wise in parallel — child phase
  timers fold with per-phase max) and XOR-folds the sub-payloads into one
  answer that is bit-identical to the unsharded scan;
* ``apply_updates`` routes dirty records to the owning shard only, leaving
  every other child's buffers untouched.

The engine on top is a completely ordinary :class:`QueryEngine`: validation,
DPF evaluation and answer assembly neither know nor care that the database
is distributed.  Children are *bare* backends (no engine of their own) built
by a factory, so a fleet can mix kinds — preloaded PIM for hot shards,
streamed IM-PIR for cold ones (see :mod:`repro.shard.fleet`).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError, ProtocolError
from repro.common.events import PhaseTimer
from repro.core.config import IMPIRConfig
from repro.core.engine import BackendCapabilities, PIRBackend, QueryEngine
from repro.pir.database import Database
from repro.shard.plan import ShardPlan, ShardSpec

#: A callable building the bare execution backend for one shard.
ShardBackendFactory = Callable[[ShardSpec], PIRBackend]

#: Backend kinds :func:`bare_backend_factory` can instantiate per shard.
BARE_BACKEND_KINDS: Tuple[str, ...] = (
    "reference",
    "cpu",
    "gpu",
    "im-pir",
    "im-pir-streamed",
)

#: How a :class:`ShardedBackend` runs its per-shard ``execute`` calls.
EXECUTOR_SERIAL = "serial"
EXECUTOR_THREADS = "threads"
SHARD_EXECUTORS: Tuple[str, ...] = (EXECUTOR_SERIAL, EXECUTOR_THREADS)


def default_child_config() -> IMPIRConfig:
    """The per-shard PIM configuration used when none is supplied.

    Small (4 DPUs, 2 tasklets) because a shard is a fraction of the database
    and functional runs must stay fast; pass an explicit config to
    :func:`bare_backend_factory` / :class:`ShardedServer` to override.
    """
    from repro.pim.config import scaled_down_config

    return IMPIRConfig(pim=scaled_down_config(num_dpus=4, tasklets=2))


def bare_backend_factory(
    kind: str,
    config: Optional[IMPIRConfig] = None,
    segment_records: Optional[int] = None,
) -> ShardBackendFactory:
    """A factory producing fresh bare backends of ``kind`` for each shard.

    The CPU/GPU kinds share the reference scan substrate (their cost models
    live in the server facades, not the backend); the PIM kinds each get
    their own simulated UPMEM system so shards are independent machines.
    """
    if kind not in BARE_BACKEND_KINDS:
        raise ConfigurationError(
            f"unknown shard backend kind {kind!r}; known: {', '.join(BARE_BACKEND_KINDS)}"
        )

    def build(shard: ShardSpec) -> PIRBackend:
        from repro.core.engine import ReferenceBackend

        if kind == "reference":
            return ReferenceBackend()
        if kind == "cpu":
            return ReferenceBackend(name="cpu-pir")
        if kind == "gpu":
            return ReferenceBackend(name="gpu-pir")
        child_config = config if config is not None else default_child_config()
        from repro.pim.system import UPMEMSystem

        if kind == "im-pir":
            from repro.core.impir import PIMClusterBackend

            return PIMClusterBackend(child_config, UPMEMSystem(child_config.pim))
        from repro.core.streaming import StreamedPIMBackend

        return StreamedPIMBackend(
            child_config,
            UPMEMSystem(child_config.pim),
            segment_records=segment_records,
        )

    return build


class ShardedBackend(PIRBackend):
    """A replica fleet: child backends per shard behind one backend surface."""

    def __init__(
        self,
        child_factory: ShardBackendFactory,
        num_shards: int = 2,
        plan: Optional[ShardPlan] = None,
        block_records: int = 1,
        name: str = "sharded",
        executor: str = EXECUTOR_SERIAL,
    ) -> None:
        if num_shards <= 0:
            raise ConfigurationError("num_shards must be positive")
        if executor not in SHARD_EXECUTORS:
            raise ConfigurationError(
                f"unknown shard executor {executor!r}; known: {', '.join(SHARD_EXECUTORS)}"
            )
        self._child_factory = child_factory
        #: ``serial`` scans shards one after another on the calling thread;
        #: ``threads`` overlaps the children's blocking numpy scans in a
        #: thread pool — what lets a fleet's shards genuinely run in parallel
        #: under the asyncio frontend.  Simulated time is identical either
        #: way (timers fold per-phase max in shard order regardless).
        self.executor = executor
        self._num_shards = plan.num_shards if plan is not None else num_shards
        self._block_records = plan.block_records if plan is not None else block_records
        self._requested_plan = plan
        self._name = name
        self.plan: Optional[ShardPlan] = None
        #: ``(shard, child, lanes)`` triples for every non-empty shard, in
        #: shard order.  One immutable tuple, always replaced by a single
        #: reference assignment: a live migration (:meth:`swap_child`) must
        #: never let a concurrent ``execute`` pair a new child with a stale
        #: lane count, and the per-member lane cache lives *inside* the
        #: triple for exactly that reason (the hot path must not rebuild
        #: child capability objects per query either).
        self._members: Tuple[Tuple[ShardSpec, PIRBackend, int], ...] = ()
        self._database: Optional[Database] = None
        #: Persistent scan pool for the ``threads`` executor, (re)built at
        #: prepare — spawning threads per ``execute`` call would put
        #: ms-scale thread churn on the per-query hot path.
        self._pool: Optional[ThreadPoolExecutor] = None

    # -- database lifecycle ------------------------------------------------------

    def prepare(self, database: Database) -> Optional[PhaseTimer]:
        """Slice the database along the plan and prepare one child per shard.

        Shards preload concurrently on independent machines, so child preload
        timers fold with per-phase max.  With an explicitly pinned plan the
        database must match its shape (silently substituting a uniform plan
        would discard the caller's placement); without one, a re-prepare with
        a different shape rebuilds the plan uniformly, keeping the shard
        count and alignment.
        """
        self._database = database
        if self._requested_plan is not None:
            self._requested_plan.check_shape(database.num_records)
            self.plan = self._requested_plan
        else:
            self.plan = ShardPlan.uniform(
                database.num_records, self._num_shards, self._block_records
            )
        timer = PhaseTimer()
        members: List[Tuple[ShardSpec, PIRBackend, int]] = []
        for shard, shard_db in zip(
            self.plan.non_empty_shards, self.plan.slice_database(database)
        ):
            child = self._child_factory(shard)
            report = child.prepare(shard_db)
            if report is not None:
                timer.merge_parallel(report)
            members.append((shard, child, child.capabilities().lanes))
        self._members = tuple(members)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self.executor == EXECUTOR_THREADS and len(self._members) > 1:
            self._pool = ThreadPoolExecutor(
                max_workers=len(self._members), thread_name_prefix="shard-scan"
            )
        return timer if timer.durations else None

    def apply_updates(self, database: Database, dirty_indices: Sequence[int]) -> PhaseTimer:
        """Swap in an updated database, touching only the owning shards.

        Dirty records are routed through the plan; a child whose shard holds
        none of them keeps its execution buffers untouched (and costs
        nothing).  Children exposing their own ``apply_updates`` (the PIM
        backend's partial MRAM re-copy) get shard-local dirty indices;
        others re-prepare their shard slice.
        """
        if self.plan is None:
            raise ProtocolError("sharded backend has no prepared database")
        self.plan.check_shape(database.num_records)
        routed = self.plan.route_records(dirty_indices)
        timer = PhaseTimer()
        for shard, child, _ in self._members:
            dirty = routed.get(shard.index)
            if not dirty:
                continue
            # Same slicing rule as prepare (plan.slice_database goes through
            # slice_shard too): update slices must be byte-identical to the
            # prepare-time slices or shards drift from the full database.
            shard_db = self.plan.slice_shard(database, shard)
            local = sorted(index - shard.start for index in dirty)
            child_apply = getattr(child, "apply_updates", None)
            if child_apply is not None:
                report = child_apply(shard_db, local)
            else:
                report = child.prepare(shard_db)
            if report is not None:
                timer.merge_parallel(report)
        self._database = database
        return timer

    # -- capability metadata -----------------------------------------------------

    def capabilities(self) -> BackendCapabilities:
        """Fleet-level capabilities aggregated from the children.

        Lanes and batch workers take the fleet minimum (every shard must be
        able to serve the lane the engine picks); ``supports_naive`` and
        ``preloaded`` hold only if they hold for every member; capacity is
        the sum of the members' advertised bounds when all are known.
        """
        children = [child.capabilities() for _, child, _ in self._members]
        if not children:
            # No members yet: advertise no residency and no capacity, so a
            # router sizing against these capabilities never mistakes an
            # unprepared fleet for a preloaded one.
            return BackendCapabilities(
                name=self._name,
                preloaded=False,
                max_records=0,
                description="sharded (unprepared)",
            )
        max_records: Optional[int] = 0
        for caps in children:
            if caps.max_records is None:
                max_records = None
                break
            max_records += caps.max_records
        kinds = sorted({caps.name for caps in children})
        return BackendCapabilities(
            name=self._name,
            lanes=min(caps.lanes for caps in children),
            batch_workers=min(caps.batch_workers for caps in children),
            supports_naive=all(caps.supports_naive for caps in children),
            preloaded=all(caps.preloaded for caps in children),
            max_records=max_records,
            description=(
                f"{len(self._members)} shards over {'+'.join(kinds)} backends"
            ),
        )

    # -- timing hooks --------------------------------------------------------------

    def latency_eval_seconds(self, num_records: int) -> float:
        """Host DPF evaluation happens once for the full domain; the fleet is
        as slow as its slowest member's host."""
        return max(
            (child.latency_eval_seconds(num_records) for _, child, _ in self._members),
            default=0.0,
        )

    def batch_eval_seconds(self, num_records: int) -> float:
        return max(
            (child.batch_eval_seconds(num_records) for _, child, _ in self._members),
            default=0.0,
        )

    # -- the sharded dpXOR ---------------------------------------------------------

    def execute(
        self, selector_bits: np.ndarray, breakdown: PhaseTimer, lane: int = 0
    ) -> np.ndarray:
        """Split the selector per shard, scan children, XOR-fold sub-payloads.

        Shards run on independent machines, so the children's phase timers
        combine with per-phase max (schedule-wise parallel) before being
        charged to the query's breakdown.
        """
        if self._database is None or self.plan is None:
            raise ProtocolError("sharded backend has no prepared database")

        def scan_shard(job) -> Tuple[np.ndarray, PhaseTimer]:
            (shard, child, child_lanes), selector_slice = job
            child_timer = PhaseTimer()
            # The engine bounds lane by the fleet minimum, but members keep
            # serving if a caller drives a bare backend with a larger lane.
            child_lane = min(lane, child_lanes - 1)
            sub = child.execute(selector_slice, child_timer, lane=child_lane)
            return np.asarray(sub, dtype=np.uint8).reshape(-1), child_timer

        # One read of the members tuple: a live migration swapping a child
        # mid-batch must not tear this job list (each triple already pairs
        # the child with its lane count).
        jobs = list(zip(self._members, self.plan.split_selector(selector_bits)))
        if self._pool is not None and len(jobs) > 1:
            # Children are independent machines with independent state, so
            # their blocking scans can genuinely overlap; results come back
            # in shard order, keeping the fold below deterministic.
            scans = list(self._pool.map(scan_shard, jobs))
        else:
            scans = [scan_shard(job) for job in jobs]

        accumulator = np.zeros(self._database.record_size, dtype=np.uint8)
        combined = PhaseTimer()
        for sub, child_timer in scans:
            accumulator ^= sub
            combined.merge_parallel(child_timer)
        breakdown.merge(combined)
        return accumulator

    # -- views for facades/tests ----------------------------------------------------

    @property
    def members(self) -> List[Tuple[ShardSpec, PIRBackend]]:
        """``(shard, child backend)`` pairs, in shard order (read-only use)."""
        return [(shard, child) for shard, child, _ in self._members]

    # -- live migration (the control plane's swap point) -----------------------------

    def swap_child(self, shard_index: int, child: PIRBackend) -> Optional[PhaseTimer]:
        """Atomically replace one shard's child backend with ``child``.

        The migration primitive of the online rebalancer
        (:class:`repro.control.rebalancer.Rebalancer`): the new child is
        prepared on the shard's current database slice (the same
        :meth:`~repro.shard.plan.ShardPlan.slice_shard` cut ``prepare`` and
        ``apply_updates`` use, so its bytes cannot drift from the fleet's)
        *before* the member entry is replaced — queries keep hitting the old
        child until the single-assignment swap, and are bit-identical either
        way because both children hold the same slice.  Returns the new
        child's preload report (the migration's transfer cost), if any.
        """
        if self._database is None or self.plan is None:
            raise ProtocolError("sharded backend has no prepared database")
        for position, (shard, _, _) in enumerate(self._members):
            if shard.index == shard_index:
                break
        else:
            raise ConfigurationError(
                f"no non-empty shard with index {shard_index} to swap"
            )
        report = child.prepare(self.plan.slice_shard(self._database, shard))
        members = list(self._members)
        members[position] = (shard, child, child.capabilities().lanes)
        # Single reference assignment: an execute() running concurrently (the
        # threads executor under the asyncio frontend) reads either the old
        # tuple or the new one, never a child paired with a stale lane count.
        self._members = tuple(members)
        return report


class ShardedServer:
    """Server facade over a :class:`ShardedBackend`: one replica, many shards."""

    def __init__(
        self,
        database: Database,
        server_id: int = 0,
        num_shards: int = 2,
        child_kind: str = "reference",
        child_factory: Optional[ShardBackendFactory] = None,
        plan: Optional[ShardPlan] = None,
        block_records: int = 1,
        config: Optional[IMPIRConfig] = None,
        segment_records: Optional[int] = None,
        executor: str = EXECUTOR_SERIAL,
        prg=None,
    ) -> None:
        if child_factory is None:
            child_factory = bare_backend_factory(
                child_kind, config=config, segment_records=segment_records
            )
        self.backend = ShardedBackend(
            child_factory,
            num_shards=num_shards,
            plan=plan,
            block_records=block_records,
            executor=executor,
        )
        self.engine = QueryEngine(self.backend, server_id=server_id, prg=prg)
        self.engine.prepare(database)
        self.server_id = server_id

    @property
    def database(self) -> Database:
        """The replica's current (full, unsharded) database snapshot."""
        return self.engine.database

    @property
    def plan(self) -> ShardPlan:
        """The shard plan currently in effect."""
        return self.backend.plan

    @property
    def num_shards(self) -> int:
        """Shard count of the current plan."""
        return self.backend.plan.num_shards

    @property
    def preload_report(self) -> Optional[PhaseTimer]:
        """Fleet preload cost (per-phase max across shards), if any was charged."""
        return self.engine.preload_report

    def answer(self, query, cluster_index: int = 0):
        """Answer one query across every shard of the fleet."""
        return self.engine.answer(query, lane=cluster_index)

    def answer_batch(self, queries: Sequence):
        """Answer a batch; every query fans out to every shard."""
        return self.engine.answer_many(queries)

    def apply_updates(self, updates) -> PhaseTimer:
        """Apply ``(index, record_bytes)`` updates, touching owning shards only."""
        updates = list(updates)
        if not updates:
            return PhaseTimer()
        new_database = self.database.with_updates(updates)
        dirty_indices = sorted({index for index, _ in updates})
        timer = self.backend.apply_updates(new_database, dirty_indices)
        self.engine.database = new_database
        return timer

    def swap_child(self, shard_index: int, child: PIRBackend) -> Optional[PhaseTimer]:
        """Live-migrate one shard onto ``child`` (see
        :meth:`ShardedBackend.swap_child`); returns its preload report."""
        return self.backend.swap_child(shard_index, child)

    def shard_for_record(self, record_index: int) -> ShardSpec:
        """The shard owning ``record_index`` (routing/diagnostic helper)."""
        return self.backend.plan.shard_for_record(record_index)

    def shard_utilization(self) -> Dict[int, int]:
        """Records held per shard index (diagnostic)."""
        return {shard.index: shard.num_records for shard in self.backend.plan.shards}
