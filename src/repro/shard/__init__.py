"""Sharding subsystem: replica fleets with capability-aware dispatch.

Distribution policy for the PIR database, kept outside the protocol code:
:class:`ShardPlan` partitions a database into contiguous (block-aligned)
shards, :class:`ShardedBackend` composes one child backend per shard behind
the ordinary :class:`~repro.core.engine.PIRBackend` protocol, and
:class:`FleetRouter` turns each privacy replica into a fleet whose shards
are placed on the cheapest capable backend kind (hot shards on preloaded
PIM, cold shards on streamed IM-PIR).

Plans are versioned and online-mutable: ``ShardPlan.split_shard`` /
``ShardPlan.merge_shards`` return a new plan plus a :class:`TopologyChange`
mapping, which ``ShardedBackend.apply_topology`` / ``FleetRouter
.apply_topology`` swap into the live data plane atomically (retrievals
bit-identical throughout).
"""

from repro.shard.backend import (
    BARE_BACKEND_KINDS,
    EXECUTOR_SERIAL,
    EXECUTOR_THREADS,
    SHARD_EXECUTORS,
    ShardBackendFactory,
    ShardedBackend,
    ShardedServer,
    bare_backend_factory,
)
from repro.shard.fleet import (
    CandidateKind,
    FleetRouter,
    ShardPlacement,
    default_candidates,
    heats_from_trace,
    plan_placements,
    render_placements,
)
from repro.shard.plan import ShardPlan, ShardSpec, TopologyChange

__all__ = [
    "BARE_BACKEND_KINDS",
    "EXECUTOR_SERIAL",
    "EXECUTOR_THREADS",
    "SHARD_EXECUTORS",
    "ShardBackendFactory",
    "ShardedBackend",
    "ShardedServer",
    "bare_backend_factory",
    "CandidateKind",
    "FleetRouter",
    "ShardPlacement",
    "default_candidates",
    "heats_from_trace",
    "plan_placements",
    "render_placements",
    "ShardPlan",
    "ShardSpec",
    "TopologyChange",
]
