"""Shard plans: contiguous record-range partitions of a PIR database.

A :class:`ShardPlan` is the distribution policy of the shard layer — *which*
records live on *which* fleet member — kept deliberately separate from the
PIR protocol code (the engine neither knows nor cares how many machines hold
the database).  A plan tiles ``[0, num_records)`` with contiguous
:class:`ShardSpec` ranges; boundaries can be forced onto ``block_records``
multiples so PIM/DPU backends keep their own per-DPU partitioning invariants
(a shard never starts or ends mid-block).

Plans are value objects: slicing a database, splitting a selector vector and
routing a record index are all pure functions of the plan, which is what
makes the sharded execution path testably bit-identical to the unsharded
one.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError, DatabaseError
from repro.core.partitioning import aligned_chunk_bounds
from repro.pir.database import Database


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous shard: records ``[start, stop)`` of the database."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError("shard index must be non-negative")
        if not 0 <= self.start <= self.stop:
            raise ConfigurationError(f"invalid shard range [{self.start}, {self.stop})")

    @property
    def num_records(self) -> int:
        """Records held by this shard."""
        return self.stop - self.start

    @property
    def is_empty(self) -> bool:
        """Whether the shard holds no records (shard count > record count)."""
        return self.start == self.stop

    def contains(self, record_index: int) -> bool:
        """Whether ``record_index`` is owned by this shard."""
        return self.start <= record_index < self.stop


@dataclass(frozen=True)
class ShardPlan:
    """A complete tiling of a database into contiguous shards.

    ``shards`` covers ``[0, num_records)`` exactly once, in order; trailing
    shards may be empty when the plan has more shards than records.
    """

    num_records: int
    shards: Tuple[ShardSpec, ...]
    block_records: int = 1

    def __post_init__(self) -> None:
        if self.num_records <= 0:
            raise ConfigurationError("num_records must be positive")
        if not self.shards:
            raise ConfigurationError("a plan needs at least one shard")
        if self.block_records <= 0:
            raise ConfigurationError("block_records must be positive")
        cursor = 0
        for position, shard in enumerate(self.shards):
            if shard.index != position:
                raise ConfigurationError(
                    f"shard at position {position} carries index {shard.index}"
                )
            if shard.start != cursor:
                raise ConfigurationError(
                    f"shard {position} starts at {shard.start}, expected {cursor}"
                )
            cursor = shard.stop
        if cursor != self.num_records:
            raise ConfigurationError(
                f"shards cover [0, {cursor}), database has {self.num_records} records"
            )
        # Cached for shard_for_record's bisect: routing a dirty-record batch
        # must not rebuild this list per record (the plan is immutable).
        object.__setattr__(
            self, "_starts", tuple(shard.start for shard in self.shards)
        )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def uniform(
        cls, num_records: int, num_shards: int, block_records: int = 1
    ) -> "ShardPlan":
        """Evenly split ``num_records`` into ``num_shards`` aligned shards."""
        bounds = aligned_chunk_bounds(num_records, num_shards, block_records)
        return cls.from_bounds(num_records, bounds, block_records=block_records)

    @classmethod
    def from_bounds(
        cls,
        num_records: int,
        bounds: Sequence[Tuple[int, int]],
        block_records: int = 1,
    ) -> "ShardPlan":
        """Build a plan from explicit ``(start, stop)`` ranges."""
        shards = tuple(
            ShardSpec(index=i, start=start, stop=stop)
            for i, (start, stop) in enumerate(bounds)
        )
        return cls(num_records=num_records, shards=shards, block_records=block_records)

    # -- lookups ----------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Total shard count, including empty trailing shards."""
        return len(self.shards)

    @property
    def non_empty_shards(self) -> Tuple[ShardSpec, ...]:
        """The shards that actually hold records."""
        return tuple(shard for shard in self.shards if not shard.is_empty)

    def shard_for_record(self, record_index: int) -> ShardSpec:
        """The shard owning ``record_index``."""
        if not 0 <= record_index < self.num_records:
            raise DatabaseError(
                f"record index {record_index} out of range [0, {self.num_records})"
            )
        position = bisect_right(self._starts, record_index) - 1
        # Empty shards share their start with the owner that follows the same
        # boundary; walk back to the shard that really contains the record.
        while self.shards[position].is_empty:
            position -= 1
        return self.shards[position]

    def route_records(self, record_indices: Sequence[int]) -> dict:
        """Group record indices by owning shard: ``{shard_index: [indices]}``."""
        routed: dict = {}
        for record_index in record_indices:
            shard = self.shard_for_record(record_index)
            routed.setdefault(shard.index, []).append(record_index)
        return routed

    # -- splitting --------------------------------------------------------------

    def slice_shard(self, database: Database, shard: ShardSpec) -> Database:
        """The database view one shard holds (zero-copy).

        The single slicing rule of the plan: ``prepare`` and ``apply_updates``
        must cut the same byte ranges, so both go through here (directly or
        via :meth:`slice_database`) instead of re-deriving the bounds.
        """
        self.check_shape(database.num_records)
        return Database(database.chunk(shard.start, shard.stop))

    def slice_database(self, database: Database) -> List[Database]:
        """Per-shard database views (empty shards are skipped).

        Returned in the order of :attr:`non_empty_shards`; each is a
        zero-copy view over the parent's backing array.
        """
        return [
            self.slice_shard(database, shard) for shard in self.non_empty_shards
        ]

    def split_selector(self, selector_bits: np.ndarray) -> List[np.ndarray]:
        """Per-shard slices of a full-domain selector vector.

        Returned in the order of :attr:`non_empty_shards`, so they pair with
        :meth:`slice_database` output one-to-one.
        """
        selector_bits = np.asarray(selector_bits)
        if selector_bits.shape != (self.num_records,):
            raise ConfigurationError(
                f"selector length {selector_bits.shape} does not match plan "
                f"({self.num_records} records)"
            )
        return [
            selector_bits[shard.start : shard.stop] for shard in self.non_empty_shards
        ]

    def check_shape(self, num_records: int) -> None:
        if num_records != self.num_records:
            raise ConfigurationError(
                f"plan covers {self.num_records} records, database has {num_records}"
            )

    def __repr__(self) -> str:
        ranges = ", ".join(f"[{s.start},{s.stop})" for s in self.shards)
        return (
            f"ShardPlan(num_records={self.num_records}, "
            f"block_records={self.block_records}, shards={ranges})"
        )
