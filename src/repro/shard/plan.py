"""Shard plans: contiguous record-range partitions of a PIR database.

A :class:`ShardPlan` is the distribution policy of the shard layer — *which*
records live on *which* fleet member — kept deliberately separate from the
PIR protocol code (the engine neither knows nor cares how many machines hold
the database).  A plan tiles ``[0, num_records)`` with contiguous
:class:`ShardSpec` ranges; boundaries can be forced onto ``block_records``
multiples so PIM/DPU backends keep their own per-DPU partitioning invariants
(a shard never starts or ends mid-block).

Plans are value objects: slicing a database, splitting a selector vector and
routing a record index are all pure functions of the plan, which is what
makes the sharded execution path testably bit-identical to the unsharded
one.

Plans are also *versioned*: every online reshape — :meth:`ShardPlan.split_shard`
cutting a hot shard in two, :meth:`ShardPlan.merge_shards` folding adjacent
cold shards into one — returns a **new** plan whose ``version`` is one higher,
plus a :class:`TopologyChange` describing how the old shard indices map onto
the new ones.  The transforms are pure (the old plan is untouched), which is
what lets the control plane prepare a whole new topology off to the side and
swap it into the data plane in one reference assignment
(:meth:`repro.shard.backend.ShardedBackend.apply_topology`) while in-flight
queries finish against the old snapshot.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError, DatabaseError
from repro.core.partitioning import aligned_chunk_bounds
from repro.pir.database import Database


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous shard: records ``[start, stop)`` of the database."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError("shard index must be non-negative")
        if not 0 <= self.start <= self.stop:
            raise ConfigurationError(f"invalid shard range [{self.start}, {self.stop})")

    @property
    def num_records(self) -> int:
        """Records held by this shard."""
        return self.stop - self.start

    @property
    def is_empty(self) -> bool:
        """Whether the shard holds no records (shard count > record count)."""
        return self.start == self.stop

    def contains(self, record_index: int) -> bool:
        """Whether ``record_index`` is owned by this shard."""
        return self.start <= record_index < self.stop


@dataclass(frozen=True)
class ShardPlan:
    """A complete tiling of a database into contiguous shards.

    ``shards`` covers ``[0, num_records)`` exactly once, in order; trailing
    shards may be empty when the plan has more shards than records.
    """

    num_records: int
    shards: Tuple[ShardSpec, ...]
    block_records: int = 1
    #: Monotonically increasing topology version.  Freshly built plans start
    #: at 0; every :meth:`split_shard` / :meth:`merge_shards` transform bumps
    #: it by one, so layers holding a plan can tell "same boundaries" from
    #: "same topology epoch" (a backend refuses a :class:`TopologyChange`
    #: built against any version but the one it is running).
    version: int = 0

    def __post_init__(self) -> None:
        if self.num_records <= 0:
            raise ConfigurationError("num_records must be positive")
        if not self.shards:
            raise ConfigurationError("a plan needs at least one shard")
        if self.block_records <= 0:
            raise ConfigurationError("block_records must be positive")
        if self.version < 0:
            raise ConfigurationError("plan version must be non-negative")
        cursor = 0
        for position, shard in enumerate(self.shards):
            if shard.index != position:
                raise ConfigurationError(
                    f"shard at position {position} carries index {shard.index}"
                )
            if shard.start != cursor:
                raise ConfigurationError(
                    f"shard {position} starts at {shard.start}, expected {cursor}"
                )
            cursor = shard.stop
        if cursor != self.num_records:
            raise ConfigurationError(
                f"shards cover [0, {cursor}), database has {self.num_records} records"
            )
        # Cached for shard_for_record's bisect: routing a dirty-record batch
        # must not rebuild this list per record (the plan is immutable).
        object.__setattr__(
            self, "_starts", tuple(shard.start for shard in self.shards)
        )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def uniform(
        cls, num_records: int, num_shards: int, block_records: int = 1
    ) -> "ShardPlan":
        """Evenly split ``num_records`` into ``num_shards`` aligned shards."""
        bounds = aligned_chunk_bounds(num_records, num_shards, block_records)
        return cls.from_bounds(num_records, bounds, block_records=block_records)

    @classmethod
    def from_bounds(
        cls,
        num_records: int,
        bounds: Sequence[Tuple[int, int]],
        block_records: int = 1,
    ) -> "ShardPlan":
        """Build a plan from explicit ``(start, stop)`` ranges."""
        shards = tuple(
            ShardSpec(index=i, start=start, stop=stop)
            for i, (start, stop) in enumerate(bounds)
        )
        return cls(num_records=num_records, shards=shards, block_records=block_records)

    # -- lookups ----------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Total shard count, including empty trailing shards."""
        return len(self.shards)

    @property
    def non_empty_shards(self) -> Tuple[ShardSpec, ...]:
        """The shards that actually hold records."""
        return tuple(shard for shard in self.shards if not shard.is_empty)

    def shard_for_record(self, record_index: int) -> ShardSpec:
        """The shard owning ``record_index``."""
        if not 0 <= record_index < self.num_records:
            raise DatabaseError(
                f"record index {record_index} out of range [0, {self.num_records})"
            )
        position = bisect_right(self._starts, record_index) - 1
        # Empty shards share their start with the owner that follows the same
        # boundary; walk back to the shard that really contains the record.
        while self.shards[position].is_empty:
            position -= 1
        return self.shards[position]

    def route_records(self, record_indices: Sequence[int]) -> dict:
        """Group record indices by owning shard: ``{shard_index: [indices]}``."""
        routed: dict = {}
        for record_index in record_indices:
            shard = self.shard_for_record(record_index)
            routed.setdefault(shard.index, []).append(record_index)
        return routed

    # -- splitting --------------------------------------------------------------

    def slice_shard(self, database: Database, shard: ShardSpec) -> Database:
        """The database view one shard holds (zero-copy).

        The single slicing rule of the plan: ``prepare`` and ``apply_updates``
        must cut the same byte ranges, so both go through here (directly or
        via :meth:`slice_database`) instead of re-deriving the bounds.
        """
        self.check_shape(database.num_records)
        return Database(database.chunk(shard.start, shard.stop))

    def slice_database(self, database: Database) -> List[Database]:
        """Per-shard database views (empty shards are skipped).

        Returned in the order of :attr:`non_empty_shards`; each is a
        zero-copy view over the parent's backing array.
        """
        return [
            self.slice_shard(database, shard) for shard in self.non_empty_shards
        ]

    def split_selector(self, selector_bits: np.ndarray) -> List[np.ndarray]:
        """Per-shard slices of a full-domain selector vector.

        Returned in the order of :attr:`non_empty_shards`, so they pair with
        :meth:`slice_database` output one-to-one.
        """
        selector_bits = np.asarray(selector_bits)
        if selector_bits.shape != (self.num_records,):
            raise ConfigurationError(
                f"selector length {selector_bits.shape} does not match plan "
                f"({self.num_records} records)"
            )
        return [
            selector_bits[shard.start : shard.stop] for shard in self.non_empty_shards
        ]

    def split_selector_many(self, selector_matrix: np.ndarray) -> List[np.ndarray]:
        """Per-shard column blocks of a ``(B, num_records)`` selector matrix.

        The batched counterpart of :meth:`split_selector`: the matrix is
        split **once per batch** into zero-copy column views (one per
        non-empty shard, in :attr:`non_empty_shards` order), not once per
        query.
        """
        selector_matrix = np.asarray(selector_matrix)
        if selector_matrix.ndim != 2 or selector_matrix.shape[1] != self.num_records:
            raise ConfigurationError(
                f"selector matrix {selector_matrix.shape} does not match plan "
                f"({self.num_records} records; expected (batch, records))"
            )
        return [
            selector_matrix[:, shard.start : shard.stop]
            for shard in self.non_empty_shards
        ]

    def check_shape(self, num_records: int) -> None:
        if num_records != self.num_records:
            raise ConfigurationError(
                f"plan covers {self.num_records} records, database has {num_records}"
            )

    # -- online reshaping (pure transforms) --------------------------------------

    def split_shard(self, index: int, at: int) -> "TopologyChange":
        """Split shard ``index`` in two at record ``at``; returns the change.

        ``at`` must be a ``block_records`` multiple strictly inside the
        shard's range — a cut at the shard's own start or stop would be a
        no-op rename and is rejected (the rebalancer's policy must not be
        able to spin on free "splits" that change nothing).  The transform
        is pure: this plan is untouched, the returned
        :class:`TopologyChange` carries the new plan (``version + 1``) and
        the old↔new shard-index mapping.
        """
        if not 0 <= index < self.num_shards:
            raise ConfigurationError(
                f"shard index {index} out of range [0, {self.num_shards})"
            )
        shard = self.shards[index]
        if not shard.start < at < shard.stop:
            raise ConfigurationError(
                f"split point {at} is not strictly inside shard {index} "
                f"[{shard.start}, {shard.stop}) — a boundary split is a no-op"
            )
        if at % self.block_records != 0:
            raise ConfigurationError(
                f"split point {at} is not a block boundary "
                f"(block_records={self.block_records})"
            )
        bounds = [(s.start, s.stop) for s in self.shards[:index]]
        bounds += [(shard.start, at), (at, shard.stop)]
        bounds += [(s.start, s.stop) for s in self.shards[index + 1 :]]
        return self._reshaped(bounds)

    def merge_shards(self, i: int, j: int) -> "TopologyChange":
        """Merge *adjacent* shards ``i`` and ``j`` (``j == i + 1``) into one.

        Works for empty trailing shards too (a plan with more shards than
        records can fold its ``(stop, stop)`` tails away).  Pure, like
        :meth:`split_shard`: returns a :class:`TopologyChange` whose new
        plan has one fewer shard and ``version + 1``.
        """
        if not (0 <= i < self.num_shards and 0 <= j < self.num_shards):
            raise ConfigurationError(
                f"shard indices ({i}, {j}) out of range [0, {self.num_shards})"
            )
        if j != i + 1:
            raise ConfigurationError(
                f"only adjacent shards merge; got ({i}, {j}) — a merge of "
                f"non-neighbours would break the plan's contiguous tiling"
            )
        bounds = [(s.start, s.stop) for s in self.shards[:i]]
        bounds.append((self.shards[i].start, self.shards[j].stop))
        bounds += [(s.start, s.stop) for s in self.shards[j + 1 :]]
        return self._reshaped(bounds)

    def _reshaped(self, bounds: Sequence[Tuple[int, int]]) -> "TopologyChange":
        """The one place a transform becomes a change: re-index the bounds
        into a ``version + 1`` plan and pair it with this one."""
        new_plan = ShardPlan(
            num_records=self.num_records,
            shards=tuple(
                ShardSpec(index=i, start=start, stop=stop)
                for i, (start, stop) in enumerate(bounds)
            ),
            block_records=self.block_records,
            version=self.version + 1,
        )
        return TopologyChange(old_plan=self, new_plan=new_plan)

    def same_boundaries(self, other: "ShardPlan") -> bool:
        """Whether two plans tile identically (versions may differ)."""
        return self.num_records == other.num_records and tuple(
            (s.start, s.stop) for s in self.shards
        ) == tuple((s.start, s.stop) for s in other.shards)

    def __repr__(self) -> str:
        ranges = ", ".join(f"[{s.start},{s.stop})" for s in self.shards)
        return (
            f"ShardPlan(num_records={self.num_records}, "
            f"block_records={self.block_records}, version={self.version}, "
            f"shards={ranges})"
        )


@dataclass(frozen=True)
class TopologyChange:
    """An old→new plan transition plus the shard-index mapping between them.

    Produced by :meth:`ShardPlan.split_shard` / :meth:`ShardPlan.merge_shards`
    and composable across several transforms (:meth:`compose`), this is the
    object every layer rides a reshape through: the backend swaps children
    along it (:meth:`repro.shard.backend.ShardedBackend.apply_topology`
    reuses the children of :meth:`unchanged_pairs` and builds fresh ones for
    :meth:`changed_new_indices`), and the heat telemetry remaps its decaying
    windows along it (:meth:`repro.control.telemetry.HeatTracker.remap`).

    The mapping is derived purely from the two tilings (both cover
    ``[0, num_records)`` contiguously), so a composed change over several
    split/merge steps needs no bookkeeping: any old and new shard either
    overlap in one contiguous record interval or not at all.
    """

    old_plan: ShardPlan
    new_plan: ShardPlan

    def __post_init__(self) -> None:
        if self.new_plan.num_records != self.old_plan.num_records:
            raise ConfigurationError(
                f"topology change must keep the record count: "
                f"{self.old_plan.num_records} != {self.new_plan.num_records}"
            )
        if self.new_plan.block_records != self.old_plan.block_records:
            raise ConfigurationError(
                "topology change must keep the block alignment: "
                f"{self.old_plan.block_records} != {self.new_plan.block_records}"
            )
        if self.new_plan.version <= self.old_plan.version:
            raise ConfigurationError(
                f"topology versions increase: new plan carries "
                f"{self.new_plan.version}, old plan {self.old_plan.version}"
            )

    def require_built_on(self, plan: ShardPlan, follower: str) -> None:
        """Reject application to any plan but the one this change transforms.

        The one staleness rule every layer riding a change shares (the
        backend's ``apply_topology``, the tracker's ``remap``): changes
        must chain linearly from the live plan — silently applying a stale
        change would drop a concurrent reshape.  ``follower`` names the
        caller for the error message.
        """
        if self.old_plan.version != plan.version or not self.old_plan.same_boundaries(
            plan
        ):
            raise ConfigurationError(
                f"topology change was built against plan version "
                f"{self.old_plan.version}, {follower} runs version "
                f"{plan.version} (changes must chain linearly from the "
                f"live plan)"
            )

    def compose(self, later: "TopologyChange") -> "TopologyChange":
        """Fuse this change with one applied on top of its new plan.

        A rebalance pass performing several splits and merges applies them
        to successive plans; composing folds the whole sequence into one
        old→final change the data plane can swap in a single assignment.
        """
        if later.old_plan is not self.new_plan:
            raise ConfigurationError(
                "compose requires a change built on this change's new plan "
                f"(got old version {later.old_plan.version}, "
                f"expected {self.new_plan.version})"
            )
        return TopologyChange(old_plan=self.old_plan, new_plan=later.new_plan)

    # -- the old↔new shard-index mapping -----------------------------------------

    def overlap_records(self, old_index: int, new_index: int) -> Tuple[int, int]:
        """The record interval shared by an old and a new shard (may be empty)."""
        old = self.old_plan.shards[old_index]
        new = self.new_plan.shards[new_index]
        return max(old.start, new.start), min(old.stop, new.stop)

    @property
    def old_for_new(self) -> Tuple[Tuple[int, ...], ...]:
        """Per new shard: the old shard indices its records came from."""
        return tuple(
            tuple(
                old.index
                for old in self.old_plan.shards
                if max(old.start, new.start) < min(old.stop, new.stop)
            )
            for new in self.new_plan.shards
        )

    @property
    def new_for_old(self) -> Tuple[Tuple[int, ...], ...]:
        """Per old shard: the new shard indices its records landed on."""
        return tuple(
            tuple(
                new.index
                for new in self.new_plan.shards
                if max(old.start, new.start) < min(old.stop, new.stop)
            )
            for old in self.old_plan.shards
        )

    def unchanged_pairs(self) -> Tuple[Tuple[int, int], ...]:
        """``(old_index, new_index)`` for every non-empty shard whose record
        range survived the reshape byte-for-byte.

        These are the shards whose prepared children (and accumulated heat)
        carry over untouched; only indices may have shifted.
        """
        new_by_range = {
            (new.start, new.stop): new.index
            for new in self.new_plan.shards
            if not new.is_empty
        }
        pairs = []
        for old in self.old_plan.shards:
            if old.is_empty:
                continue
            new_index = new_by_range.get((old.start, old.stop))
            if new_index is not None:
                pairs.append((old.index, new_index))
        return tuple(pairs)

    def changed_new_indices(self) -> Tuple[int, ...]:
        """New shard indices whose range exists in no old shard (need fresh
        children — the split halves and merged ranges)."""
        unchanged = {new_index for _, new_index in self.unchanged_pairs()}
        return tuple(
            new.index
            for new in self.new_plan.shards
            if not new.is_empty and new.index not in unchanged
        )

    def __repr__(self) -> str:
        return (
            f"TopologyChange(v{self.old_plan.version}->v{self.new_plan.version}, "
            f"{self.old_plan.num_shards}->{self.new_plan.num_shards} shards, "
            f"changed={list(self.changed_new_indices())})"
        )
