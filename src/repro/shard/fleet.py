"""Fleet routing: capability-aware placement of shards onto backend kinds.

The registry's capability metadata says *what* each backend kind is
(``preloaded`` or streamed, how many lanes); the timing models say *what it
costs* to hold and to scan a shard there.  This module combines the two into
a placement decision: for every shard of a :class:`~repro.shard.plan.ShardPlan`,
given an expected query rate ("heat"), pick the cheapest capable backend
kind over an operating window —

* a **preloaded** kind (PIM MRAM) pays the shard transfer once per window
  and then scans from resident memory, so it wins for hot shards;
* a **streamed** kind pays the shard transfer on *every* query but keeps no
  standing copy, so it wins for cold shards (heat below roughly one query
  per window — the transfer amortisation break-even).

A :class:`FleetRouter` applies the placement: each of the two privacy
replicas becomes a *fleet* — a :class:`ReplicaGroup` of one or more
identical :class:`~repro.shard.backend.ShardedServer` members whose
per-shard children follow the chosen kinds — behind the ordinary batching
:class:`~repro.pir.frontend.PIRFrontend` surface, with the per-shard cost
estimates kept on ``placements`` for bench reporting.

The group layer is what makes the fleet **replica-elastic** without
touching the privacy protocol: the two-server XOR scheme pins the number
of *trust domains* (``check_replicas`` insists on exactly
``client.num_servers`` replica slots with positional server ids), so
capacity scaling happens *within* each domain.  Every member of a group
holds the same bytes and answers any query identically, which is why
round-robin dispatch, :meth:`FleetRouter.add_replica` and
:meth:`FleetRouter.drain_replica` are all invisible in the retrieved
records — elasticity changes who does the work, never the answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.core.config import IMPIRConfig
from repro.pim.timing import PIMTimingModel
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import BatchingPolicy, PIRFrontend
from repro.shard.backend import (
    PIRBackend,
    ShardedServer,
    bare_backend_factory,
    default_child_config,
)
from repro.shard.plan import ShardPlan, ShardSpec, TopologyChange
from repro.shard.tuner import ScanTuner


@dataclass(frozen=True)
class CandidateKind:
    """One backend kind a shard could be placed on, with its cost formulas.

    ``per_query_seconds``/``preload_seconds`` take ``(num_records,
    record_size)`` of a shard and return simulated seconds; ``preloaded``
    mirrors the kind's :class:`~repro.core.engine.BackendCapabilities` flag.
    """

    kind: str
    preloaded: bool
    per_query_seconds: Callable[[int, int], float]
    preload_seconds: Callable[[int, int], float]


@dataclass(frozen=True)
class ShardPlacement:
    """One shard's placement decision plus the estimates that justified it."""

    shard: ShardSpec
    kind: str
    preloaded: bool
    #: Expected queries touching this shard per operating window.
    heat: float
    per_query_seconds: float
    preload_seconds: float

    @property
    def window_cost_seconds(self) -> float:
        """Estimated shard cost over one window: preload + heat x per-query."""
        return self.preload_seconds + self.heat * self.per_query_seconds


def default_candidates(config: Optional[IMPIRConfig] = None) -> List[CandidateKind]:
    """The two PIM deployment kinds the paper's capacity discussion contrasts.

    Costs come from the same :class:`~repro.pim.timing.PIMTimingModel` the
    functional simulators charge, evaluated on shard-shaped byte counts:
    the dpXOR chain is common to both; the streamed kind adds the shard
    transfer to every query, the preloaded kind pays it once per window.
    """
    config = config if config is not None else IMPIRConfig()
    timing = PIMTimingModel(config.pim)
    dpus = config.pim.num_dpus

    def chain_seconds(num_records: int, record_size: int) -> float:
        records_per_dpu = -(-num_records // dpus)
        selector_bytes = dpus * ((records_per_dpu + 7) // 8)
        kernel = timing.dpu_dpxor_cost(records_per_dpu * record_size, record_size)
        return (
            timing.host_to_dpu_seconds(selector_bytes)
            + timing.launch_seconds(dpus)
            + kernel.total_seconds
            + timing.dpu_to_host_seconds(dpus * record_size)
            + timing.host_aggregate_xor_seconds(dpus, record_size)
        )

    def shard_copy_seconds(num_records: int, record_size: int) -> float:
        return timing.host_to_dpu_seconds(num_records * record_size)

    return [
        CandidateKind(
            kind="im-pir",
            preloaded=True,
            per_query_seconds=chain_seconds,
            preload_seconds=shard_copy_seconds,
        ),
        CandidateKind(
            kind="im-pir-streamed",
            preloaded=False,
            per_query_seconds=lambda n, r: chain_seconds(n, r) + shard_copy_seconds(n, r),
            preload_seconds=lambda n, r: 0.0,
        ),
    ]


def heats_from_trace(
    plan: ShardPlan,
    indices: Sequence[int],
    arrival_seconds: Optional[Sequence[float]] = None,
    window_seconds: float = 1.0,
    decay: float = 0.5,
) -> List[float]:
    """Expected per-window queries per shard, measured from a trace of indices.

    Returns one heat per shard of the plan (empty shards get 0.0); the
    natural input for :func:`plan_placements` when a workload sample is
    available.

    The trace is routed through the control plane's
    :class:`~repro.control.telemetry.HeatTracker`, so offline planning and
    online rebalancing agree on units by construction.  Without
    ``arrival_seconds`` the whole trace counts as **one** operating window
    (raw per-shard counts — only comparable to a live tracker whose window
    spans the same traffic).  With per-index arrival stamps the trace is
    replayed through windows of ``window_seconds`` with ``decay``, yielding
    exactly the estimate a live tracker configured the same way would
    report — pass the tracker's own parameters when seeding a fleet that a
    rebalancer will later re-place, or the seed placement and the first
    online pass will price heat on different scales.
    """
    # Imported lazily: the data plane sits below the control plane, and this
    # one offline helper is the only place it borrows the control-plane
    # normalization (a module-level import would be circular).
    from repro.control.telemetry import HeatTracker

    tracker = HeatTracker(plan, window_seconds=window_seconds, decay=decay)
    if arrival_seconds is None:
        tracker.observe_batch(indices, now=0.0)
    else:
        if len(arrival_seconds) != len(indices):
            raise ConfigurationError(
                f"got {len(arrival_seconds)} arrival stamps for "
                f"{len(indices)} trace indices"
            )
        for index, now in zip(indices, arrival_seconds):
            tracker.observe_batch([index], now)
    return tracker.heats()


def plan_placements(
    plan: ShardPlan,
    record_size: int,
    heats: Sequence[float],
    candidates: Optional[Sequence[CandidateKind]] = None,
) -> List[ShardPlacement]:
    """Place every non-empty shard on its cheapest capable backend kind.

    ``heats[i]`` is the expected number of queries touching shard ``i`` per
    operating window.  For each shard the candidates' window costs
    (``preload + heat * per_query``) are compared; ties go to the first
    candidate listed.
    """
    if len(heats) != plan.num_shards:
        raise ConfigurationError(
            f"got {len(heats)} heats for {plan.num_shards} shards"
        )
    if any(heat < 0 for heat in heats):
        raise ConfigurationError("shard heats must be non-negative")
    if candidates is None:
        candidates = default_candidates()
    if not candidates:
        raise ConfigurationError("placement needs at least one candidate kind")

    placements: List[ShardPlacement] = []
    for shard in plan.non_empty_shards:
        heat = float(heats[shard.index])
        options = [
            ShardPlacement(
                shard=shard,
                kind=candidate.kind,
                preloaded=candidate.preloaded,
                heat=heat,
                per_query_seconds=candidate.per_query_seconds(
                    shard.num_records, record_size
                ),
                preload_seconds=candidate.preload_seconds(
                    shard.num_records, record_size
                ),
            )
            for candidate in candidates
        ]
        placements.append(min(options, key=lambda option: option.window_cost_seconds))
    return placements


def placement_for_kind(
    shard: ShardSpec,
    kind: str,
    record_size: int,
    heat: float,
    candidates: Sequence[CandidateKind],
) -> ShardPlacement:
    """A :class:`ShardPlacement` pinned to one *specific* kind.

    What a damped kind migration installs: the cheapest-kind choice was
    vetoed, so the reporting surface must keep pricing the shard at the
    kind it actually still runs.
    """
    for candidate in candidates:
        if candidate.kind == kind:
            return ShardPlacement(
                shard=shard,
                kind=kind,
                preloaded=candidate.preloaded,
                heat=heat,
                per_query_seconds=candidate.per_query_seconds(
                    shard.num_records, record_size
                ),
                preload_seconds=candidate.preload_seconds(
                    shard.num_records, record_size
                ),
            )
    raise ConfigurationError(f"kind {kind!r} is not among the placement candidates")


def render_placements(placements: Sequence[ShardPlacement]) -> List[str]:
    """Plain-text placement table (one line per shard) for bench reporting."""
    lines = [
        f"{'shard':>6} {'records':>10} {'heat':>8} {'kind':>16} "
        f"{'per-query':>12} {'window cost':>12}"
    ]
    for placement in placements:
        shard_range = f"[{placement.shard.start},{placement.shard.stop})"
        lines.append(
            f"{placement.shard.index:>6} {shard_range:>10} "
            f"{placement.heat:>8.1f} {placement.kind:>16} "
            f"{placement.per_query_seconds * 1e3:>10.3f}ms "
            f"{placement.window_cost_seconds * 1e3:>10.3f}ms"
        )
    return lines


class ReplicaGroup:
    """The live members of one trust domain, behind a single replica slot.

    The frontend sees exactly one "replica" per privacy server (the pairing
    invariant keys answers by ``server_id``); the group fans that slot out
    over ``members`` — identical :class:`~repro.shard.backend.ShardedServer`
    instances holding the same bytes on the same plan.  Queries round-robin
    across members (any member returns the identical answer, so dispatch
    order can never show up in a retrieved record); updates land on *every*
    member, keeping them interchangeable.

    The group also owns the **staging journal** that makes online replica
    adds safe against concurrent writes: while any stage is open
    (:meth:`open_stage`), every update batch is journaled with a sequence
    number *before* it is applied to the members, so a new member built
    from a database snapshot can replay exactly the batches it missed
    (:meth:`updates_since`).  Replaying a batch the snapshot already
    contains is harmless — updates are idempotent per ``(index, bytes)`` —
    which is what lets the journal bracket the snapshot instead of having
    to coordinate with it.
    """

    def __init__(self, server_id: int, members: Sequence[ShardedServer]) -> None:
        members = list(members)
        if not members:
            raise ConfigurationError(
                f"replica group {server_id} needs at least one member"
            )
        for member in members:
            if member.server_id != server_id:
                raise ConfigurationError(
                    f"group member carries server_id {member.server_id}, "
                    f"expected {server_id} (members must stay inside one "
                    "trust domain)"
                )
        self.server_id = server_id
        self._members = members
        self._next = 0
        self._journal: List[Tuple[int, List]] = []
        self._seq = 0
        self._open_stages = 0

    @property
    def members(self) -> Tuple[ShardedServer, ...]:
        return tuple(self._members)

    @property
    def size(self) -> int:
        return len(self._members)

    @property
    def database(self) -> Database:
        """The bytes every member currently serves (members are identical)."""
        return self._members[0].database

    @property
    def plan(self) -> ShardPlan:
        return self._members[0].plan

    def answer_batch(self, queries):
        """Dispatch one batch to the next member, round-robin.

        A racing increment under concurrent flushes at worst repeats a
        member — still bit-identical, only the load spread is affected.
        """
        member = self._members[self._next % len(self._members)]
        self._next += 1
        return member.answer_batch(queries)

    def apply_updates(self, updates) -> None:
        """Land updates on every member (journal first while staging)."""
        updates = list(updates)
        if self._open_stages:
            self._seq += 1
            self._journal.append((self._seq, updates))
        for member in self._members:
            member.apply_updates(updates)

    # -- membership ------------------------------------------------------------------

    def add_member(self, member: ShardedServer) -> None:
        """Append a caught-up member (the commit point of a replica add).

        The new member inherits the group's instrumentation: whatever event
        log / tracer the hub wired onto member 0 at attach time follows
        membership, so elastically added servers are as observable as
        construction-time ones.
        """
        if member.server_id != self.server_id:
            raise ConfigurationError(
                f"member carries server_id {member.server_id}, "
                f"expected {self.server_id}"
            )
        reference = self._members[0]
        member.engine.events = reference.engine.events
        member.backend.instrument(
            events=reference.backend.events, tracer=reference.backend.tracer
        )
        self._members.append(member)

    def remove_member(self) -> ShardedServer:
        """Detach the most recently added member (LIFO keeps member 0, the
        construction-time server other components may hold references to)."""
        if len(self._members) <= 1:
            raise ConfigurationError(
                f"replica group {self.server_id} cannot drop its last member"
            )
        return self._members.pop()

    # -- the staging journal ---------------------------------------------------------

    def open_stage(self) -> int:
        """Start journaling updates; returns the sequence watermark to replay
        from at commit.  Stages nest (concurrent adds each close their own)."""
        self._open_stages += 1
        return self._seq

    def close_stage(self) -> None:
        """End one stage; the journal empties when the last stage closes."""
        if self._open_stages <= 0:
            raise ConfigurationError(
                f"replica group {self.server_id} has no open stage"
            )
        self._open_stages -= 1
        if self._open_stages == 0:
            self._journal.clear()

    def updates_since(self, seq: int) -> List[List]:
        """Every journaled update batch after the ``seq`` watermark, in order."""
        return [updates for entry_seq, updates in self._journal if entry_seq > seq]


@dataclass
class StagedReplicas:
    """One prepared-but-not-installed member per trust domain.

    Produced by :meth:`FleetRouter.stage_replicas` (expensive, runs outside
    any quiesce gate) and consumed by :meth:`FleetRouter.commit_replicas`
    (cheap, runs inside it) or :meth:`FleetRouter.abandon_replicas`.
    ``plan`` pins the topology the members were built against; ``seqs``
    are the per-group journal watermarks to replay from.
    """

    router: "FleetRouter"
    plan: ShardPlan
    members: List[ShardedServer]
    seqs: List[int]
    committed: bool = False
    closed: bool = field(default=False, repr=False)


class FleetRouter(PIRFrontend):
    """A batching frontend whose replicas are capability-placed shard fleets.

    Builds one :class:`~repro.shard.backend.ShardedServer` per privacy
    replica; each server's shard children follow the placement computed from
    ``heats`` (hot shards on preloaded PIM, cold shards on streamed IM-PIR,
    by default).  Everything else — batching policy, answer pairing,
    scheduling metrics — is the ordinary frontend surface.
    """

    def __init__(
        self,
        client: PIRClient,
        database: Database,
        plan: ShardPlan,
        heats: Sequence[float],
        candidates: Optional[Sequence[CandidateKind]] = None,
        child_config: Optional[IMPIRConfig] = None,
        policy: Optional[BatchingPolicy] = None,
        dedup: bool = False,
        executor: str = "serial",
        tuner: Optional[ScanTuner] = None,
        observers: Sequence = (),
        cache=None,
        initial_replicas: int = 1,
    ) -> None:
        plan.check_shape(database.num_records)
        if initial_replicas < 1:
            raise ConfigurationError("initial_replicas must be at least 1")
        self.plan = plan
        #: Optional :class:`~repro.obs.events.EventLog` (hub-wired);
        #: ``replica.added`` / ``replica.drained`` events emit through it.
        self.events = None
        #: Remembered for the control plane: an online rebalancer must build
        #: migrated children on the same machine model the fleet started
        #: with, and cost candidates against it.
        self.child_config = child_config
        if candidates is None:
            # Cost the placement on the machine model the children will
            # actually run with, not the paper-scale default.
            candidates = default_candidates(
                child_config if child_config is not None else default_child_config()
            )
        self.candidates = list(candidates)
        # Placements and the kind map move together (install_placements):
        # the factory below reads the map live — it is also the fleets'
        # default child builder after online reshapes and kind migrations
        # renumber or re-place the shards, so it must follow the placements
        # in effect, never a construction-time snapshot.
        self.install_placements(
            plan_placements(plan, database.record_size, heats, candidates=candidates)
        )

        def child_factory(shard: ShardSpec) -> PIRBackend:
            return bare_backend_factory(
                self._kind_by_shard[shard.index], config=child_config
            )(shard)

        # Remembered for elasticity: a staged replica member must be built
        # exactly like the construction-time ones (same live kind map, same
        # executor and tuner), or the group's members would stop being
        # interchangeable.  One shared tuner across the fleet: every member
        # serves from this machine, so one measured crossover serves all.
        self._child_factory = child_factory
        self._executor = executor
        self._tuner = tuner
        replicas = [
            ReplicaGroup(
                server_id,
                [
                    ShardedServer(
                        database,
                        server_id=server_id,
                        plan=plan,
                        child_factory=child_factory,
                        executor=executor,
                        tuner=tuner,
                    )
                    for _ in range(initial_replicas)
                ],
            )
            for server_id in range(client.num_servers)
        ]
        super().__init__(
            client, replicas, policy=policy, dedup=dedup, observers=observers, cache=cache
        )

    @property
    def fleets(self) -> List[ShardedServer]:
        """Every live sharded server, across all trust domains and members.

        The reshape/migration surface: ``apply_topology`` stages and commits
        over this list and the rebalancer's kind migrations swap children on
        it, so elastic members automatically ride every topology change the
        moment they are installed.
        """
        return [member for group in self.replicas for member in group.members]

    @property
    def replica_count(self) -> int:
        """Members per trust domain (groups scale in lockstep)."""
        return self.replicas[0].size

    # -- replica elasticity ----------------------------------------------------------

    def stage_replicas(self) -> StagedReplicas:
        """Prepare one fresh member per trust domain, off to the side.

        The expensive half of a replica add — per-shard children built and
        preloaded from the group's current database snapshot — runs with
        **no** quiesce held: the groups journal any update batches that land
        meanwhile (from :meth:`ReplicaGroup.open_stage` on), and
        :meth:`commit_replicas` replays exactly those.  Nothing observable
        changes until the commit; :meth:`abandon_replicas` discards cleanly.
        """
        plan = self.plan
        members: List[ShardedServer] = []
        seqs: List[int] = []
        opened: List[ReplicaGroup] = []
        try:
            for group in self.replicas:
                # Open the journal *before* reading the snapshot: an update
                # racing in between lands in both, and replay is idempotent.
                seqs.append(group.open_stage())
                opened.append(group)
                members.append(
                    ShardedServer(
                        group.database,
                        server_id=group.server_id,
                        plan=plan,
                        child_factory=self._child_factory,
                        executor=self._executor,
                        tuner=self._tuner,
                    )
                )
        except Exception:
            for group in opened:
                group.close_stage()
            raise
        return StagedReplicas(router=self, plan=plan, members=members, seqs=seqs)

    def commit_replicas(self, staged: StagedReplicas) -> List[ShardedServer]:
        """Install staged members into their groups (call under the gate).

        Replays each group's journaled updates onto its new member first
        (the only fallible part — the data plane is untouched if it dies),
        then appends every member and closes the stages: pure list appends
        that cannot fail halfway, so the groups always scale in lockstep.
        A topology change between stage and commit invalidates the staging
        (the members hold the old plan) — it is abandoned and the caller
        must re-stage.  Kind *migrations* (which keep the plan) are
        tolerated: a member on a stale kind serves identical bytes, only
        its cost bookkeeping lags until the next migration pass.
        """
        if staged.router is not self:
            raise ConfigurationError("staged replicas belong to another router")
        if staged.committed or staged.closed:
            raise ConfigurationError("staged replicas already committed or abandoned")
        if staged.plan is not self.plan:
            self.abandon_replicas(staged)
            raise ConfigurationError(
                "topology moved between stage and commit; re-stage the replicas"
            )
        for group, member, seq in zip(self.replicas, staged.members, staged.seqs):
            for updates in group.updates_since(seq):
                member.apply_updates(updates)
        for group, member in zip(self.replicas, staged.members):
            group.add_member(member)
            group.close_stage()
        staged.committed = True
        staged.closed = True
        if self.events is not None:
            self.events.emit(
                "replica.added",
                replicas=self.replica_count,
                plan_version=self.plan.version,
            )
        return staged.members

    def abandon_replicas(self, staged: StagedReplicas) -> None:
        """Discard a staging without installing it (idempotent)."""
        if staged.closed:
            return
        staged.closed = True
        for group in self.replicas:
            group.close_stage()
        for member in staged.members:
            close = getattr(member.backend, "close", None)
            if close is not None:
                close()

    def add_replica(self) -> List[ShardedServer]:
        """Stage and commit one new member per trust domain, inline.

        The synchronous convenience path (the async control driver stages
        outside the gate itself and only commits under it).  Returns the
        installed members.
        """
        staged = self.stage_replicas()
        try:
            return self.reconfigure(lambda: self.commit_replicas(staged))
        except Exception:
            self.abandon_replicas(staged)
            raise

    def drain_replica(self) -> List[ShardedServer]:
        """Retire the most recent member of every group, under the gate.

        The reconfigure gate is what "waits out in-flight flushes": by the
        time the mutator runs no flush is in flight (structurally on the
        sync frontend, via the writer-preferring quiesce on the async one),
        so the drained members are idle and their scan pools can be shut
        down immediately.  Returns the drained members.
        """
        if self.replica_count <= 1:
            raise ConfigurationError(
                "cannot drain the last replica of each trust domain"
            )

        def mutate() -> List[ShardedServer]:
            drained = [group.remove_member() for group in self.replicas]
            for member in drained:
                close = getattr(member.backend, "close", None)
                if close is not None:
                    close()
            if self.events is not None:
                self.events.emit(
                    "replica.drained",
                    replicas=self.replica_count,
                    plan_version=self.plan.version,
                )
            return drained

        return self.reconfigure(mutate)

    # Bulk updates ride the inherited PIRFrontend.apply_updates: each fleet
    # routes dirty records to their owning shards only, and an attached
    # hot-record cache drops the dirty indices first.

    def apply_topology(
        self,
        change: TopologyChange,
        placements: Sequence[ShardPlacement],
    ) -> List[Optional["PhaseTimer"]]:
        """Install one agreed topology across every replica fleet.

        The router-level reshape point: ``placements`` (computed by
        :func:`plan_placements` over the **new** plan, normally by the
        control plane's rebalancer) chooses the backend kind each changed
        shard's fresh children are built with, and every fleet rides the
        same :class:`~repro.shard.plan.TopologyChange` — inside the
        frontend's :meth:`reconfigure` gate, so no flush ever spans two
        plan versions (structurally true on this simulated-clock frontend;
        the asyncio frontend enforces the same guarantee with its
        writer-preferring quiesce).

        The apply is two-phase: every fleet *stages* the change first
        (fresh children prepared off to the side — the only part that can
        fail, and it mutates nothing), and only once all stagings succeed
        does every fleet *commit* (pure reference assignments that cannot
        fail).  A factory error or a child refusing its slice therefore
        leaves router, fleets and kind map all exactly as they were — a
        multi-replica reshape can never apply partially, which is what
        makes the rebalancer's tracker rollback a genuine recovery.
        Returns each fleet's transfer report, in replica order.
        """
        change.new_plan.check_shape(self.plan.num_records)
        if len(placements) != len(change.new_plan.non_empty_shards):
            raise ConfigurationError(
                f"got {len(placements)} placements for "
                f"{len(change.new_plan.non_empty_shards)} non-empty shards"
            )
        kind_by_new_shard = {
            placement.shard.index: placement.kind for placement in placements
        }

        def child_factory(shard: ShardSpec) -> PIRBackend:
            return bare_backend_factory(
                kind_by_new_shard[shard.index], config=self.child_config
            )(shard)

        def mutate() -> List[Optional["PhaseTimer"]]:
            staged = [
                fleet.backend.stage_topology(change, child_factory)
                for fleet in self.fleets
            ]
            reports = [
                fleet.backend.commit_topology(staging)
                for fleet, staging in zip(self.fleets, staged)
            ]
            self.plan = change.new_plan
            self.install_placements(placements)
            return reports

        return self.reconfigure(mutate)

    def install_placements(self, placements: Sequence[ShardPlacement]) -> None:
        """Record the placements in effect — and the kind map the default
        child factory reads — as one unit.

        Every path that changes what kinds the fleets actually run (a
        topology apply, the rebalancer's kind migrations) must land here,
        or a later re-prepare / stage would rebuild children at stale
        kinds while the reporting surface claims the new ones.
        """
        self.placements = list(placements)
        self._kind_by_shard = {
            placement.shard.index: placement.kind for placement in placements
        }

    def placement_kinds(self) -> List[str]:
        """Chosen backend kind per non-empty shard, in shard order."""
        return [placement.kind for placement in self.placements]

    def describe_placements(self) -> str:
        """Multi-line placement report for logs and bench output."""
        return "\n".join(render_placements(self.placements))
