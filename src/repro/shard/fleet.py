"""Fleet routing: capability-aware placement of shards onto backend kinds.

The registry's capability metadata says *what* each backend kind is
(``preloaded`` or streamed, how many lanes); the timing models say *what it
costs* to hold and to scan a shard there.  This module combines the two into
a placement decision: for every shard of a :class:`~repro.shard.plan.ShardPlan`,
given an expected query rate ("heat"), pick the cheapest capable backend
kind over an operating window —

* a **preloaded** kind (PIM MRAM) pays the shard transfer once per window
  and then scans from resident memory, so it wins for hot shards;
* a **streamed** kind pays the shard transfer on *every* query but keeps no
  standing copy, so it wins for cold shards (heat below roughly one query
  per window — the transfer amortisation break-even).

A :class:`FleetRouter` applies the placement: each of the two privacy
replicas becomes a *fleet* — a :class:`~repro.shard.backend.ShardedServer`
whose per-shard children follow the chosen kinds — behind the ordinary
batching :class:`~repro.pir.frontend.PIRFrontend` surface, with the
per-shard cost estimates kept on ``placements`` for bench reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.core.config import IMPIRConfig
from repro.pim.timing import PIMTimingModel
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import BatchingPolicy, PIRFrontend
from repro.shard.backend import (
    PIRBackend,
    ShardedServer,
    bare_backend_factory,
    default_child_config,
)
from repro.shard.plan import ShardPlan, ShardSpec, TopologyChange


@dataclass(frozen=True)
class CandidateKind:
    """One backend kind a shard could be placed on, with its cost formulas.

    ``per_query_seconds``/``preload_seconds`` take ``(num_records,
    record_size)`` of a shard and return simulated seconds; ``preloaded``
    mirrors the kind's :class:`~repro.core.engine.BackendCapabilities` flag.
    """

    kind: str
    preloaded: bool
    per_query_seconds: Callable[[int, int], float]
    preload_seconds: Callable[[int, int], float]


@dataclass(frozen=True)
class ShardPlacement:
    """One shard's placement decision plus the estimates that justified it."""

    shard: ShardSpec
    kind: str
    preloaded: bool
    #: Expected queries touching this shard per operating window.
    heat: float
    per_query_seconds: float
    preload_seconds: float

    @property
    def window_cost_seconds(self) -> float:
        """Estimated shard cost over one window: preload + heat x per-query."""
        return self.preload_seconds + self.heat * self.per_query_seconds


def default_candidates(config: Optional[IMPIRConfig] = None) -> List[CandidateKind]:
    """The two PIM deployment kinds the paper's capacity discussion contrasts.

    Costs come from the same :class:`~repro.pim.timing.PIMTimingModel` the
    functional simulators charge, evaluated on shard-shaped byte counts:
    the dpXOR chain is common to both; the streamed kind adds the shard
    transfer to every query, the preloaded kind pays it once per window.
    """
    config = config if config is not None else IMPIRConfig()
    timing = PIMTimingModel(config.pim)
    dpus = config.pim.num_dpus

    def chain_seconds(num_records: int, record_size: int) -> float:
        records_per_dpu = -(-num_records // dpus)
        selector_bytes = dpus * ((records_per_dpu + 7) // 8)
        kernel = timing.dpu_dpxor_cost(records_per_dpu * record_size, record_size)
        return (
            timing.host_to_dpu_seconds(selector_bytes)
            + timing.launch_seconds(dpus)
            + kernel.total_seconds
            + timing.dpu_to_host_seconds(dpus * record_size)
            + timing.host_aggregate_xor_seconds(dpus, record_size)
        )

    def shard_copy_seconds(num_records: int, record_size: int) -> float:
        return timing.host_to_dpu_seconds(num_records * record_size)

    return [
        CandidateKind(
            kind="im-pir",
            preloaded=True,
            per_query_seconds=chain_seconds,
            preload_seconds=shard_copy_seconds,
        ),
        CandidateKind(
            kind="im-pir-streamed",
            preloaded=False,
            per_query_seconds=lambda n, r: chain_seconds(n, r) + shard_copy_seconds(n, r),
            preload_seconds=lambda n, r: 0.0,
        ),
    ]


def heats_from_trace(
    plan: ShardPlan,
    indices: Sequence[int],
    arrival_seconds: Optional[Sequence[float]] = None,
    window_seconds: float = 1.0,
    decay: float = 0.5,
) -> List[float]:
    """Expected per-window queries per shard, measured from a trace of indices.

    Returns one heat per shard of the plan (empty shards get 0.0); the
    natural input for :func:`plan_placements` when a workload sample is
    available.

    The trace is routed through the control plane's
    :class:`~repro.control.telemetry.HeatTracker`, so offline planning and
    online rebalancing agree on units by construction.  Without
    ``arrival_seconds`` the whole trace counts as **one** operating window
    (raw per-shard counts — only comparable to a live tracker whose window
    spans the same traffic).  With per-index arrival stamps the trace is
    replayed through windows of ``window_seconds`` with ``decay``, yielding
    exactly the estimate a live tracker configured the same way would
    report — pass the tracker's own parameters when seeding a fleet that a
    rebalancer will later re-place, or the seed placement and the first
    online pass will price heat on different scales.
    """
    # Imported lazily: the data plane sits below the control plane, and this
    # one offline helper is the only place it borrows the control-plane
    # normalization (a module-level import would be circular).
    from repro.control.telemetry import HeatTracker

    tracker = HeatTracker(plan, window_seconds=window_seconds, decay=decay)
    if arrival_seconds is None:
        tracker.observe_batch(indices, now=0.0)
    else:
        if len(arrival_seconds) != len(indices):
            raise ConfigurationError(
                f"got {len(arrival_seconds)} arrival stamps for "
                f"{len(indices)} trace indices"
            )
        for index, now in zip(indices, arrival_seconds):
            tracker.observe_batch([index], now)
    return tracker.heats()


def plan_placements(
    plan: ShardPlan,
    record_size: int,
    heats: Sequence[float],
    candidates: Optional[Sequence[CandidateKind]] = None,
) -> List[ShardPlacement]:
    """Place every non-empty shard on its cheapest capable backend kind.

    ``heats[i]`` is the expected number of queries touching shard ``i`` per
    operating window.  For each shard the candidates' window costs
    (``preload + heat * per_query``) are compared; ties go to the first
    candidate listed.
    """
    if len(heats) != plan.num_shards:
        raise ConfigurationError(
            f"got {len(heats)} heats for {plan.num_shards} shards"
        )
    if any(heat < 0 for heat in heats):
        raise ConfigurationError("shard heats must be non-negative")
    if candidates is None:
        candidates = default_candidates()
    if not candidates:
        raise ConfigurationError("placement needs at least one candidate kind")

    placements: List[ShardPlacement] = []
    for shard in plan.non_empty_shards:
        heat = float(heats[shard.index])
        options = [
            ShardPlacement(
                shard=shard,
                kind=candidate.kind,
                preloaded=candidate.preloaded,
                heat=heat,
                per_query_seconds=candidate.per_query_seconds(
                    shard.num_records, record_size
                ),
                preload_seconds=candidate.preload_seconds(
                    shard.num_records, record_size
                ),
            )
            for candidate in candidates
        ]
        placements.append(min(options, key=lambda option: option.window_cost_seconds))
    return placements


def render_placements(placements: Sequence[ShardPlacement]) -> List[str]:
    """Plain-text placement table (one line per shard) for bench reporting."""
    lines = [
        f"{'shard':>6} {'records':>10} {'heat':>8} {'kind':>16} "
        f"{'per-query':>12} {'window cost':>12}"
    ]
    for placement in placements:
        shard_range = f"[{placement.shard.start},{placement.shard.stop})"
        lines.append(
            f"{placement.shard.index:>6} {shard_range:>10} "
            f"{placement.heat:>8.1f} {placement.kind:>16} "
            f"{placement.per_query_seconds * 1e3:>10.3f}ms "
            f"{placement.window_cost_seconds * 1e3:>10.3f}ms"
        )
    return lines


class FleetRouter(PIRFrontend):
    """A batching frontend whose replicas are capability-placed shard fleets.

    Builds one :class:`~repro.shard.backend.ShardedServer` per privacy
    replica; each server's shard children follow the placement computed from
    ``heats`` (hot shards on preloaded PIM, cold shards on streamed IM-PIR,
    by default).  Everything else — batching policy, answer pairing,
    scheduling metrics — is the ordinary frontend surface.
    """

    def __init__(
        self,
        client: PIRClient,
        database: Database,
        plan: ShardPlan,
        heats: Sequence[float],
        candidates: Optional[Sequence[CandidateKind]] = None,
        child_config: Optional[IMPIRConfig] = None,
        policy: Optional[BatchingPolicy] = None,
        dedup: bool = False,
        executor: str = "serial",
        observers: Sequence = (),
        cache=None,
    ) -> None:
        plan.check_shape(database.num_records)
        self.plan = plan
        #: Remembered for the control plane: an online rebalancer must build
        #: migrated children on the same machine model the fleet started
        #: with, and cost candidates against it.
        self.child_config = child_config
        if candidates is None:
            # Cost the placement on the machine model the children will
            # actually run with, not the paper-scale default.
            candidates = default_candidates(
                child_config if child_config is not None else default_child_config()
            )
        self.candidates = list(candidates)
        # Placements and the kind map move together (install_placements):
        # the factory below reads the map live — it is also the fleets'
        # default child builder after online reshapes and kind migrations
        # renumber or re-place the shards, so it must follow the placements
        # in effect, never a construction-time snapshot.
        self.install_placements(
            plan_placements(plan, database.record_size, heats, candidates=candidates)
        )

        def child_factory(shard: ShardSpec) -> PIRBackend:
            return bare_backend_factory(
                self._kind_by_shard[shard.index], config=child_config
            )(shard)

        replicas = [
            ShardedServer(
                database,
                server_id=server_id,
                plan=plan,
                child_factory=child_factory,
                executor=executor,
            )
            for server_id in range(client.num_servers)
        ]
        super().__init__(
            client, replicas, policy=policy, dedup=dedup, observers=observers, cache=cache
        )

    @property
    def fleets(self) -> List[ShardedServer]:
        """The replica fleets (one sharded server per trust domain)."""
        return self.replicas

    # Bulk updates ride the inherited PIRFrontend.apply_updates: each fleet
    # routes dirty records to their owning shards only, and an attached
    # hot-record cache drops the dirty indices first.

    def apply_topology(
        self,
        change: TopologyChange,
        placements: Sequence[ShardPlacement],
    ) -> List[Optional["PhaseTimer"]]:
        """Install one agreed topology across every replica fleet.

        The router-level reshape point: ``placements`` (computed by
        :func:`plan_placements` over the **new** plan, normally by the
        control plane's rebalancer) chooses the backend kind each changed
        shard's fresh children are built with, and every fleet rides the
        same :class:`~repro.shard.plan.TopologyChange` — inside the
        frontend's :meth:`reconfigure` gate, so no flush ever spans two
        plan versions (structurally true on this simulated-clock frontend;
        the asyncio frontend enforces the same guarantee with its
        writer-preferring quiesce).

        The apply is two-phase: every fleet *stages* the change first
        (fresh children prepared off to the side — the only part that can
        fail, and it mutates nothing), and only once all stagings succeed
        does every fleet *commit* (pure reference assignments that cannot
        fail).  A factory error or a child refusing its slice therefore
        leaves router, fleets and kind map all exactly as they were — a
        multi-replica reshape can never apply partially, which is what
        makes the rebalancer's tracker rollback a genuine recovery.
        Returns each fleet's transfer report, in replica order.
        """
        change.new_plan.check_shape(self.plan.num_records)
        if len(placements) != len(change.new_plan.non_empty_shards):
            raise ConfigurationError(
                f"got {len(placements)} placements for "
                f"{len(change.new_plan.non_empty_shards)} non-empty shards"
            )
        kind_by_new_shard = {
            placement.shard.index: placement.kind for placement in placements
        }

        def child_factory(shard: ShardSpec) -> PIRBackend:
            return bare_backend_factory(
                kind_by_new_shard[shard.index], config=self.child_config
            )(shard)

        def mutate() -> List[Optional["PhaseTimer"]]:
            staged = [
                fleet.backend.stage_topology(change, child_factory)
                for fleet in self.fleets
            ]
            reports = [
                fleet.backend.commit_topology(staging)
                for fleet, staging in zip(self.fleets, staged)
            ]
            self.plan = change.new_plan
            self.install_placements(placements)
            return reports

        return self.reconfigure(mutate)

    def install_placements(self, placements: Sequence[ShardPlacement]) -> None:
        """Record the placements in effect — and the kind map the default
        child factory reads — as one unit.

        Every path that changes what kinds the fleets actually run (a
        topology apply, the rebalancer's kind migrations) must land here,
        or a later re-prepare / stage would rebuild children at stale
        kinds while the reporting surface claims the new ones.
        """
        self.placements = list(placements)
        self._kind_by_shard = {
            placement.shard.index: placement.kind for placement in placements
        }

    def placement_kinds(self) -> List[str]:
        """Chosen backend kind per non-empty shard, in shard order."""
        return [placement.kind for placement in self.placements]

    def describe_placements(self) -> str:
        """Multi-line placement report for logs and bench output."""
        return "\n".join(render_placements(self.placements))
