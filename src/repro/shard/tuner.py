"""Measured serial-vs-threads policy for the sharded batched scan.

PR 6 made the batched scan one pass (:func:`~repro.pir.xor_ops.dpxor_many`)
and PR 3 gave :class:`~repro.shard.backend.ShardedBackend` a ``threads``
executor — but whether threads actually *beat* serial depends on the shape:
small shards lose more to pool handoff than they gain from overlap, large
batches win it back.  Like RAFDA's separation of application logic from
distribution policy, the parallelism decision is a measured policy layered
over unchanged scan logic: a :class:`ScanTuner` runs a short calibration
pass at a given ``(num_records, record_size, batch)`` shape — timing the
serial one-pass scan against a sharded threads-style scan (contiguous
record slices into preallocated per-slice accumulator slabs, exactly the
shape of the backend's worker) for a few worker counts and chunk sizes —
and remembers which executor won.  A backend constructed with
``executor="auto"`` consults the tuner per flush, so the crossover is
measured on the machine that serves the traffic instead of guessed by the
caller.

Calibrations persist as JSON (:meth:`ScanTuner.save` / :meth:`ScanTuner.load`),
so a fleet restart — or the bench trajectory — keeps the measured crossover
instead of re-measuring; batch sizes are bucketed to powers of two so a
steady flow of slightly-varying flush sizes calibrates once per bucket, not
once per size.

This module is the one component of the shard layer that *must* read the
wall clock: its entire job is measuring real execution (the simulated clock
knows nothing about thread pools or memory bandwidth).  The clock is
injectable for tests; the wall-clock default carries the lint exemption
explicitly.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.pir.xor_ops import BATCH_CHUNK_BYTES, dpxor_many

#: Executor names, mirrored from the backend (not imported: the backend
#: imports this module).
_SERIAL = "serial"
_THREADS = "threads"


def wall_clock() -> Callable[[], float]:
    """The real monotonic clock, for measuring actual scan wall time."""
    import time

    return time.perf_counter  # noqa: wall-clock by design — the tuner measures real execution


def _bucket_batch(batch: int) -> int:
    """Round ``batch`` up to a power of two, so near-miss flush sizes share
    one calibration instead of each triggering a measurement pass."""
    if batch <= 1:
        return 1
    return 1 << (batch - 1).bit_length()


@dataclass(frozen=True)
class ScanCalibration:
    """Outcome of one calibration pass at one scan shape.

    ``executor`` is the verdict (``"serial"`` or ``"threads"``);
    ``num_workers``/``chunk_records`` are the winning threads configuration
    (recorded even when serial wins, so the crossover sweep can show *how
    close* threads came).
    """

    num_records: int
    record_size: int
    batch: int
    serial_seconds: float
    threads_seconds: float
    num_workers: int
    chunk_records: int
    executor: str

    @property
    def threads_speedup(self) -> float:
        """Serial time over best threads time (>1 means threads won raw)."""
        if self.threads_seconds <= 0.0:
            return 0.0
        return self.serial_seconds / self.threads_seconds


class ScanTuner:
    """Calibrates and remembers the serial-vs-threads crossover per shape."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        worker_counts: Optional[Sequence[int]] = None,
        repeats: int = 3,
        min_speedup: float = 1.1,
    ) -> None:
        if repeats <= 0:
            raise ConfigurationError("repeats must be positive")
        if min_speedup < 1.0:
            raise ConfigurationError("min_speedup must be >= 1.0")
        self._clock = clock if clock is not None else wall_clock()
        if worker_counts is None:
            cores = os.cpu_count() or 1
            worker_counts = sorted({2, min(4, max(2, cores)), max(2, cores)})
        self._worker_counts = tuple(int(count) for count in worker_counts)
        if not self._worker_counts or min(self._worker_counts) < 2:
            raise ConfigurationError("worker_counts must all be >= 2")
        self._repeats = repeats
        #: Threads must beat serial by this factor to win the verdict —
        #: hysteresis against flipping the fleet's executor on measurement
        #: noise when the two are within a whisker of each other.
        self._min_speedup = min_speedup
        self._calibrations: Dict[Tuple[int, int, int], ScanCalibration] = {}

    # -- measurement ------------------------------------------------------------

    def _best_of(self, run: Callable[[], None]) -> float:
        best = float("inf")
        for _ in range(self._repeats):
            started = self._clock()
            run()
            best = min(best, self._clock() - started)
        return best

    def calibrate(
        self, num_records: int, record_size: int, batch: int
    ) -> ScanCalibration:
        """Measure serial vs. threads at this shape and record the verdict.

        Deterministic synthetic operands (seeded from the shape) stand in
        for the real database: the scan cost depends only on the shape, not
        the bytes.  The threads leg reproduces the backend's worker exactly —
        contiguous record slices, one preallocated slab per worker, a
        persistent pool (creation excluded from timing, as the backend's
        pool outlives every flush), and the final XOR fold across slabs.
        """
        if num_records <= 0 or record_size <= 0 or batch <= 0:
            raise ConfigurationError("calibration shape must be positive")
        batch = _bucket_batch(batch)
        rng = np.random.default_rng(
            (num_records * 1_000_003 + record_size * 1_009 + batch) & 0x7FFFFFFF
        )
        database = rng.integers(0, 256, size=(num_records, record_size), dtype=np.uint8)
        selectors = rng.integers(0, 2, size=(batch, num_records), dtype=np.uint8)

        default_chunk = max(1, BATCH_CHUNK_BYTES // max(1, record_size))
        chunk_candidates = sorted(
            {min(num_records, default_chunk), min(num_records, max(1, default_chunk // 4))}
        )
        serial_seconds = float("inf")
        best_chunk = chunk_candidates[0]
        out = np.zeros((batch, record_size), dtype=np.uint8)
        for chunk in chunk_candidates:
            seconds = self._best_of(
                lambda chunk=chunk: dpxor_many(
                    database, selectors, chunk_records=chunk, out=out
                )
            )
            if seconds < serial_seconds:
                serial_seconds = seconds
                best_chunk = chunk

        threads_seconds = float("inf")
        best_workers = self._worker_counts[0]
        for workers in self._worker_counts:
            bounds = self._slice_bounds(num_records, workers)
            partials = np.zeros((len(bounds), batch, record_size), dtype=np.uint8)

            def scan_slice(index: int, bounds=bounds, partials=partials) -> None:
                start, stop = bounds[index]
                dpxor_many(
                    database[start:stop],
                    selectors[:, start:stop],
                    chunk_records=best_chunk,
                    out=partials[index],
                )

            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="scan-tune"
            ) as pool:

                def run_threads() -> None:
                    list(pool.map(scan_slice, range(len(bounds))))
                    np.bitwise_xor.reduce(partials, axis=0, out=out)

                seconds = self._best_of(run_threads)
            if seconds < threads_seconds:
                threads_seconds = seconds
                best_workers = workers

        executor = (
            _THREADS
            if threads_seconds * self._min_speedup < serial_seconds
            else _SERIAL
        )
        calibration = ScanCalibration(
            num_records=num_records,
            record_size=record_size,
            batch=batch,
            serial_seconds=serial_seconds,
            threads_seconds=threads_seconds,
            num_workers=best_workers,
            chunk_records=best_chunk,
            executor=executor,
        )
        self._calibrations[(num_records, record_size, batch)] = calibration
        return calibration

    @staticmethod
    def _slice_bounds(num_records: int, workers: int) -> List[Tuple[int, int]]:
        """Contiguous ceil-split of the records, like the shard layer's own."""
        per_worker = -(-num_records // workers)
        bounds = []
        for index in range(workers):
            start = min(index * per_worker, num_records)
            stop = min(start + per_worker, num_records)
            if start < stop:
                bounds.append((start, stop))
        return bounds

    # -- policy lookup ----------------------------------------------------------

    def choose(self, num_records: int, record_size: int, batch: int) -> ScanCalibration:
        """The calibration for this shape, measuring it on first sight."""
        key = (num_records, record_size, _bucket_batch(batch))
        calibration = self._calibrations.get(key)
        if calibration is None:
            calibration = self.calibrate(num_records, record_size, batch)
        return calibration

    def executor_for(self, num_records: int, record_size: int, batch: int) -> str:
        """``"serial"`` or ``"threads"`` — the measured verdict for the shape."""
        return self.choose(num_records, record_size, batch).executor

    @property
    def calibrations(self) -> List[ScanCalibration]:
        """Every recorded calibration, in shape order."""
        return [self._calibrations[key] for key in sorted(self._calibrations)]

    def crossover_rows(self) -> List[dict]:
        """The calibrations as plain dicts (for bench artifacts / reports)."""
        return [
            dict(asdict(calibration), threads_speedup=calibration.threads_speedup)
            for calibration in self.calibrations
        ]

    # -- persistence ------------------------------------------------------------

    def save(self, path) -> None:
        """Persist the recorded calibrations as JSON."""
        payload = {"version": 1, "calibrations": [asdict(c) for c in self.calibrations]}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def load(self, path) -> int:
        """Merge calibrations from ``path`` into this tuner; returns the count.

        Loaded verdicts override same-shape entries: the file is assumed to
        be the more deliberate measurement (a saved bench run) than whatever
        ad-hoc calibration this process did first.
        """
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        rows = payload.get("calibrations", [])
        for row in rows:
            calibration = ScanCalibration(**row)
            key = (calibration.num_records, calibration.record_size, calibration.batch)
            self._calibrations[key] = calibration
        return len(rows)


_default_tuner: Optional[ScanTuner] = None


def default_tuner() -> ScanTuner:
    """The process-wide shared tuner, created on first use.

    Shared deliberately: every ``executor="auto"`` backend in the process
    serves from the same machine, so one measurement per shape serves all of
    them (a fleet of replicas would otherwise calibrate once per replica).
    """
    global _default_tuner
    if _default_tuner is None:
        _default_tuner = ScanTuner()
    return _default_tuner
