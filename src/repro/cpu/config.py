"""Configuration of the processor-centric baseline server.

The paper runs its CPU-PIR baseline (Google's ``distributed_point_functions``
DPF library with AES-NI and AVX, one thread per query) on a separate machine
without PIM DIMMs: two 16-core Xeon E5-2683 v4 CPUs, 40 MB of LLC per socket
and 128 GB of DRAM.  The figures below describe that machine plus the handful
of derived rates the cost model needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.units import GIB, MIB


@dataclass(frozen=True)
class CPUConfig:
    """Baseline CPU server parameters (Xeon E5-2683 v4 box in the paper)."""

    sockets: int = 2
    cores_per_socket: int = 16
    threads_per_core: int = 2
    frequency_hz: float = 2.1e9
    llc_bytes: int = 40 * MIB
    dram_bytes: int = 128 * GIB
    #: Peak DRAM bandwidth (4-channel DDR4-2400 per socket).
    dram_peak_bandwidth: float = 76.8e9
    #: Sustained bandwidth one streaming thread achieves in isolation (AVX
    #: loads with hardware prefetching, conditional accumulate).
    single_thread_stream_bandwidth: float = 12e9
    #: Effective bandwidth when the whole working set fits in the LLC.
    llc_bandwidth: float = 220e9
    #: Row-buffer / queueing efficiency loss per additional concurrent stream.
    stream_contention_alpha: float = 0.04
    #: Effective GGM-expansion rate per query thread (AES-128 blocks/second).
    #: The baseline library evaluates the tree recursively per node, which
    #: keeps it below the raw pipelined AES-NI peak that IM-PIR's batched
    #: host-side evaluation reaches.
    aes_blocks_per_second_per_thread: float = 150e6
    #: Scaling efficiency when many threads cooperate on one evaluation.
    thread_scaling_efficiency: float = 0.8
    #: Threads devoted to query processing in the batch experiments (the paper
    #: uses 32: one per query of the default batch).
    query_threads: int = 32

    def __post_init__(self) -> None:
        if self.sockets <= 0 or self.cores_per_socket <= 0 or self.threads_per_core <= 0:
            raise ConfigurationError("core topology values must be positive")
        if self.frequency_hz <= 0 or self.dram_peak_bandwidth <= 0:
            raise ConfigurationError("frequency and bandwidth must be positive")
        if self.llc_bytes <= 0 or self.dram_bytes <= 0:
            raise ConfigurationError("memory sizes must be positive")
        if not 0.0 <= self.stream_contention_alpha < 1.0:
            raise ConfigurationError("stream_contention_alpha must be in [0, 1)")
        if self.query_threads <= 0:
            raise ConfigurationError("query_threads must be positive")

    @property
    def total_threads(self) -> int:
        """Hardware threads on the machine."""
        return self.sockets * self.cores_per_socket * self.threads_per_core

    @property
    def total_cores(self) -> int:
        """Physical cores on the machine."""
        return self.sockets * self.cores_per_socket

    def with_query_threads(self, query_threads: int) -> "CPUConfig":
        """A copy of this configuration with a different query-thread count."""
        return CPUConfig(
            sockets=self.sockets,
            cores_per_socket=self.cores_per_socket,
            threads_per_core=self.threads_per_core,
            frequency_hz=self.frequency_hz,
            llc_bytes=self.llc_bytes,
            dram_bytes=self.dram_bytes,
            dram_peak_bandwidth=self.dram_peak_bandwidth,
            single_thread_stream_bandwidth=self.single_thread_stream_bandwidth,
            llc_bandwidth=self.llc_bandwidth,
            stream_contention_alpha=self.stream_contention_alpha,
            aes_blocks_per_second_per_thread=self.aes_blocks_per_second_per_thread,
            thread_scaling_efficiency=self.thread_scaling_efficiency,
            query_threads=query_threads,
        )


#: The paper's baseline machine.
CPU_BASELINE_CONFIG = CPUConfig()
