"""CPU-PIR: the processor-centric baseline server (functional + cost model).

This is the system the paper compares against: a standard multi-server PIR
server where both the DPF evaluation and the dpXOR database scan run on the
CPU, the database lives in ordinary DRAM, and every query moves the whole
database across the memory bus.  The functional path answers through the
shared :class:`~repro.core.engine.QueryEngine` over the plain-numpy
:class:`~repro.core.engine.ReferenceBackend` (bit-exact with the reference
server); the attached cost model reports the simulated per-phase latencies
that the benchmark harness turns into Fig. 9/10/12 series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.events import PhaseTimer
from repro.core.engine import QueryEngine, ReferenceBackend
from repro.cpu.config import CPUConfig
from repro.cpu.model import PHASE_DPXOR, PHASE_EVAL, CPUBatchEstimate, CPUModel
from repro.dpf.prf import LengthDoublingPRG
from repro.pir.database import Database
from repro.pir.messages import PIRAnswer
from repro.pir.server import Query, ServerStats


@dataclass
class CPUQueryResult:
    """A functional answer plus the simulated per-phase cost of producing it."""

    answer: PIRAnswer
    breakdown: PhaseTimer

    @property
    def latency_seconds(self) -> float:
        """Simulated server-side latency of this query."""
        return self.breakdown.total


@dataclass
class CPUBatchResult:
    """Functional answers plus the simulated makespan for a query batch."""

    answers: List[PIRAnswer]
    estimate: CPUBatchEstimate

    @property
    def latency_seconds(self) -> float:
        """Simulated makespan of the batch."""
        return self.estimate.latency_seconds

    @property
    def throughput_qps(self) -> float:
        """Queries per simulated second."""
        return self.estimate.throughput_qps


class CPUPIRServer:
    """Baseline server: reference functional path + processor-centric cost model."""

    def __init__(
        self,
        database: Database,
        server_id: int = 0,
        config: Optional[CPUConfig] = None,
        prg: Optional[LengthDoublingPRG] = None,
    ) -> None:
        self.database = database
        self.config = config if config is not None else CPUConfig()
        self.model = CPUModel(self.config)
        self.stats = ServerStats()
        self.backend = ReferenceBackend(name="cpu-pir", dpxor_stats=self.stats.dpxor)
        self.engine = QueryEngine(
            self.backend, server_id=server_id, prg=prg, stats=self.stats
        )
        self.engine.prepare(database)

    @property
    def server_id(self) -> int:
        """Identifier of the replica this server plays."""
        return self.engine.server_id

    # -- single query (latency mode, Fig. 10) -----------------------------------------

    def answer(self, query: Query) -> PIRAnswer:
        """Answer a query functionally (no timing attached)."""
        return self.engine.answer(query).answer

    def answer_with_breakdown(self, query: Query) -> CPUQueryResult:
        """Answer a query and report the latency-mode phase breakdown."""
        answer = self.engine.answer(query).answer
        breakdown = self.model.single_query_breakdown(
            self.database.num_records, self.database.record_size
        )
        return CPUQueryResult(answer=answer, breakdown=breakdown)

    # -- batches (throughput mode, Fig. 9) -----------------------------------------------

    def answer_batch(self, queries: Sequence[Query]) -> CPUBatchResult:
        """Answer a batch functionally and attach the batch-mode makespan estimate."""
        answers = [r.answer for r in self.engine.answer_many(queries).results]
        estimate = self.model.batch_estimate(
            self.database.num_records, self.database.record_size, batch_size=len(queries)
        )
        return CPUBatchResult(answers=answers, estimate=estimate)

    # -- analytic-only helpers (paper-scale databases) --------------------------------------

    def estimate_batch(self, num_records: int, record_size: int, batch_size: int) -> CPUBatchEstimate:
        """Batch estimate for an arbitrary database shape (no functional run)."""
        return self.model.batch_estimate(num_records, record_size, batch_size)

    def estimate_breakdown(self, num_records: int, record_size: int) -> PhaseTimer:
        """Latency-mode phase breakdown for an arbitrary database shape."""
        return self.model.single_query_breakdown(num_records, record_size)


__all__ = [
    "CPUQueryResult",
    "CPUBatchResult",
    "CPUPIRServer",
    "PHASE_EVAL",
    "PHASE_DPXOR",
]
