"""CPU cost model: DPF evaluation and dpXOR on a processor-centric server.

Two execution modes mirror how the paper measures its baseline:

* **latency mode** (Fig. 10) — a single query at a time, the whole machine
  available: DPF evaluation parallelised across threads, the dpXOR scan
  limited by what the memory system gives a handful of cooperative streams.
* **batch mode** (Fig. 9) — one thread per query, ``batch_size`` queries in
  flight: per-thread evaluation, dpXOR streams contending for DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.events import PhaseTimer
from repro.cpu.cache import CacheModel
from repro.cpu.config import CPUConfig

#: Amortised AES-block cost per evaluated leaf of the GGM tree.  Both servers
#: use the same fixed-key single-AES-per-child DPF construction, so the CPU
#: baseline's full-domain evaluation also costs about one block per leaf.
BLOCKS_PER_LEAF = 1.0

PHASE_EVAL = "eval"
PHASE_DPXOR = "dpxor"


@dataclass
class CPUBatchEstimate:
    """Latency/throughput estimate for a batch of queries on the CPU baseline."""

    batch_size: int
    latency_seconds: float
    throughput_qps: float
    compute_bound_seconds: float
    bandwidth_bound_seconds: float
    critical_path_seconds: float
    per_query_breakdown: PhaseTimer


class CPUModel:
    """Analytic cost model for the processor-centric PIR baseline."""

    def __init__(self, config: CPUConfig | None = None) -> None:
        self.config = config if config is not None else CPUConfig()
        self.cache = CacheModel(self.config)

    # -- DPF evaluation -----------------------------------------------------------

    def dpf_eval_seconds(
        self,
        num_leaves: int,
        threads: int = 1,
        blocks_per_leaf: float = BLOCKS_PER_LEAF,
    ) -> float:
        """Time to evaluate a DPF over ``num_leaves`` using ``threads`` threads."""
        if num_leaves < 0:
            raise ConfigurationError("num_leaves must be non-negative")
        if threads <= 0:
            raise ConfigurationError("threads must be positive")
        per_thread = self.config.aes_blocks_per_second_per_thread
        scaling = self.config.thread_scaling_efficiency if threads > 1 else 1.0
        aggregate = per_thread * min(threads, self.config.total_threads) * scaling
        return num_leaves * blocks_per_leaf / aggregate

    # -- dpXOR ----------------------------------------------------------------------

    def dpxor_seconds(
        self,
        db_bytes: int,
        concurrent_streams: int = 1,
        unloaded: bool = False,
    ) -> float:
        """Time for one query's dpXOR scan of ``db_bytes``.

        ``concurrent_streams`` is the number of other query threads streaming
        at the same time (contention); ``unloaded`` evaluates the scan as if
        it were alone on the machine.
        """
        if db_bytes < 0:
            raise ConfigurationError("db_bytes must be non-negative")
        return self.cache.scan_seconds(db_bytes, concurrent_streams, unloaded=unloaded)

    # -- end-to-end query estimates ---------------------------------------------------

    def single_query_breakdown(self, num_records: int, record_size: int) -> PhaseTimer:
        """Latency-mode (whole machine, one query) per-phase breakdown."""
        timer = PhaseTimer()
        timer.record(PHASE_EVAL, self.dpf_eval_seconds(num_records, threads=self.config.total_threads))
        # A single query's scan is issued by a few cooperative threads: it gets
        # the full single-stream bandwidth but not the whole DRAM system.
        streams = min(8, self.config.total_threads)
        db_bytes = num_records * record_size
        per_stream = self.cache.streaming_bandwidth(db_bytes, concurrent_streams=streams)
        timer.record(PHASE_DPXOR, db_bytes / per_stream.aggregate_bandwidth if db_bytes else 0.0)
        return timer

    def batch_estimate(self, num_records: int, record_size: int, batch_size: int) -> CPUBatchEstimate:
        """Batch-mode estimate: one thread per query, ``batch_size`` queries.

        The makespan is the largest of three lower bounds:

        * the compute bound — total evaluation work divided over the query
          threads;
        * the bandwidth bound — total bytes scanned divided by the contended
          DRAM bandwidth;
        * the critical path — one query's evaluation plus its own scan at the
          unloaded streaming rate (no batch can finish before its last query).
        """
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        threads = min(self.config.query_threads, batch_size)
        db_bytes = num_records * record_size

        eval_per_query = self.dpf_eval_seconds(num_records, threads=1)
        compute_bound = batch_size * eval_per_query / threads

        total_scan_bytes = batch_size * db_bytes
        aggregate_bw = self.cache.streaming_bandwidth(db_bytes, concurrent_streams=threads)
        bandwidth_bound = total_scan_bytes / aggregate_bw.aggregate_bandwidth if db_bytes else 0.0

        dpxor_unloaded = self.dpxor_seconds(db_bytes, unloaded=True)
        critical_path = eval_per_query + dpxor_unloaded

        latency = max(compute_bound, bandwidth_bound, critical_path)
        throughput = batch_size / latency if latency > 0 else float("inf")

        # Average thread-seconds one query occupied, split into its two phases:
        # evaluation is compute-bound and unaffected by contention, so whatever
        # else the thread spent waiting is attributed to the memory-bound scan.
        thread_seconds_per_query = latency * threads / batch_size
        dpxor_effective = max(dpxor_unloaded, thread_seconds_per_query - eval_per_query)
        per_query = PhaseTimer()
        per_query.record(PHASE_EVAL, eval_per_query)
        per_query.record(PHASE_DPXOR, dpxor_effective)
        return CPUBatchEstimate(
            batch_size=batch_size,
            latency_seconds=latency,
            throughput_qps=throughput,
            compute_bound_seconds=compute_bound,
            bandwidth_bound_seconds=bandwidth_bound,
            critical_path_seconds=critical_path,
            per_query_breakdown=per_query,
        )
