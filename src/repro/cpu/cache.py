"""Cache/bandwidth model of the processor-centric memory hierarchy.

The paper's explanation for CPU-PIR's poor scaling is the memory wall: once
the database no longer fits in the last-level cache, every dpXOR pass streams
it from DRAM, and with one thread per query many concurrent streams contend
for the same memory controllers.  This module captures exactly those two
effects:

* **LLC capacity** — scans whose working set fits in the LLC run at cache
  bandwidth; larger scans run at DRAM speed.
* **Stream contention** — effective DRAM bandwidth degrades as more threads
  stream simultaneously (row-buffer conflicts, queueing), modelled as a
  ``1 / (1 + alpha * (streams - 1))`` efficiency factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.cpu.config import CPUConfig


@dataclass
class BandwidthEstimate:
    """Result of a bandwidth query against the cache model."""

    per_stream_bandwidth: float
    aggregate_bandwidth: float
    served_from_llc: bool


class CacheModel:
    """Answers "how fast can N threads stream a working set of S bytes?"."""

    def __init__(self, config: CPUConfig) -> None:
        self.config = config

    def dram_efficiency(self, concurrent_streams: int) -> float:
        """Fraction of peak DRAM bandwidth achievable with ``concurrent_streams``."""
        if concurrent_streams <= 0:
            raise ConfigurationError("concurrent_streams must be positive")
        alpha = self.config.stream_contention_alpha
        return 1.0 / (1.0 + alpha * (concurrent_streams - 1))

    def effective_dram_bandwidth(self, concurrent_streams: int) -> float:
        """Aggregate DRAM bandwidth available to ``concurrent_streams`` streams."""
        return self.config.dram_peak_bandwidth * self.dram_efficiency(concurrent_streams)

    def fits_in_llc(self, working_set_bytes: int) -> bool:
        """Whether a working set is LLC-resident after the first pass."""
        if working_set_bytes < 0:
            raise ConfigurationError("working_set_bytes must be non-negative")
        return working_set_bytes <= self.config.llc_bytes

    def streaming_bandwidth(
        self, working_set_bytes: int, concurrent_streams: int = 1
    ) -> BandwidthEstimate:
        """Bandwidth for ``concurrent_streams`` scans of ``working_set_bytes`` each.

        Returns both the per-stream and the aggregate figure; the caller picks
        whichever bound applies (a single query's latency is limited by the
        per-stream figure, a batch's makespan by the aggregate one).
        """
        if concurrent_streams <= 0:
            raise ConfigurationError("concurrent_streams must be positive")
        if self.fits_in_llc(working_set_bytes * concurrent_streams):
            aggregate = self.config.llc_bandwidth
            per_stream = aggregate / concurrent_streams
            return BandwidthEstimate(per_stream, aggregate, served_from_llc=True)

        aggregate = self.effective_dram_bandwidth(concurrent_streams)
        fair_share = aggregate / concurrent_streams
        per_stream = min(self.config.single_thread_stream_bandwidth, fair_share)
        return BandwidthEstimate(per_stream, aggregate, served_from_llc=False)

    def scan_seconds(
        self, working_set_bytes: int, concurrent_streams: int = 1, unloaded: bool = False
    ) -> float:
        """Seconds for one stream to scan ``working_set_bytes`` once.

        ``unloaded=True`` ignores contention (a single query running alone),
        which is the figure the per-query critical path uses.
        """
        if working_set_bytes == 0:
            return 0.0
        if unloaded:
            estimate = self.streaming_bandwidth(working_set_bytes, concurrent_streams=1)
        else:
            estimate = self.streaming_bandwidth(working_set_bytes, concurrent_streams)
        return working_set_bytes / estimate.per_stream_bandwidth
