"""Processor-centric baseline: cache model, CPU cost model, CPU-PIR server."""

from repro.cpu.cache import BandwidthEstimate, CacheModel
from repro.cpu.config import CPU_BASELINE_CONFIG, CPUConfig
from repro.cpu.cpu_pir import CPUBatchResult, CPUPIRServer, CPUQueryResult
from repro.cpu.model import (
    BLOCKS_PER_LEAF,
    PHASE_DPXOR,
    PHASE_EVAL,
    CPUBatchEstimate,
    CPUModel,
)

__all__ = [
    "BandwidthEstimate",
    "CacheModel",
    "CPU_BASELINE_CONFIG",
    "CPUConfig",
    "CPUBatchResult",
    "CPUPIRServer",
    "CPUQueryResult",
    "BLOCKS_PER_LEAF",
    "PHASE_DPXOR",
    "PHASE_EVAL",
    "CPUBatchEstimate",
    "CPUModel",
]
