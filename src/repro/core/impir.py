"""The IM-PIR server: PIM-accelerated multi-server PIR (paper §3, Algorithm 1).

One :class:`IMPIRServer` plays the role of a single database replica in the
two-server protocol.  Its responsibilities, following Figure 5:

➋ evaluate the received DPF key over the full database domain on the host CPU
   (AES-NI in the paper; a numpy PRG functionally here, costed as AES blocks);
➌ split the resulting selector shares into per-DPU packed bit vectors and
   copy them to DPU MRAM;
➍ launch the dpXOR kernel, which scans each DPU's preloaded database block
   with two-stage parallel reduction across its tasklets;
➎ gather the per-DPU sub-results back to the host;
➏ XOR-fold them into the server's sub-result, which is returned to the client.

The protocol half of those steps (validation, key evaluation, answer
assembly) is supplied by the shared :class:`~repro.core.engine.QueryEngine`;
this module contributes :class:`PIMClusterBackend` — the DPU-cluster
execution substrate — and the :class:`IMPIRServer` facade that binds the two
together with the paper's cost model.

The database itself is preloaded into MRAM once, ahead of query processing,
exactly as in the paper (its transfer time is reported separately and not
charged to queries).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ProtocolError
from repro.common.events import PhaseTimer
from repro.core.config import IMPIRConfig
from repro.core.engine import BackendCapabilities, PIRBackend, QueryEngine
from repro.core.partitioning import (
    DatabasePartitioner,
    PartitionLayout,
    fold_partials,
    reset_pipeline_buffers,
    run_dpu_pipeline,
    run_dpu_pipeline_many,
)
from repro.core.results import PHASE_AGGREGATE, IMPIRBatchResult, IMPIRQueryResult
from repro.dpf.prf import make_prg
from repro.pim.cluster import DPUCluster, make_clusters
from repro.pim.kernels import DB_BUFFER, DpXorKernel, DpXorManyKernel
from repro.pim.system import UPMEMSystem
from repro.pir.database import Database
from repro.pir.messages import DPFQuery

#: Phase name under which partial MRAM re-transfers of bulk updates are billed.
PHASE_UPDATE_COPY = "update_copy"


class PIMClusterBackend(PIRBackend):
    """Execution backend running the dpXOR on preloaded DPU clusters.

    Each cluster holds a full copy of the database partitioned across its
    DPUs, so every cluster is an independent execution lane.
    """

    def __init__(self, config: IMPIRConfig, system: UPMEMSystem) -> None:
        self.config = config
        self.system = system
        self.timing = system.timing
        self._kernel = DpXorKernel()
        self._batch_kernel = DpXorManyKernel()
        self._dpu_set = system.allocate(config.pim.num_dpus)
        self._clusters: List[DPUCluster] = make_clusters(self._dpu_set, config.num_clusters)
        self._layouts: List[PartitionLayout] = []
        # One partitioner per database generation: the hot path must not
        # rebuild it per query.
        self._partitioner: Optional[DatabasePartitioner] = None
        self.database: Optional[Database] = None

    # -- database lifecycle (not charged to queries) ------------------------------

    def prepare(self, database: Database) -> PhaseTimer:
        """Partition the database across each cluster's DPUs and load MRAM."""
        self.database = database
        self._partitioner = DatabasePartitioner(database)
        timer = PhaseTimer()
        self._layouts = []
        for cluster in self._clusters:
            layout = self._partitioner.layout(cluster.num_dpus)
            self._partitioner.check_capacity(
                layout,
                mram_bytes_per_dpu=self.config.pim.dpu.mram_bytes,
                reserve_fraction=self.config.mram_reserve_fraction,
            )
            reset_pipeline_buffers(cluster.dpu_set)
            cluster.dpu_set.load_program(self._kernel.name)
            chunks = self._partitioner.database_chunks(layout)
            report = cluster.dpu_set.scatter(DB_BUFFER, chunks)
            timer.record("preload_db", report.simulated_seconds)
            cluster.preloaded_records = layout.num_records
            cluster.record_size = layout.record_size
            self._layouts.append(layout)
        return timer

    def apply_updates(self, database: Database, dirty_indices: Sequence[int]) -> PhaseTimer:
        """Swap in an updated database, re-copying only the dirty MRAM blocks.

        Each dirty record is mapped to its DPU block with a bisect over the
        layout's block starts (O(u log d)), and only the affected blocks are
        rebuilt and re-transferred — untouched blocks keep their MRAM
        contents and cost nothing.
        """
        self.database = database
        self._partitioner = DatabasePartitioner(database)
        timer = PhaseTimer()
        for cluster, layout in zip(self._clusters, self._layouts):
            starts = [start for start, _ in layout.bounds]
            dirty_dpus = sorted({bisect_right(starts, index) - 1 for index in dirty_indices})
            if not dirty_dpus:
                continue
            affected_dpus = [cluster.dpu_set.dpus[i] for i in dirty_dpus]
            affected_chunks = [
                np.ascontiguousarray(database.chunk(*layout.bounds[i])).reshape(-1)
                for i in dirty_dpus
            ]
            report = cluster.dpu_set.transfer.scatter(affected_dpus, DB_BUFFER, affected_chunks)
            timer.record(PHASE_UPDATE_COPY, report.simulated_seconds)
        return timer

    # -- capability metadata --------------------------------------------------------

    def capabilities(self) -> BackendCapabilities:
        # The record-count bound depends on the record size, which is only
        # known once a database is prepared; before that the MRAM capacity is
        # enforced by check_capacity inside prepare() (CapacityError), so
        # report no bound rather than a misleading one.
        max_records = None
        if self.database is not None and self._clusters:
            usable_per_dpu = int(
                self.config.pim.dpu.mram_bytes * (1.0 - self.config.mram_reserve_fraction)
            )
            max_records = (
                usable_per_dpu // max(1, self.database.record_size)
            ) * self._clusters[0].num_dpus
        return BackendCapabilities(
            name="im-pir",
            lanes=len(self._clusters),
            batch_workers=self.config.effective_eval_workers,
            supports_naive=False,
            preloaded=True,
            max_records=max_records,
            description="dpXOR on preloaded UPMEM DPU clusters",
        )

    # -- timing hooks -----------------------------------------------------------------

    def latency_eval_seconds(self, num_records: int) -> float:
        return self.timing.host_dpf_eval_seconds(
            num_records,
            blocks_per_leaf=self.config.blocks_per_leaf,
            threads=self.config.effective_latency_threads,
        )

    def batch_eval_seconds(self, num_records: int) -> float:
        return self.timing.host_dpf_eval_seconds(
            num_records, blocks_per_leaf=self.config.blocks_per_leaf, threads=1
        )

    # -- DPU pipeline for one query on one cluster (phases ➌–➏) -----------------------

    def execute(
        self, selector_bits: np.ndarray, breakdown: PhaseTimer, lane: int = 0
    ) -> np.ndarray:
        cluster = self._clusters[lane]
        layout = self._layouts[lane]
        shares = self._partitioner.selector_chunks(layout, selector_bits)
        partials = run_dpu_pipeline(
            cluster.dpu_set, self._kernel, layout, shares, breakdown
        )
        result = fold_partials(partials, layout.record_size)
        breakdown.record(
            PHASE_AGGREGATE,
            self.timing.host_aggregate_xor_seconds(len(partials), layout.record_size),
        )
        return result

    def execute_many(
        self,
        selector_matrix: np.ndarray,
        breakdowns: Sequence[PhaseTimer],
        lanes: Sequence[int],
    ) -> np.ndarray:
        """Batched dpXOR: one DPU dispatch per cluster serves its whole share.

        Rows are grouped by execution lane (the engine assigns lanes
        round-robin across clusters) and each cluster serves its rows through
        :func:`~repro.core.partitioning.run_dpu_pipeline_many` — one selector
        scatter, one batched kernel launch, one result gather per cluster per
        flush, instead of one of each per query.  Payloads stay bit-identical
        to the sequential path; the fixed per-dispatch charges amortise
        across the cluster's rows per the pipeline's documented cost model,
        while per-row kernel costs and the host-side fold (phase ➏) are still
        charged per query.
        """
        selector_matrix = np.asarray(selector_matrix, dtype=np.uint8)
        out = np.zeros(
            (selector_matrix.shape[0], self.database.record_size), dtype=np.uint8
        )
        rows_by_lane: dict = {}
        for position, lane in enumerate(lanes):
            rows_by_lane.setdefault(lane, []).append(position)
        for lane in sorted(rows_by_lane):
            positions = rows_by_lane[lane]
            cluster = self._clusters[lane]
            layout = self._layouts[lane]
            chunks = self._partitioner.selector_chunks_many(
                layout, selector_matrix[positions]
            )
            partials = run_dpu_pipeline_many(
                cluster.dpu_set,
                self._batch_kernel,
                layout,
                chunks,
                [breakdowns[position] for position in positions],
            )
            out[positions] = np.bitwise_xor.reduce(np.stack(partials), axis=0)
            aggregate_seconds = self.timing.host_aggregate_xor_seconds(
                len(partials), layout.record_size
            )
            for position in positions:
                breakdowns[position].record(PHASE_AGGREGATE, aggregate_seconds)
        return out

    # -- public views for the facade ----------------------------------------------

    @property
    def clusters(self) -> List[DPUCluster]:
        """The execution lanes (read-only use intended)."""
        return self._clusters

    def layout_for_lane(self, lane: int) -> PartitionLayout:
        """Partition layout used by execution lane ``lane``."""
        return self._layouts[lane]

    @property
    def mram_capacity_bytes(self) -> int:
        """Aggregate MRAM capacity of the allocated DPU population."""
        return self._dpu_set.mram_capacity_bytes


class IMPIRServer:
    """A PIM-accelerated PIR database server."""

    def __init__(
        self,
        database: Database,
        config: Optional[IMPIRConfig] = None,
        server_id: int = 0,
        system: Optional[UPMEMSystem] = None,
    ) -> None:
        if server_id not in (0, 1):
            raise ProtocolError("IM-PIR is a two-server deployment; server_id must be 0 or 1")
        self.config = config if config is not None else IMPIRConfig()
        self.server_id = server_id
        self.system = system if system is not None else UPMEMSystem(self.config.pim)
        self.timing = self.system.timing
        self.backend = PIMClusterBackend(self.config, self.system)
        self.engine = QueryEngine(
            self.backend, server_id=server_id, prg=make_prg(self.config.prg_backend)
        )
        self.engine.prepare(database)

    @property
    def database(self) -> Database:
        """The replica's current database snapshot."""
        return self.engine.database

    @property
    def preload_report(self) -> Optional[PhaseTimer]:
        """Simulated cost of the initial MRAM preload (not charged to queries)."""
        return self.engine.preload_report

    @property
    def num_clusters(self) -> int:
        """Number of DPU clusters serving queries."""
        return len(self.backend.clusters)

    @property
    def clusters(self) -> List[DPUCluster]:
        """The clusters themselves (read-only use intended)."""
        return self.backend.clusters

    def layout_for_cluster(self, cluster_index: int) -> PartitionLayout:
        """Partition layout used by cluster ``cluster_index``."""
        return self.backend.layout_for_lane(cluster_index)

    # -- single-query path (latency mode, Fig. 10) ----------------------------------------

    def answer(self, query: DPFQuery, cluster_index: int = 0) -> IMPIRQueryResult:
        """Answer one query, parallelising its evaluation across the whole host.

        This is the paper's latency-mode measurement: one query at a time, DPF
        evaluation spread over every host thread, dpXOR on the chosen cluster.
        """
        return self.engine.answer(query, lane=cluster_index)

    # -- batch path (throughput mode, Fig. 9/11) --------------------------------------------

    def answer_batch(self, queries: Sequence[DPFQuery]) -> IMPIRBatchResult:
        """Answer a batch of queries through the worker/cluster pipeline of Fig. 8.

        Functionally each query is executed on the cluster the scheduler picks;
        the simulated makespan comes from the same scheduler fed with the
        measured per-query stage durations.
        """
        return self.engine.answer_many(queries)

    # -- bulk database updates (paper §3.3) ---------------------------------------------------

    def apply_updates(self, updates: Iterable[Tuple[int, bytes]]) -> PhaseTimer:
        """Apply ``(index, record_bytes)`` updates to the replica in place.

        The paper's update model: DPUs serve queries on a stable snapshot and
        the host applies bulk updates during idle windows, re-copying only the
        affected MRAM blocks.  The returned timer reports the simulated cost
        of those partial re-transfers (phase ``"update_copy"``), which is what
        gets amortised across the idle window.
        """
        updates = list(updates)
        if not updates:
            return PhaseTimer()
        new_database = self.database.with_updates(updates)
        dirty_indices = sorted({index for index, _ in updates})
        timer = self.backend.apply_updates(new_database, dirty_indices)
        self.engine.database = new_database
        return timer

    # -- capacity/diagnostic helpers -------------------------------------------------------

    def mram_utilization(self) -> float:
        """Fraction of the allocated DPUs' MRAM occupied by the database."""
        capacity = self.backend.mram_capacity_bytes
        if capacity == 0:
            return 0.0
        return self.database.size_bytes * self.num_clusters / capacity

    def can_cluster(self, num_clusters: int) -> bool:
        """Whether ``num_clusters`` clusters could each hold the full database."""
        if num_clusters <= 0 or num_clusters > self.config.pim.num_dpus:
            return False
        dpus_per_cluster = self.config.pim.num_dpus // num_clusters
        usable = int(
            self.config.pim.dpu.mram_bytes * (1.0 - self.config.mram_reserve_fraction)
        )
        per_dpu = -(-self.database.size_bytes // dpus_per_cluster)
        return per_dpu <= usable


class IMPIRDeployment:
    """Both replicas of an IM-PIR deployment plus the client, wired together.

    A convenience for examples and integration tests: real deployments place
    the two servers in different trust domains, but the message flow is the
    same.  Batched retrieval goes through a :class:`~repro.pir.frontend.PIRFrontend`,
    which aggregates requests under a batching policy and pairs the replicas'
    answers by explicit request id.
    """

    def __init__(
        self,
        database: Database,
        config: Optional[IMPIRConfig] = None,
        client_seed: Optional[int] = None,
    ) -> None:
        from repro.pir.client import PIRClient  # local import to avoid a cycle
        from repro.pir.frontend import BatchingPolicy, PIRFrontend

        self.database = database
        self.config = config if config is not None else IMPIRConfig()
        self.servers = [
            IMPIRServer(database, config=self.config, server_id=0),
            IMPIRServer(database, config=self.config, server_id=1),
        ]
        self.client = PIRClient(
            num_records=database.num_records,
            record_size=database.record_size,
            num_servers=2,
            scheme="dpf",
            prg=make_prg(self.config.prg_backend),
            seed=client_seed,
        )
        self.frontend = PIRFrontend(
            self.client,
            self.servers,
            policy=BatchingPolicy.from_pipeline(
                num_workers=self.config.effective_eval_workers,
                num_clusters=self.config.num_clusters,
            ),
        )

    def retrieve(self, index: int) -> bytes:
        """Privately retrieve one record through both IM-PIR servers."""
        queries = self.client.query(index)
        answers = [self.servers[q.server_id].answer(q).answer for q in queries]
        return self.client.reconstruct(answers)

    def retrieve_batch(self, indices: Sequence[int]) -> List[bytes]:
        """Retrieve several records through the batching frontend."""
        return self.frontend.retrieve_batch(indices)
