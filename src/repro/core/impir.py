"""The IM-PIR server: PIM-accelerated multi-server PIR (paper §3, Algorithm 1).

One :class:`IMPIRServer` plays the role of a single database replica in the
two-server protocol.  Its responsibilities, following Figure 5:

➋ evaluate the received DPF key over the full database domain on the host CPU
   (AES-NI in the paper; a numpy PRG functionally here, costed as AES blocks);
➌ split the resulting selector shares into per-DPU packed bit vectors and
   copy them to DPU MRAM;
➍ launch the dpXOR kernel, which scans each DPU's preloaded database block
   with two-stage parallel reduction across its tasklets;
➎ gather the per-DPU sub-results back to the host;
➏ XOR-fold them into the server's sub-result, which is returned to the client.

The database itself is preloaded into MRAM once, ahead of query processing,
exactly as in the paper (its transfer time is reported separately and not
charged to queries).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.common.errors import CapacityError, ProtocolError
from repro.common.events import PhaseTimer
from repro.core.config import IMPIRConfig
from repro.core.partitioning import DatabasePartitioner, PartitionLayout, fold_partials, kwargs_for_kernel
from repro.core.results import (
    PHASE_AGGREGATE,
    PHASE_COPY_IN,
    PHASE_COPY_OUT,
    PHASE_DPXOR,
    PHASE_EVAL,
    IMPIRBatchResult,
    IMPIRQueryResult,
)
from repro.core.scheduler import BatchScheduler, QueryTask
from repro.dpf.dpf import DPF
from repro.dpf.prf import make_prg
from repro.pim.cluster import DPUCluster, make_clusters
from repro.pim.kernels import DB_BUFFER, RESULT_BUFFER, SELECTOR_BUFFER, DpXorKernel
from repro.pim.system import UPMEMSystem
from repro.pir.database import Database
from repro.pir.messages import DPFQuery, PIRAnswer


class IMPIRServer:
    """A PIM-accelerated PIR database server."""

    def __init__(
        self,
        database: Database,
        config: Optional[IMPIRConfig] = None,
        server_id: int = 0,
        system: Optional[UPMEMSystem] = None,
    ) -> None:
        if server_id not in (0, 1):
            raise ProtocolError("IM-PIR is a two-server deployment; server_id must be 0 or 1")
        self.database = database
        self.config = config if config is not None else IMPIRConfig()
        self.server_id = server_id
        self.system = system if system is not None else UPMEMSystem(self.config.pim)
        self.timing = self.system.timing
        self._kernel = DpXorKernel()
        self._prg = make_prg(self.config.prg_backend)

        self._dpu_set = self.system.allocate(self.config.pim.num_dpus)
        self._clusters: List[DPUCluster] = make_clusters(self._dpu_set, self.config.num_clusters)
        self._layouts: List[PartitionLayout] = []
        self.preload_report: Optional[PhaseTimer] = None
        self._preload()

    # -- database preloading (not charged to queries) --------------------------------

    def _preload(self) -> None:
        """Partition the database across each cluster's DPUs and load MRAM."""
        partitioner = DatabasePartitioner(self.database)
        timer = PhaseTimer()
        self._layouts = []
        for cluster in self._clusters:
            layout = partitioner.layout(cluster.num_dpus)
            partitioner.check_capacity(
                layout,
                mram_bytes_per_dpu=self.config.pim.dpu.mram_bytes,
                reserve_fraction=self.config.mram_reserve_fraction,
            )
            cluster.dpu_set.load_program(self._kernel.name)
            chunks = partitioner.database_chunks(layout)
            report = cluster.dpu_set.scatter(DB_BUFFER, chunks)
            timer.record("preload_db", report.simulated_seconds)
            cluster.preloaded_records = layout.num_records
            cluster.record_size = layout.record_size
            self._layouts.append(layout)
        self.preload_report = timer

    @property
    def num_clusters(self) -> int:
        """Number of DPU clusters serving queries."""
        return len(self._clusters)

    @property
    def clusters(self) -> List[DPUCluster]:
        """The clusters themselves (read-only use intended)."""
        return self._clusters

    def layout_for_cluster(self, cluster_index: int) -> PartitionLayout:
        """Partition layout used by cluster ``cluster_index``."""
        return self._layouts[cluster_index]

    # -- query validation -------------------------------------------------------------

    def _check_query(self, query: DPFQuery) -> None:
        if not isinstance(query, DPFQuery):
            raise ProtocolError("IM-PIR serves DPF-encoded queries")
        if query.server_id != self.server_id:
            raise ProtocolError(
                f"query addressed to server {query.server_id}, this is server {self.server_id}"
            )
        if query.num_records != self.database.num_records:
            raise ProtocolError(
                "query was generated for a database of "
                f"{query.num_records} records, this server holds {self.database.num_records}"
            )

    # -- host-side DPF evaluation (phase ➋) ----------------------------------------------

    def _evaluate_key(self, query: DPFQuery) -> np.ndarray:
        dpf = DPF(query.key.domain_bits, output_bits=1, prg=self._prg)
        return dpf.eval_full_bits(query.key, num_points=query.num_records)

    def _eval_seconds(self, num_records: int, threads: int) -> float:
        return self.timing.host_dpf_eval_seconds(
            num_records, blocks_per_leaf=self.config.blocks_per_leaf, threads=threads
        )

    # -- DPU pipeline for one query on one cluster (phases ➌–➏) ---------------------------

    def _run_on_cluster(
        self, cluster_index: int, selector_bits: np.ndarray, breakdown: PhaseTimer
    ) -> np.ndarray:
        cluster = self._clusters[cluster_index]
        layout = self._layouts[cluster_index]
        partitioner = DatabasePartitioner(self.database)

        shares = partitioner.selector_chunks(layout, selector_bits)
        copy_in = cluster.dpu_set.scatter(SELECTOR_BUFFER, shares)
        breakdown.record(PHASE_COPY_IN, copy_in.simulated_seconds)

        launch = cluster.dpu_set.launch(
            self._kernel, per_dpu_kwargs=kwargs_for_kernel(layout)
        )
        breakdown.record(PHASE_DPXOR, launch.simulated_seconds)

        partials, copy_out = cluster.dpu_set.gather(RESULT_BUFFER, layout.record_size)
        breakdown.record(PHASE_COPY_OUT, copy_out.simulated_seconds)

        result = fold_partials(partials, layout.record_size)
        breakdown.record(
            PHASE_AGGREGATE,
            self.timing.host_aggregate_xor_seconds(len(partials), layout.record_size),
        )
        return result

    # -- single-query path (latency mode, Fig. 10) ----------------------------------------

    def answer(self, query: DPFQuery, cluster_index: int = 0) -> IMPIRQueryResult:
        """Answer one query, parallelising its evaluation across the whole host.

        This is the paper's latency-mode measurement: one query at a time, DPF
        evaluation spread over every host thread, dpXOR on the chosen cluster.
        """
        self._check_query(query)
        if not 0 <= cluster_index < len(self._clusters):
            raise ProtocolError(f"cluster_index {cluster_index} out of range")

        breakdown = PhaseTimer()
        selector_bits = self._evaluate_key(query)
        breakdown.record(
            PHASE_EVAL,
            self._eval_seconds(query.num_records, threads=self.config.effective_latency_threads),
        )
        payload = self._run_on_cluster(cluster_index, selector_bits, breakdown)
        answer = PIRAnswer(
            query_id=query.query_id,
            server_id=self.server_id,
            payload=payload.tobytes(),
            simulated_seconds=breakdown.total,
        )
        return IMPIRQueryResult(answer=answer, breakdown=breakdown, cluster_id=cluster_index)

    # -- batch path (throughput mode, Fig. 9/11) --------------------------------------------

    def answer_batch(self, queries: Sequence[DPFQuery]) -> IMPIRBatchResult:
        """Answer a batch of queries through the worker/cluster pipeline of Fig. 8.

        Functionally each query is executed on the cluster the scheduler picks;
        the simulated makespan comes from the same scheduler fed with the
        measured per-query stage durations.
        """
        if not queries:
            raise ProtocolError("answer_batch needs at least one query")
        for query in queries:
            self._check_query(query)

        workers = min(self.config.effective_eval_workers, len(queries))
        scheduler = BatchScheduler(num_workers=workers, num_clusters=len(self._clusters))

        # Stage durations: evaluation runs one query per worker thread, the DPU
        # chain serialises per cluster.  Functional execution happens below,
        # per query, on a provisional round-robin cluster; the scheduler then
        # decides the actual overlap from the measured durations.
        results: List[IMPIRQueryResult] = []
        tasks: List[QueryTask] = []
        eval_seconds = self._eval_seconds(self.database.num_records, threads=1)
        for position, query in enumerate(queries):
            cluster_index = position % len(self._clusters)
            breakdown = PhaseTimer()
            selector_bits = self._evaluate_key(query)
            breakdown.record(PHASE_EVAL, eval_seconds)
            payload = self._run_on_cluster(cluster_index, selector_bits, breakdown)
            answer = PIRAnswer(
                query_id=query.query_id,
                server_id=self.server_id,
                payload=payload.tobytes(),
                simulated_seconds=breakdown.total,
            )
            result = IMPIRQueryResult(
                answer=answer, breakdown=breakdown, cluster_id=cluster_index
            )
            results.append(result)
            tasks.append(
                QueryTask(
                    query_id=query.query_id,
                    eval_seconds=breakdown.get(PHASE_EVAL),
                    dpu_seconds=result.dpu_pipeline_seconds + breakdown.get(PHASE_AGGREGATE),
                )
            )

        schedule = scheduler.schedule(tasks)
        return IMPIRBatchResult(results=results, schedule=schedule)

    # -- bulk database updates (paper §3.3) ---------------------------------------------------

    def apply_updates(self, updates) -> PhaseTimer:
        """Apply ``(index, record_bytes)`` updates to the replica in place.

        The paper's update model: DPUs serve queries on a stable snapshot and
        the host applies bulk updates during idle windows, re-copying only the
        affected MRAM blocks.  The returned timer reports the simulated cost
        of those partial re-transfers (phase ``"update_copy"``), which is what
        gets amortised across the idle window.
        """
        updates = list(updates)
        if not updates:
            return PhaseTimer()
        self.database = self.database.with_updates(updates)
        partitioner = DatabasePartitioner(self.database)
        dirty_indices = sorted({index for index, _ in updates})

        timer = PhaseTimer()
        for cluster, layout in zip(self._clusters, self._layouts):
            # Find which DPU blocks contain updated records.
            dirty_dpus = set()
            for index in dirty_indices:
                for dpu_position, (start, stop) in enumerate(layout.bounds):
                    if start <= index < stop:
                        dirty_dpus.add(dpu_position)
                        break
            if not dirty_dpus:
                continue
            dirty_dpus = sorted(dirty_dpus)
            chunks = partitioner.database_chunks(layout)
            affected_dpus = [cluster.dpu_set.dpus[i] for i in dirty_dpus]
            affected_chunks = [chunks[i] for i in dirty_dpus]
            report = cluster.dpu_set.transfer.scatter(affected_dpus, DB_BUFFER, affected_chunks)
            timer.record("update_copy", report.simulated_seconds)
        return timer

    # -- capacity/diagnostic helpers -------------------------------------------------------

    def mram_utilization(self) -> float:
        """Fraction of the allocated DPUs' MRAM occupied by the database."""
        capacity = self._dpu_set.mram_capacity_bytes
        if capacity == 0:
            return 0.0
        return self.database.size_bytes * len(self._clusters) / capacity

    def can_cluster(self, num_clusters: int) -> bool:
        """Whether ``num_clusters`` clusters could each hold the full database."""
        if num_clusters <= 0 or num_clusters > self.config.pim.num_dpus:
            return False
        dpus_per_cluster = self.config.pim.num_dpus // num_clusters
        usable = int(
            self.config.pim.dpu.mram_bytes * (1.0 - self.config.mram_reserve_fraction)
        )
        per_dpu = -(-self.database.size_bytes // dpus_per_cluster)
        return per_dpu <= usable


class IMPIRDeployment:
    """Both replicas of an IM-PIR deployment plus the client, wired together.

    A convenience for examples and integration tests: real deployments place
    the two servers in different trust domains, but the message flow is the
    same.
    """

    def __init__(
        self,
        database: Database,
        config: Optional[IMPIRConfig] = None,
        client_seed: Optional[int] = None,
    ) -> None:
        from repro.pir.client import PIRClient  # local import to avoid a cycle

        self.database = database
        self.config = config if config is not None else IMPIRConfig()
        self.servers = [
            IMPIRServer(database, config=self.config, server_id=0),
            IMPIRServer(database, config=self.config, server_id=1),
        ]
        self.client = PIRClient(
            num_records=database.num_records,
            record_size=database.record_size,
            num_servers=2,
            scheme="dpf",
            prg=make_prg(self.config.prg_backend),
            seed=client_seed,
        )

    def retrieve(self, index: int) -> bytes:
        """Privately retrieve one record through both IM-PIR servers."""
        queries = self.client.query(index)
        answers = [self.servers[q.server_id].answer(q).answer for q in queries]
        return self.client.reconstruct(answers)

    def retrieve_batch(self, indices: Sequence[int]) -> List[bytes]:
        """Retrieve several records, using the batch pipeline on both servers."""
        per_query = [self.client.query(index) for index in indices]
        batches = [[], []]
        for queries in per_query:
            for query in queries:
                batches[query.server_id].append(query)
        batch_results = [
            self.servers[server_id].answer_batch(batches[server_id]) for server_id in (0, 1)
        ]
        answers_by_query = {}
        for batch in batch_results:
            for answer in batch.answers:
                answers_by_query.setdefault(answer.query_id, []).append(answer)
        records = []
        for queries in per_query:
            group = sorted(answers_by_query[queries[0].query_id], key=lambda a: a.server_id)
            records.append(self.client.reconstruct(group))
        return records
