"""Batch-query scheduler (paper §3.4, Fig. 8).

The server handles a batch of queries with a two-stage pipeline:

1. **Host workers** — ``W`` CPU threads pop keys from the incoming batch and
   perform the per-key full-domain DPF evaluation, pushing the resulting
   selector share onto a task queue.
2. **DPU clusters** — ``C`` clusters pop tasks from the queue; a cluster
   processes one query at a time (CPU->DPU share copy, kernel launch, dpXOR,
   result gather), so queries' dpXOR phases serialise within a cluster and
   overlap across clusters.

The scheduler is a small list-scheduling simulation over per-query durations.
It is deliberately independent of the functional execution: the IM-PIR server
feeds it durations measured from real (small) runs, the analytic estimators
feed it durations computed at paper scale — both get the same pipeline
semantics, including fill/drain effects that closed-form max() bounds miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.common.errors import SchedulingError


@dataclass(frozen=True)
class QueryTask:
    """Durations of one query's two pipeline stages."""

    query_id: int
    eval_seconds: float
    dpu_seconds: float

    def __post_init__(self) -> None:
        if self.eval_seconds < 0 or self.dpu_seconds < 0:
            raise SchedulingError("stage durations must be non-negative")


@dataclass
class ScheduledQuery:
    """Timeline of one query as placed by the scheduler."""

    query_id: int
    worker_id: int
    cluster_id: int
    eval_start: float
    eval_end: float
    dpu_start: float
    dpu_end: float

    @property
    def latency(self) -> float:
        """Time from the query entering the pipeline until its sub-result is ready."""
        return self.dpu_end - self.eval_start

    @property
    def queueing_delay(self) -> float:
        """Time the evaluated share waited in the task queue for a free cluster."""
        return self.dpu_start - self.eval_end


@dataclass
class BatchSchedule:
    """Complete schedule of a batch: per-query timelines plus summary metrics."""

    queries: List[ScheduledQuery] = field(default_factory=list)
    num_workers: int = 0
    num_clusters: int = 0

    @property
    def makespan(self) -> float:
        """Completion time of the last query (the batch latency)."""
        return max((q.dpu_end for q in self.queries), default=0.0)

    @property
    def throughput_qps(self) -> float:
        """Queries per (simulated) second over the whole batch."""
        span = self.makespan
        return len(self.queries) / span if span > 0 else float("inf")

    @property
    def mean_latency(self) -> float:
        """Mean per-query latency including queueing."""
        if not self.queries:
            return 0.0
        return sum(q.latency for q in self.queries) / len(self.queries)

    @property
    def worker_busy_seconds(self) -> float:
        """Total host-worker busy time (evaluation work)."""
        return sum(q.eval_end - q.eval_start for q in self.queries)

    @property
    def cluster_busy_seconds(self) -> float:
        """Total DPU-cluster busy time (dpXOR pipelines)."""
        return sum(q.dpu_end - q.dpu_start for q in self.queries)

    def cluster_utilization(self) -> float:
        """Fraction of cluster-seconds actually used during the makespan."""
        span = self.makespan
        if span <= 0 or self.num_clusters == 0:
            return 0.0
        return self.cluster_busy_seconds / (span * self.num_clusters)


class BatchScheduler:
    """List scheduler for the worker-queue-cluster pipeline of Fig. 8."""

    def __init__(self, num_workers: int, num_clusters: int) -> None:
        if num_workers <= 0:
            raise SchedulingError("num_workers must be positive")
        if num_clusters <= 0:
            raise SchedulingError("num_clusters must be positive")
        self.num_workers = num_workers
        self.num_clusters = num_clusters

    def schedule(self, tasks: Sequence[QueryTask]) -> BatchSchedule:
        """Place ``tasks`` on workers and clusters, earliest-available first.

        Queries are admitted in order (the paper's task queue is FIFO); each
        stage picks the resource that frees up soonest.  Ties are broken by
        resource index so the schedule is deterministic.
        """
        if not tasks:
            return BatchSchedule(num_workers=self.num_workers, num_clusters=self.num_clusters)

        worker_free = [0.0] * self.num_workers
        cluster_free = [0.0] * self.num_clusters
        scheduled: List[ScheduledQuery] = []

        for task in tasks:
            worker_id = min(range(self.num_workers), key=lambda w: (worker_free[w], w))
            eval_start = worker_free[worker_id]
            eval_end = eval_start + task.eval_seconds
            worker_free[worker_id] = eval_end

            cluster_id = min(range(self.num_clusters), key=lambda c: (cluster_free[c], c))
            dpu_start = max(eval_end, cluster_free[cluster_id])
            dpu_end = dpu_start + task.dpu_seconds
            cluster_free[cluster_id] = dpu_end

            scheduled.append(
                ScheduledQuery(
                    query_id=task.query_id,
                    worker_id=worker_id,
                    cluster_id=cluster_id,
                    eval_start=eval_start,
                    eval_end=eval_end,
                    dpu_start=dpu_start,
                    dpu_end=dpu_end,
                )
            )
        return BatchSchedule(
            queries=scheduled,
            num_workers=self.num_workers,
            num_clusters=self.num_clusters,
        )

    def schedule_uniform(
        self, batch_size: int, eval_seconds: float, dpu_seconds: float
    ) -> BatchSchedule:
        """Schedule ``batch_size`` identical queries (the common benchmark case)."""
        if batch_size <= 0:
            raise SchedulingError("batch_size must be positive")
        tasks = [
            QueryTask(query_id=i, eval_seconds=eval_seconds, dpu_seconds=dpu_seconds)
            for i in range(batch_size)
        ]
        return self.schedule(tasks)
