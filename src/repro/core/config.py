"""IM-PIR deployment configuration.

Ties together the PIM platform description, the clustering strategy and the
host-side evaluation parameters.  The defaults reproduce the paper's standard
setup: 2,048 DPUs with 16 tasklets each, a single DPU cluster, and host-side
DPF evaluation with batched AES-NI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.pim.config import PIMConfig

#: Amortised AES-block cost per evaluated GGM leaf.  IM-PIR's host evaluation
#: (like Google's DPF library and Lam et al.) derives both children of a node
#: from a single fixed-key AES invocation (Matyas-Meyer-Oseas with the
#: seed-doubling trick), so a full-domain evaluation costs about one AES block
#: per leaf rather than two.
DEFAULT_BLOCKS_PER_LEAF = 1.0


@dataclass(frozen=True)
class IMPIRConfig:
    """Configuration of one IM-PIR database server."""

    pim: PIMConfig = field(default_factory=PIMConfig)
    #: DPU clusters (Fig. 8): 1 means every query uses all DPUs sequentially;
    #: ``C > 1`` runs up to ``C`` queries' dpXOR phases concurrently, provided
    #: each cluster's MRAM can hold the full database.
    num_clusters: int = 1
    #: Host worker threads performing per-query DPF evaluations in batch mode
    #: (defaults to every hardware thread of the PIM server's host CPU).
    eval_workers: Optional[int] = None
    #: Host threads cooperating on a single query's evaluation in latency mode
    #: (defaults to every hardware thread).
    latency_eval_threads: Optional[int] = None
    #: PRG backend used for the functional DPF evaluation ("numpy" or "aes").
    prg_backend: str = "numpy"
    #: Amortised AES blocks charged per evaluated leaf by the cost model.
    blocks_per_leaf: float = DEFAULT_BLOCKS_PER_LEAF
    #: Fraction of each DPU's MRAM kept free for selector/result buffers.
    mram_reserve_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.num_clusters <= 0:
            raise ConfigurationError("num_clusters must be positive")
        if self.num_clusters > self.pim.num_dpus:
            raise ConfigurationError(
                f"cannot form {self.num_clusters} clusters from {self.pim.num_dpus} DPUs"
            )
        if self.eval_workers is not None and self.eval_workers <= 0:
            raise ConfigurationError("eval_workers must be positive")
        if self.latency_eval_threads is not None and self.latency_eval_threads <= 0:
            raise ConfigurationError("latency_eval_threads must be positive")
        if self.blocks_per_leaf <= 0:
            raise ConfigurationError("blocks_per_leaf must be positive")
        if not 0.0 <= self.mram_reserve_fraction < 1.0:
            raise ConfigurationError("mram_reserve_fraction must be in [0, 1)")

    @property
    def effective_eval_workers(self) -> int:
        """Worker threads used for batch-mode DPF evaluation."""
        if self.eval_workers is not None:
            return self.eval_workers
        return self.pim.host.total_threads

    @property
    def effective_latency_threads(self) -> int:
        """Threads cooperating on a single query's evaluation in latency mode."""
        if self.latency_eval_threads is not None:
            return self.latency_eval_threads
        return self.pim.host.total_threads

    @property
    def dpus_per_cluster(self) -> int:
        """DPUs assigned to each cluster."""
        return self.pim.num_dpus // self.num_clusters

    def with_clusters(self, num_clusters: int) -> "IMPIRConfig":
        """A copy of this configuration with a different cluster count."""
        return IMPIRConfig(
            pim=self.pim,
            num_clusters=num_clusters,
            eval_workers=self.eval_workers,
            latency_eval_threads=self.latency_eval_threads,
            prg_backend=self.prg_backend,
            blocks_per_leaf=self.blocks_per_leaf,
            mram_reserve_fraction=self.mram_reserve_fraction,
        )

    def with_pim(self, pim: PIMConfig) -> "IMPIRConfig":
        """A copy of this configuration on a different PIM platform."""
        return IMPIRConfig(
            pim=pim,
            num_clusters=self.num_clusters,
            eval_workers=self.eval_workers,
            latency_eval_threads=self.latency_eval_threads,
            prg_backend=self.prg_backend,
            blocks_per_leaf=self.blocks_per_leaf,
            mram_reserve_fraction=self.mram_reserve_fraction,
        )
