"""Streamed (multi-pass) query evaluation for databases larger than MRAM.

The paper's default deployment preloads the whole database into DPU MRAM and
answers every query in one pass.  §3.3 notes that larger datasets "may require
a minor adaptation of our one-shot database evaluation: for example, by
evaluating the linear operations on database items in batches, copying
unprocessed chunks into DPUs in each batch".  This module implements that
adaptation as :class:`StreamedPIMBackend` behind the shared
:class:`~repro.core.engine.QueryEngine`:

* the database is divided into *segments*, each small enough for the DPU
  population's usable MRAM;
* for every query, the backend walks the segments: copy the segment into MRAM,
  copy the matching selector slice, run the dpXOR kernel, fold the partial
  results — then move on to the next segment;
* the per-query cost therefore includes the database transfer (unlike the
  preloaded path), which is exactly the penalty the paper's capacity
  discussion anticipates.

The streamed server answers queries bit-identically to the preloaded one; the
extra cost is visible in the ``copy_db_segment`` phase of its breakdown.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.common.errors import CapacityError, ProtocolError
from repro.common.events import PhaseTimer
from repro.core.config import IMPIRConfig
from repro.core.engine import BackendCapabilities, PIRBackend, QueryEngine
from repro.core.partitioning import (
    DatabasePartitioner,
    PartitionLayout,
    fold_partials,
    reset_pipeline_buffers,
    run_dpu_pipeline,
    run_dpu_pipeline_many,
)
from repro.core.results import PHASE_AGGREGATE, IMPIRQueryResult
from repro.dpf.prf import make_prg
from repro.pim.kernels import DpXorKernel, DpXorManyKernel
from repro.pim.system import UPMEMSystem
from repro.pir.database import Database
from repro.pir.messages import DPFQuery

#: Phase name for the per-query database-segment transfers (streamed mode only).
PHASE_COPY_DB = "copy_db_segment"


@dataclass(frozen=True)
class _Segment:
    """One precomputed pass over the database: its layout and MRAM chunks.

    Built once at prepare time so the per-query path re-partitions nothing —
    the chunks are read-only views into the backing array, not copies.
    """

    start: int
    stop: int
    partitioner: DatabasePartitioner
    layout: PartitionLayout
    db_chunks: List[np.ndarray]


class StreamedPIMBackend(PIRBackend):
    """Execution backend streaming database segments through the DPUs."""

    def __init__(
        self,
        config: IMPIRConfig,
        system: UPMEMSystem,
        segment_records: Optional[int] = None,
    ) -> None:
        self.config = config
        self.system = system
        self.timing = system.timing
        self._kernel = DpXorKernel()
        self._batch_kernel = DpXorManyKernel()
        self._dpu_set = system.allocate(config.pim.num_dpus)
        self._dpu_set.load_program(self._kernel.name)
        self._requested_segment_records = segment_records
        self.segment_records = 0
        self._segments: List[_Segment] = []
        self.database: Optional[Database] = None

    # -- database lifecycle ---------------------------------------------------------

    def prepare(self, database: Database) -> Optional[PhaseTimer]:
        """Size the segments and precompute each pass's layout and chunks.

        Nothing is preloaded: segments are (re-)copied per query, which is the
        whole point of the streamed mode's cost profile.
        """
        self.database = database
        usable_per_dpu = int(
            self.config.pim.dpu.mram_bytes * (1.0 - self.config.mram_reserve_fraction)
        )
        usable_total = usable_per_dpu * self._dpu_set.num_dpus
        default_segment = max(1, usable_total // database.record_size)
        self.segment_records = (
            self._requested_segment_records
            if self._requested_segment_records is not None
            else default_segment
        )
        if self.segment_records <= 0:
            raise CapacityError("segment_records must be positive")
        per_dpu_bytes = (
            -(-self.segment_records // self._dpu_set.num_dpus) * database.record_size
        )
        if per_dpu_bytes > usable_per_dpu:
            raise CapacityError(
                f"a segment of {self.segment_records} records needs {per_dpu_bytes} bytes per DPU, "
                f"but only {usable_per_dpu} are usable"
            )

        reset_pipeline_buffers(self._dpu_set)
        self._segments = []
        for start in range(0, database.num_records, self.segment_records):
            stop = min(start + self.segment_records, database.num_records)
            segment_db = Database(database.chunk(start, stop))
            partitioner = DatabasePartitioner(segment_db)
            layout = partitioner.layout(self._dpu_set.num_dpus)
            self._segments.append(
                _Segment(
                    start=start,
                    stop=stop,
                    partitioner=partitioner,
                    layout=layout,
                    db_chunks=partitioner.database_chunks(layout),
                )
            )
        return None

    @property
    def num_segments(self) -> int:
        """Passes needed to cover the whole database."""
        return len(self._segments)

    # -- capability metadata ----------------------------------------------------------

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="im-pir-streamed",
            lanes=1,
            batch_workers=1,
            supports_naive=False,
            preloaded=False,
            max_records=None,
            description="dpXOR over per-query streamed database segments",
        )

    # -- timing hooks ------------------------------------------------------------------

    def latency_eval_seconds(self, num_records: int) -> float:
        return self.timing.host_dpf_eval_seconds(
            num_records,
            blocks_per_leaf=self.config.blocks_per_leaf,
            threads=self.config.effective_latency_threads,
        )

    def batch_eval_seconds(self, num_records: int) -> float:
        # Streamed batches run queries sequentially on the whole host, so
        # batch mode evaluates exactly like latency mode.
        return self.latency_eval_seconds(num_records)

    # -- the multi-pass dpXOR ----------------------------------------------------------

    def execute(
        self, selector_bits: np.ndarray, breakdown: PhaseTimer, lane: int = 0
    ) -> np.ndarray:
        accumulator = np.zeros(self.database.record_size, dtype=np.uint8)
        for segment in self._segments:
            shares = segment.partitioner.selector_chunks(
                segment.layout, selector_bits[segment.start : segment.stop]
            )
            partials = run_dpu_pipeline(
                self._dpu_set,
                self._kernel,
                segment.layout,
                shares,
                breakdown,
                db_chunks=segment.db_chunks,
                db_copy_phase=PHASE_COPY_DB,
            )
            accumulator ^= fold_partials(partials, segment.layout.record_size)
        breakdown.record(
            PHASE_AGGREGATE,
            self.timing.host_aggregate_xor_seconds(
                self.num_segments, self.database.record_size
            ),
        )
        return accumulator

    def execute_many(
        self,
        selector_bits_matrix: np.ndarray,
        breakdowns: Sequence[PhaseTimer],
        lanes: Sequence[int],
    ) -> np.ndarray:
        """One batched DPU dispatch per segment serves the whole batch.

        §3.3's batched adaptation taken to the kernel level: each database
        segment is copied toward the DPUs **once per batch** (instead of once
        per query), every row's selector slice for the segment ships in one
        scatter, and one launch of the batched dpXOR runs the batch loop
        inside the DPUs.  Answer bytes are bit-identical to the sequential
        walk; the simulated per-query cost drops by the amortised
        per-dispatch charges — above all the segment copy, the dominant
        charge of the streamed mode, now split evenly across the batch (see
        :func:`~repro.core.partitioning.run_dpu_pipeline_many` for the
        documented cost model).
        """
        selector_bits_matrix = np.asarray(selector_bits_matrix, dtype=np.uint8)
        batch = selector_bits_matrix.shape[0]
        accumulators = np.zeros(
            (batch, self.database.record_size), dtype=np.uint8
        )
        for segment in self._segments:
            chunks = segment.partitioner.selector_chunks_many(
                segment.layout,
                selector_bits_matrix[:, segment.start : segment.stop],
            )
            partials = run_dpu_pipeline_many(
                self._dpu_set,
                self._batch_kernel,
                segment.layout,
                chunks,
                breakdowns,
                db_chunks=segment.db_chunks,
                db_copy_phase=PHASE_COPY_DB,
            )
            accumulators ^= np.bitwise_xor.reduce(np.stack(partials), axis=0)
        aggregate_seconds = self.timing.host_aggregate_xor_seconds(
            self.num_segments, self.database.record_size
        )
        for breakdown in breakdowns:
            breakdown.record(PHASE_AGGREGATE, aggregate_seconds)
        return accumulators


class StreamedIMPIRServer:
    """IM-PIR server answering queries over a database that exceeds MRAM.

    ``segment_records`` controls how many records each pass processes; by
    default it is sized so a segment fills the usable fraction of the DPU
    population's MRAM.
    """

    def __init__(
        self,
        database: Database,
        config: Optional[IMPIRConfig] = None,
        server_id: int = 0,
        segment_records: Optional[int] = None,
        system: Optional[UPMEMSystem] = None,
    ) -> None:
        if server_id not in (0, 1):
            raise ProtocolError("IM-PIR is a two-server deployment; server_id must be 0 or 1")
        self.config = config if config is not None else IMPIRConfig()
        self.server_id = server_id
        self.system = system if system is not None else UPMEMSystem(self.config.pim)
        self.timing = self.system.timing
        self.backend = StreamedPIMBackend(
            self.config, self.system, segment_records=segment_records
        )
        self.engine = QueryEngine(
            self.backend, server_id=server_id, prg=make_prg(self.config.prg_backend)
        )
        self.engine.prepare(database)

    @property
    def database(self) -> Database:
        """The database this replica streams through its DPUs."""
        return self.engine.database

    @property
    def segment_records(self) -> int:
        """Records processed per streaming pass."""
        return self.backend.segment_records

    @property
    def num_segments(self) -> int:
        """Passes needed to cover the whole database."""
        return math.ceil(self.database.num_records / self.segment_records)

    def answer(self, query: DPFQuery) -> IMPIRQueryResult:
        """Answer one query in ``num_segments`` passes over the database."""
        return self.engine.answer(query)

    def answer_batch(self, queries: Sequence[DPFQuery]) -> List[IMPIRQueryResult]:
        """Answer a batch sequentially (streamed mode has no cluster pipeline)."""
        return self.engine.answer_many(queries).results


def streaming_overhead_factor(result: IMPIRQueryResult) -> float:
    """Share of a streamed query's latency spent re-copying the database.

    The quantity that quantifies the paper's preference for preloading: for
    MRAM-resident deployments this is 0, for streamed ones it typically
    dominates.
    """
    total = result.breakdown.total
    if total <= 0:
        return 0.0
    return result.breakdown.get(PHASE_COPY_DB) / total
