"""Streamed (multi-pass) query evaluation for databases larger than MRAM.

The paper's default deployment preloads the whole database into DPU MRAM and
answers every query in one pass.  §3.3 notes that larger datasets "may require
a minor adaptation of our one-shot database evaluation: for example, by
evaluating the linear operations on database items in batches, copying
unprocessed chunks into DPUs in each batch".  This module implements that
adaptation:

* the database is divided into *segments*, each small enough for the DPU
  population's usable MRAM;
* for every query, the server walks the segments: copy the segment into MRAM,
  copy the matching selector slice, run the dpXOR kernel, fold the partial
  results — then move on to the next segment;
* the per-query cost therefore includes the database transfer (unlike the
  preloaded path), which is exactly the penalty the paper's capacity
  discussion anticipates.

The streamed server answers queries bit-identically to the preloaded one; the
extra cost is visible in the ``copy_db_segment`` phase of its breakdown.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.common.errors import CapacityError, ProtocolError
from repro.common.events import PhaseTimer
from repro.core.config import IMPIRConfig
from repro.core.partitioning import DatabasePartitioner, fold_partials, kwargs_for_kernel
from repro.core.results import (
    PHASE_AGGREGATE,
    PHASE_COPY_IN,
    PHASE_COPY_OUT,
    PHASE_DPXOR,
    PHASE_EVAL,
    IMPIRQueryResult,
)
from repro.dpf.dpf import DPF
from repro.dpf.prf import make_prg
from repro.pim.kernels import DB_BUFFER, RESULT_BUFFER, SELECTOR_BUFFER, DpXorKernel
from repro.pim.system import UPMEMSystem
from repro.pir.database import Database
from repro.pir.messages import DPFQuery, PIRAnswer

#: Phase name for the per-query database-segment transfers (streamed mode only).
PHASE_COPY_DB = "copy_db_segment"


class StreamedIMPIRServer:
    """IM-PIR server answering queries over a database that exceeds MRAM.

    ``segment_records`` controls how many records each pass processes; by
    default it is sized so a segment fills the usable fraction of the DPU
    population's MRAM.
    """

    def __init__(
        self,
        database: Database,
        config: Optional[IMPIRConfig] = None,
        server_id: int = 0,
        segment_records: Optional[int] = None,
        system: Optional[UPMEMSystem] = None,
    ) -> None:
        if server_id not in (0, 1):
            raise ProtocolError("IM-PIR is a two-server deployment; server_id must be 0 or 1")
        self.database = database
        self.config = config if config is not None else IMPIRConfig()
        self.server_id = server_id
        self.system = system if system is not None else UPMEMSystem(self.config.pim)
        self.timing = self.system.timing
        self._kernel = DpXorKernel()
        self._prg = make_prg(self.config.prg_backend)
        self._dpu_set = self.system.allocate(self.config.pim.num_dpus)
        self._dpu_set.load_program(self._kernel.name)

        usable_per_dpu = int(
            self.config.pim.dpu.mram_bytes * (1.0 - self.config.mram_reserve_fraction)
        )
        usable_total = usable_per_dpu * self._dpu_set.num_dpus
        default_segment = max(1, usable_total // database.record_size)
        self.segment_records = segment_records if segment_records is not None else default_segment
        if self.segment_records <= 0:
            raise CapacityError("segment_records must be positive")
        per_dpu_bytes = (
            -(-self.segment_records // self._dpu_set.num_dpus) * database.record_size
        )
        if per_dpu_bytes > usable_per_dpu:
            raise CapacityError(
                f"a segment of {self.segment_records} records needs {per_dpu_bytes} bytes per DPU, "
                f"but only {usable_per_dpu} are usable"
            )

    @property
    def num_segments(self) -> int:
        """Passes needed to cover the whole database."""
        return math.ceil(self.database.num_records / self.segment_records)

    def _check_query(self, query: DPFQuery) -> None:
        if not isinstance(query, DPFQuery):
            raise ProtocolError("IM-PIR serves DPF-encoded queries")
        if query.server_id != self.server_id:
            raise ProtocolError(
                f"query addressed to server {query.server_id}, this is server {self.server_id}"
            )
        if query.num_records != self.database.num_records:
            raise ProtocolError("query was generated for a database of a different size")

    def answer(self, query: DPFQuery) -> IMPIRQueryResult:
        """Answer one query in ``num_segments`` passes over the database."""
        self._check_query(query)
        breakdown = PhaseTimer()

        dpf = DPF(query.key.domain_bits, output_bits=1, prg=self._prg)
        selector_bits = dpf.eval_full_bits(query.key, num_points=query.num_records)
        breakdown.record(
            PHASE_EVAL,
            self.timing.host_dpf_eval_seconds(
                query.num_records,
                blocks_per_leaf=self.config.blocks_per_leaf,
                threads=self.config.effective_latency_threads,
            ),
        )

        accumulator = np.zeros(self.database.record_size, dtype=np.uint8)
        for segment_start in range(0, self.database.num_records, self.segment_records):
            segment_stop = min(segment_start + self.segment_records, self.database.num_records)
            accumulator ^= self._run_segment(
                segment_start, segment_stop, selector_bits, breakdown
            )

        breakdown.record(
            PHASE_AGGREGATE,
            self.timing.host_aggregate_xor_seconds(self.num_segments, self.database.record_size),
        )
        answer = PIRAnswer(
            query_id=query.query_id,
            server_id=self.server_id,
            payload=accumulator.tobytes(),
            simulated_seconds=breakdown.total,
        )
        return IMPIRQueryResult(answer=answer, breakdown=breakdown, cluster_id=0)

    def _run_segment(
        self,
        start: int,
        stop: int,
        selector_bits: np.ndarray,
        breakdown: PhaseTimer,
    ) -> np.ndarray:
        segment = Database(self.database.chunk(start, stop).copy())
        partitioner = DatabasePartitioner(segment)
        layout = partitioner.layout(self._dpu_set.num_dpus)

        db_report = self._dpu_set.scatter(DB_BUFFER, partitioner.database_chunks(layout))
        breakdown.record(PHASE_COPY_DB, db_report.simulated_seconds)

        shares = partitioner.selector_chunks(layout, selector_bits[start:stop])
        share_report = self._dpu_set.scatter(SELECTOR_BUFFER, shares)
        breakdown.record(PHASE_COPY_IN, share_report.simulated_seconds)

        launch = self._dpu_set.launch(self._kernel, per_dpu_kwargs=kwargs_for_kernel(layout))
        breakdown.record(PHASE_DPXOR, launch.simulated_seconds)

        partials, gather_report = self._dpu_set.gather(RESULT_BUFFER, layout.record_size)
        breakdown.record(PHASE_COPY_OUT, gather_report.simulated_seconds)
        return fold_partials(partials, layout.record_size)

    def answer_batch(self, queries: List[DPFQuery]) -> List[IMPIRQueryResult]:
        """Answer a batch sequentially (streamed mode has no cluster pipeline)."""
        if not queries:
            raise ProtocolError("answer_batch needs at least one query")
        return [self.answer(query) for query in queries]


def streaming_overhead_factor(result: IMPIRQueryResult) -> float:
    """Share of a streamed query's latency spent re-copying the database.

    The quantity that quantifies the paper's preference for preloading: for
    MRAM-resident deployments this is 0, for streamed ones it typically
    dominates.
    """
    total = result.breakdown.total
    if total <= 0:
        return 0.0
    return result.breakdown.get(PHASE_COPY_DB) / total
