"""Database and selector-share partitioning across DPUs (paper §3.3).

The database is laid out linearly: DPU ``i`` of a cluster receives the
contiguous block ``[i * B_d, (i+1) * B_d)`` of records, with
``B_d = ceil(N / P)``.  The DPF evaluation results (selector bits) are split
the same way and shipped as packed bit vectors, which is what keeps the
per-query CPU->DPU traffic to ``N/8`` bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import CapacityError, ConfigurationError
from repro.pim.kernels import DB_BUFFER, RESULT_BUFFER, SELECTOR_BUFFER
from repro.pir.database import Database


@dataclass(frozen=True)
class PartitionLayout:
    """Record-range assignment of a database across the DPUs of one cluster."""

    num_records: int
    record_size: int
    bounds: Tuple[Tuple[int, int], ...]

    @property
    def num_dpus(self) -> int:
        """DPUs covered by this layout."""
        return len(self.bounds)

    @property
    def max_records_per_dpu(self) -> int:
        """Largest per-DPU block (the paper's ``B_d``)."""
        return max((stop - start for start, stop in self.bounds), default=0)

    def records_on_dpu(self, dpu_index: int) -> int:
        """Number of records held by DPU ``dpu_index``."""
        start, stop = self.bounds[dpu_index]
        return stop - start

    def bytes_on_dpu(self, dpu_index: int) -> int:
        """Database bytes held by DPU ``dpu_index``."""
        return self.records_on_dpu(dpu_index) * self.record_size

    def validate_coverage(self) -> bool:
        """Check the blocks tile ``[0, num_records)`` exactly once, in order."""
        cursor = 0
        for start, stop in self.bounds:
            if start != cursor or stop < start:
                return False
            cursor = stop
        return cursor == self.num_records


class DatabasePartitioner:
    """Builds partition layouts and the per-DPU buffers they imply."""

    def __init__(self, database: Database) -> None:
        self.database = database

    def layout(self, num_dpus: int) -> PartitionLayout:
        """Linear layout of the database across ``num_dpus`` DPUs."""
        if num_dpus <= 0:
            raise ConfigurationError("num_dpus must be positive")
        bounds = tuple(self.database.chunk_bounds(num_dpus))
        return PartitionLayout(
            num_records=self.database.num_records,
            record_size=self.database.record_size,
            bounds=bounds,
        )

    def check_capacity(
        self, layout: PartitionLayout, mram_bytes_per_dpu: int, reserve_fraction: float = 0.25
    ) -> None:
        """Raise :class:`CapacityError` if any DPU block overflows usable MRAM."""
        usable = int(mram_bytes_per_dpu * (1.0 - reserve_fraction))
        worst = layout.max_records_per_dpu * layout.record_size
        if worst > usable:
            raise CapacityError(
                f"database block of {worst} bytes exceeds usable MRAM "
                f"({usable} of {mram_bytes_per_dpu} bytes per DPU)"
            )

    def database_chunks(self, layout: PartitionLayout) -> List[np.ndarray]:
        """Flattened per-DPU database blocks, in layout order.

        A DPU with no records (more DPUs than records) still receives a
        one-byte placeholder, mirroring :meth:`selector_chunks` — MRAM
        buffers must be non-empty, and the kernel skips the scan when its
        ``num_records`` argument is zero.
        """
        chunks = []
        for start, stop in layout.bounds:
            if start == stop:
                chunks.append(np.zeros(1, dtype=np.uint8))
            else:
                chunks.append(np.ascontiguousarray(self.database.chunk(start, stop)).reshape(-1))
        return chunks

    @staticmethod
    def selector_chunks(layout: PartitionLayout, selector_bits: np.ndarray) -> List[np.ndarray]:
        """Per-DPU packed selector-share buffers, in layout order.

        ``selector_bits`` is the full-domain DPF evaluation (0/1 per record);
        each DPU receives the packed bits covering its record range.
        """
        selector_bits = np.asarray(selector_bits, dtype=np.uint8)
        if selector_bits.shape != (layout.num_records,):
            raise ConfigurationError(
                f"selector length {selector_bits.shape} does not match layout "
                f"({layout.num_records} records)"
            )
        chunks = []
        for start, stop in layout.bounds:
            bits = selector_bits[start:stop]
            if bits.size == 0:
                chunks.append(np.zeros(1, dtype=np.uint8))
            else:
                chunks.append(np.packbits(bits, bitorder="big"))
        return chunks

    @staticmethod
    def selector_chunks_many(
        layout: PartitionLayout, selector_matrix: np.ndarray
    ) -> List[np.ndarray]:
        """Per-DPU packed selector buffers for a whole batch, in layout order.

        The batched counterpart of :meth:`selector_chunks`:
        ``selector_matrix`` is ``(B, num_records)`` of 0/1 values and each
        DPU receives ``B`` packed slices back to back — row ``b`` of a DPU's
        ``(B, slice_bytes)`` buffer is exactly the buffer
        :meth:`selector_chunks` would ship it for query ``b``.  Empty DPUs
        keep the one-byte placeholder.
        """
        selector_matrix = np.asarray(selector_matrix, dtype=np.uint8)
        if selector_matrix.ndim != 2 or selector_matrix.shape[1] != layout.num_records:
            raise ConfigurationError(
                f"selector matrix shape {selector_matrix.shape} does not match layout "
                f"(expected (batch, {layout.num_records}))"
            )
        chunks = []
        for start, stop in layout.bounds:
            bits = selector_matrix[:, start:stop]
            if bits.shape[1] == 0:
                chunks.append(np.zeros(1, dtype=np.uint8))
            else:
                chunks.append(np.packbits(bits, axis=1, bitorder="big"))
        return chunks

    @staticmethod
    def packed_selector_bytes(layout: PartitionLayout) -> int:
        """Total bytes shipped to the DPUs for one query's selector shares."""
        total = 0
        for start, stop in layout.bounds:
            records = stop - start
            total += (records + 7) // 8 if records else 1
        return total


def aligned_chunk_bounds(
    num_records: int, num_chunks: int, block_records: int = 1
) -> List[Tuple[int, int]]:
    """Split ``[0, num_records)`` into contiguous ranges on block boundaries.

    Like :meth:`Database.chunk_bounds`, but every internal boundary is a
    multiple of ``block_records`` (the final chunk absorbs the tail).  The
    shard layer uses this so a shard handed to a PIM/DPU backend keeps the
    partitioning invariants its own per-DPU layout assumes — a shard never
    starts or ends mid-block.  Chunks beyond the block count are empty
    ``(stop, stop)`` ranges, mirroring the unaligned rule.
    """
    if num_chunks <= 0:
        raise ConfigurationError("num_chunks must be positive")
    if block_records <= 0:
        raise ConfigurationError("block_records must be positive")
    num_blocks = -(-num_records // block_records)
    base = num_blocks // num_chunks
    remainder = num_blocks % num_chunks
    bounds: List[Tuple[int, int]] = []
    start = 0
    for chunk_index in range(num_chunks):
        blocks = base + (1 if chunk_index < remainder else 0)
        stop = min(num_records, start + blocks * block_records)
        bounds.append((start, stop))
        start = stop
    return bounds


def kwargs_for_kernel(layout: PartitionLayout) -> List[dict]:
    """Per-DPU keyword arguments for :class:`~repro.pim.kernels.DpXorKernel`."""
    return [
        {"num_records": stop - start, "record_size": layout.record_size}
        for start, stop in layout.bounds
    ]


def kwargs_for_kernel_many(layout: PartitionLayout, batch: int) -> List[dict]:
    """Per-DPU keyword arguments for :class:`~repro.pim.kernels.DpXorManyKernel`."""
    return [
        {"num_records": stop - start, "record_size": layout.record_size, "batch": batch}
        for start, stop in layout.bounds
    ]


def reset_pipeline_buffers(dpu_set) -> None:
    """Free the pipeline's MRAM buffers so a re-prepare can re-size them.

    Buffer sizes depend on the database shape; a second ``prepare`` with a
    different shape must not write into last generation's allocations.
    """
    for dpu in dpu_set.dpus:
        for name in (DB_BUFFER, SELECTOR_BUFFER, RESULT_BUFFER):
            if dpu.mram.has_buffer(name):
                dpu.mram.free(name)


def _pipeline_phases() -> Tuple[str, str, str]:
    """The copy-in / dpXOR / copy-out phase names, imported lazily.

    ``repro.core.results`` cannot be imported at module scope here:
    ``repro.core.__init__`` imports this module first.
    """
    from repro.core.results import PHASE_COPY_IN, PHASE_COPY_OUT, PHASE_DPXOR

    return PHASE_COPY_IN, PHASE_COPY_OUT, PHASE_DPXOR


def run_dpu_pipeline(
    dpu_set,
    kernel,
    layout: PartitionLayout,
    selector_chunks: Sequence[np.ndarray],
    breakdown,
    *,
    db_chunks: Optional[Sequence[np.ndarray]] = None,
    db_copy_phase: Optional[str] = None,
) -> List[np.ndarray]:
    """Phases 3-5 of Algorithm 1 on one DPU set: copy in, dpXOR, copy out.

    The single parameterised pipeline behind both the preloaded per-cluster
    path and the streamed per-segment path: pass ``db_chunks`` (with a
    ``db_copy_phase`` name) to also stream the database blocks in, as the
    oversized-database mode must on every pass.  Phase costs are recorded
    into ``breakdown``; the per-DPU partial results are returned for the
    caller to fold (phase 6 is charged by the caller, whose aggregation
    fan-in differs between modes).
    """
    PHASE_COPY_IN, PHASE_COPY_OUT, PHASE_DPXOR = _pipeline_phases()

    if db_chunks is not None:
        if db_copy_phase is None:
            raise ConfigurationError("db_copy_phase is required when streaming db_chunks")
        db_report = dpu_set.scatter(DB_BUFFER, db_chunks)
        breakdown.record(db_copy_phase, db_report.simulated_seconds)

    copy_in = dpu_set.scatter(SELECTOR_BUFFER, selector_chunks)
    breakdown.record(PHASE_COPY_IN, copy_in.simulated_seconds)

    launch = dpu_set.launch(kernel, per_dpu_kwargs=kwargs_for_kernel(layout))
    breakdown.record(PHASE_DPXOR, launch.simulated_seconds)

    partials, copy_out = dpu_set.gather(RESULT_BUFFER, layout.record_size)
    breakdown.record(PHASE_COPY_OUT, copy_out.simulated_seconds)
    return partials


def run_dpu_pipeline_many(
    dpu_set,
    kernel,
    layout: PartitionLayout,
    selector_chunks: Sequence[np.ndarray],
    breakdowns: Sequence,
    *,
    db_chunks: Optional[Sequence[np.ndarray]] = None,
    db_copy_phase: Optional[str] = None,
) -> List[np.ndarray]:
    """Algorithm 1 phases 3-5 for a whole batch in one DPU dispatch.

    The batched counterpart of :func:`run_dpu_pipeline` and the heart of the
    kernel-level batching: the batch pays **one** selector scatter, **one**
    launch of the batched dpXOR (whose batch loop runs inside the DPUs) and
    **one** result gather, instead of one of each per query — and, when
    ``db_chunks`` streams the database in, **one** segment copy per batch
    instead of per query.

    Simulated cost model (the documented amortisation, for a batch of ``B``
    rows over ``P`` DPUs)::

        copy_in  = transfer_latency + B * packed_selector_bytes / host_to_dpu_bw
        dpxor    = launch_overhead(P) + max_dpu( sum_rows kernel_cost(dpu, row) )
        copy_out = transfer_latency + B * record_size * P / dpu_to_host_bw
        copy_db  = transfer_latency + db_bytes / host_to_dpu_bw   (streamed mode)

    — each charged **once per batch**.  Only the fixed per-dispatch charges
    (transfer latency, launch overhead, the per-batch segment copy) amortise;
    selector/result bytes and per-row kernel costs still scale with ``B``
    (the all-for-one principle never discounts scan work).  Each phase's
    batch total is split evenly across the ``B`` breakdowns, so the
    per-query breakdowns sum to exactly the batch total and batch makespans
    show the amortisation directly.

    ``selector_chunks`` comes from
    :meth:`DatabasePartitioner.selector_chunks_many`; the per-DPU partials
    are returned as ``(B, record_size)`` blocks for the caller to fold per
    row (phase 6 stays a per-query charge, as in the sequential pipeline).
    """
    PHASE_COPY_IN, PHASE_COPY_OUT, PHASE_DPXOR = _pipeline_phases()

    batch = len(breakdowns)
    if batch <= 0:
        raise ConfigurationError("run_dpu_pipeline_many needs at least one breakdown")

    def charge(phase: str, total_seconds: float) -> None:
        share = total_seconds / batch
        for breakdown in breakdowns:
            breakdown.record(phase, share)

    if db_chunks is not None:
        if db_copy_phase is None:
            raise ConfigurationError("db_copy_phase is required when streaming db_chunks")
        db_report = dpu_set.scatter(DB_BUFFER, db_chunks)
        charge(db_copy_phase, db_report.simulated_seconds)

    copy_in = dpu_set.scatter(SELECTOR_BUFFER, selector_chunks)
    charge(PHASE_COPY_IN, copy_in.simulated_seconds)

    launch = dpu_set.launch(kernel, per_dpu_kwargs=kwargs_for_kernel_many(layout, batch))
    charge(PHASE_DPXOR, launch.simulated_seconds)

    blocks, copy_out = dpu_set.gather(RESULT_BUFFER, batch * layout.record_size)
    charge(PHASE_COPY_OUT, copy_out.simulated_seconds)
    return [
        np.asarray(block, dtype=np.uint8).reshape(batch, layout.record_size)
        for block in blocks
    ]


def fold_partials(partials: Sequence[np.ndarray], record_size: int) -> np.ndarray:
    """XOR-fold per-DPU sub-results into the server's answer (Algorithm 1 ➏).

    Folds eight bytes per operation through uint64-word views when the record
    size allows it (XOR is bytewise, so the words fold to identical bytes);
    odd record sizes fall back to the uint8 loop.
    """
    from repro.pir.xor_ops import word_view

    result = np.zeros(record_size, dtype=np.uint8)
    result_words = word_view(result)
    for partial in partials:
        array = np.asarray(partial, dtype=np.uint8).reshape(-1)
        if array.size != record_size:
            raise ConfigurationError(
                f"partial result has {array.size} bytes, expected {record_size}"
            )
        array_words = word_view(array)
        if result_words is not None and array_words is not None:
            result_words ^= array_words
        else:
            result ^= array
    return result
