"""IM-PIR core: configuration, partitioning, scheduling, the server itself."""

from repro.core.config import DEFAULT_BLOCKS_PER_LEAF, IMPIRConfig
from repro.core.engine import (
    BackendCapabilities,
    PIRBackend,
    QueryEngine,
    ReferenceBackend,
    available_backends,
    batch_scheduler_for,
    create_server,
    register_backend,
)
from repro.core.impir import IMPIRDeployment, IMPIRServer
from repro.core.partitioning import (
    DatabasePartitioner,
    PartitionLayout,
    fold_partials,
    kwargs_for_kernel,
    run_dpu_pipeline,
)
from repro.core.results import (
    ALL_PHASES,
    PHASE_AGGREGATE,
    PHASE_COPY_IN,
    PHASE_COPY_OUT,
    PHASE_DPXOR,
    PHASE_EVAL,
    IMPIRBatchResult,
    IMPIRQueryResult,
)
from repro.core.scheduler import BatchSchedule, BatchScheduler, QueryTask, ScheduledQuery
from repro.core.streaming import (
    PHASE_COPY_DB,
    StreamedIMPIRServer,
    streaming_overhead_factor,
)

__all__ = [
    "DEFAULT_BLOCKS_PER_LEAF",
    "IMPIRConfig",
    "BackendCapabilities",
    "PIRBackend",
    "QueryEngine",
    "ReferenceBackend",
    "available_backends",
    "batch_scheduler_for",
    "create_server",
    "register_backend",
    "IMPIRDeployment",
    "IMPIRServer",
    "DatabasePartitioner",
    "PartitionLayout",
    "fold_partials",
    "kwargs_for_kernel",
    "run_dpu_pipeline",
    "ALL_PHASES",
    "PHASE_AGGREGATE",
    "PHASE_COPY_IN",
    "PHASE_COPY_OUT",
    "PHASE_DPXOR",
    "PHASE_EVAL",
    "IMPIRBatchResult",
    "IMPIRQueryResult",
    "BatchSchedule",
    "BatchScheduler",
    "QueryTask",
    "ScheduledQuery",
    "PHASE_COPY_DB",
    "StreamedIMPIRServer",
    "streaming_overhead_factor",
]
