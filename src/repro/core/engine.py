"""Unified query-execution engine shared by every PIR server variant.

Before this module existed, the five server implementations (reference,
CPU-PIR, GPU-PIR, IM-PIR, streamed IM-PIR) each carried their own copy of the
protocol-shaped logic: query validation, host-side DPF key evaluation,
selector generation, answer assembly and phase bookkeeping.  The engine owns
all of that exactly once; what remains per variant is a :class:`PIRBackend` —
the architecture-specific execution substrate that scans the prepared
database under a selector vector and charges simulated time to a
:class:`~repro.common.events.PhaseTimer`.

Layering (bottom-up)::

    PIRBackend        "where the dpXOR runs": prepare(db) + execute(selector)
    QueryEngine       the protocol: validate -> eval key -> execute -> answer
    server facades    PIRServer / IMPIRServer / ... : public API + cost models
    PIRFrontend       request batching/routing across replicas (repro.pir.frontend)

Backends advertise :class:`BackendCapabilities` (execution lanes, batch
workers, capacity) which the engine uses to drive the
:class:`~repro.core.scheduler.BatchScheduler` for batch mode, and which the
frontend uses to size its batching policy.

A small registry maps backend names to server builders so the equivalence
test-suite, the CLI smoke target and the examples can iterate over every
variant through one code path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.common.errors import ProtocolError
from repro.common.events import PhaseTimer
from repro.core.results import PHASE_EVAL, IMPIRBatchResult, IMPIRQueryResult
from repro.core.scheduler import BatchScheduler, QueryTask
from repro.dpf.dpf import DPF
from repro.dpf.prf import LengthDoublingPRG
from repro.pir.database import Database
from repro.pir.messages import DPFQuery, NaiveQuery, PIRAnswer
from repro.pir.xor_ops import dpxor, dpxor_many

Query = Union[DPFQuery, NaiveQuery]


@dataclass(frozen=True)
class BackendCapabilities:
    """What an execution backend can do, and how big it is.

    The engine consults these to validate queries (``supports_naive``), pick
    execution lanes and build batch schedules; the frontend consults them to
    size batching policies.
    """

    name: str
    #: Independent execution lanes (DPU clusters); lane ``i`` can serve a
    #: query concurrently with lane ``j``.
    lanes: int = 1
    #: Host threads available for per-query DPF evaluation in batch mode.
    batch_workers: int = 1
    #: Whether dense selector-share (:class:`NaiveQuery`) queries are served.
    supports_naive: bool = False
    #: Whether the database is resident in execution memory (vs streamed).
    preloaded: bool = True
    #: Advertised capacity bound in records, once a database is prepared
    #: (``None`` when unbounded or not yet known).  Informational — hard
    #: enforcement happens inside the backend's ``prepare``.
    max_records: Optional[int] = None
    description: str = ""


class PIRBackend(ABC):
    """Execution substrate behind a :class:`QueryEngine`.

    Implementations provide only the architecture-specific pieces — loading
    the database into their execution memory and scanning it under a selector
    vector.  Everything protocol-shaped (validation, key evaluation, answer
    assembly) is supplied once by the engine, which also gives every backend
    the uniform ``answer``/``answer_many`` surface below.
    """

    #: Set by :meth:`QueryEngine.prepare`; backends may read it but should
    #: treat the engine as the owner.
    engine: Optional["QueryEngine"] = None

    @abstractmethod
    def prepare(self, database: Database) -> Optional[PhaseTimer]:
        """(Re)load ``database`` into the backend's execution memory.

        Returns a :class:`PhaseTimer` with the preload cost when the backend
        charges one (the paper reports it separately from queries), else
        ``None``.
        """

    @abstractmethod
    def capabilities(self) -> BackendCapabilities:
        """Capability/capacity metadata for this backend."""

    @abstractmethod
    def execute(
        self, selector_bits: np.ndarray, breakdown: PhaseTimer, lane: int = 0
    ) -> np.ndarray:
        """Scan the prepared database under ``selector_bits`` (the dpXOR).

        Records the architecture's simulated phase costs into ``breakdown``
        and returns the XOR sub-result as a uint8 array of ``record_size``
        bytes.
        """

    def execute_many(
        self,
        selector_matrix: np.ndarray,
        breakdowns: Sequence[PhaseTimer],
        lanes: Sequence[int],
    ) -> np.ndarray:
        """Scan the prepared database under a whole batch of selector shares.

        ``selector_matrix`` is ``(B, num_records)`` with one selector share
        per row; ``breakdowns`` and ``lanes`` carry one entry per row.
        Returns the ``(B, record_size)`` uint8 matrix of sub-results.

        This default serves the rows through :meth:`execute` one by one, so
        every backend supports the batched surface; backends with a one-pass
        batched kernel override it.  Overrides must stay bit-identical to the
        sequential path.  Host-side backends also charge each row's breakdown
        the same simulated costs (batching is a wall-clock optimisation
        only); the PIM backends batch at kernel level, paying fixed
        per-dispatch charges (transfer latency, launch overhead, streamed
        segment copies) once per batch and splitting them evenly across the
        rows — per-row kernel costs and scan bytes are never discounted (see
        :func:`repro.core.partitioning.run_dpu_pipeline_many` for the
        documented amortisation formula).
        """
        rows = [
            np.asarray(
                self.execute(selector_matrix[position], breakdowns[position],
                             lane=lanes[position]),
                dtype=np.uint8,
            ).reshape(-1)
            for position in range(selector_matrix.shape[0])
        ]
        return np.stack(rows)

    # -- timing hooks (cost-model backends override; functional-only ones don't) --

    def latency_eval_seconds(self, num_records: int) -> float:
        """Simulated host DPF-eval time in latency mode (whole host, one query)."""
        return 0.0

    def batch_eval_seconds(self, num_records: int) -> float:
        """Simulated host DPF-eval time in batch mode (one worker thread)."""
        return 0.0

    # -- uniform protocol surface (shared engine logic) ---------------------------

    def answer(self, query: Query, lane: int = 0) -> Tuple[bytes, PhaseTimer]:
        """Answer one query; returns ``(payload, breakdown)``."""
        result = self._require_engine().answer(query, lane=lane)
        return result.answer.payload, result.breakdown

    def answer_many(self, queries: Sequence[Query]) -> List[Tuple[bytes, PhaseTimer]]:
        """Answer a batch; returns one ``(payload, breakdown)`` pair per query."""
        batch = self._require_engine().answer_many(queries)
        return [(r.answer.payload, r.breakdown) for r in batch.results]

    def _require_engine(self) -> "QueryEngine":
        if self.engine is None:
            raise ProtocolError(
                f"backend {self.capabilities().name!r} is not attached to a QueryEngine"
            )
        return self.engine


class QueryEngine:
    """The shared half of every PIR server: protocol in, payload out.

    Owns query validation, DPF key evaluation / selector generation,
    :class:`PIRAnswer` assembly and per-phase bookkeeping; delegates the
    database scan to the attached :class:`PIRBackend`.
    """

    def __init__(
        self,
        backend: PIRBackend,
        server_id: int,
        prg: Optional[LengthDoublingPRG] = None,
        stats=None,
    ) -> None:
        if server_id < 0:
            raise ProtocolError("server_id must be non-negative")
        self.backend = backend
        self.server_id = server_id
        self.stats = stats
        self._prg = prg
        self._dpf_cache: Dict[Tuple[int, int], DPF] = {}
        #: Reusable ``(B, N)`` selector buffers for :meth:`selector_matrix`.
        #: A tiny checkout pool rather than a bare attribute: ``list.pop`` /
        #: ``list.append`` are atomic under the GIL, so concurrent flushes on
        #: one engine (the asyncio frontend overlaps them) can never scribble
        #: into the same buffer — a loser of the race just allocates fresh.
        self._selector_pool: List[np.ndarray] = []
        self.database: Optional[Database] = None
        self.preload_report: Optional[PhaseTimer] = None
        #: Optional structured event log (:class:`repro.obs.events.EventLog`),
        #: wired by the observability hub.  ``None`` keeps the hot path at a
        #: single identity check — the uninstrumented engine is the default.
        self.events = None
        backend.engine = self

    # -- database lifecycle -------------------------------------------------------

    def prepare(self, database: Database) -> None:
        """Hand ``database`` to the backend and remember the preload cost.

        Capacity is the backend's to enforce (its bound usually depends on
        the record size, unknown until now): ``prepare`` raises
        :class:`~repro.common.errors.CapacityError` when the database does
        not fit.  ``capabilities().max_records`` afterwards advertises the
        bound for routing/diagnostic use.
        """
        self.database = database
        self.preload_report = self.backend.prepare(database)

    # -- shared query validation --------------------------------------------------

    def validate(self, query: Query) -> None:
        """Reject queries this replica must not answer (one copy of the rules)."""
        caps = self.backend.capabilities()
        if isinstance(query, NaiveQuery):
            if not caps.supports_naive:
                raise ProtocolError(f"{caps.name} serves DPF-encoded queries")
        elif not isinstance(query, DPFQuery):
            raise ProtocolError(f"unsupported query type: {type(query).__name__}")
        if query.server_id != self.server_id:
            raise ProtocolError(
                f"query addressed to server {query.server_id}, this is server {self.server_id}"
            )
        if self.database is None:
            raise ProtocolError("engine has no prepared database")
        if query.num_records != self.database.num_records:
            raise ProtocolError(
                "query was generated for a database of "
                f"{query.num_records} records, this replica holds {self.database.num_records}"
            )

    # -- selector generation (host-side DPF evaluation, Algorithm 1 step 2) -------

    def selector_bits(self, query: Query) -> np.ndarray:
        """Expand the query into the per-record selector-bit share."""
        if isinstance(query, NaiveQuery):
            # Already the right dtype (NaiveShare normalises to uint8): no copy.
            return query.share.bits
        dpf = self._dpf((query.key.domain_bits, query.key.output_bits))
        eval_stats = getattr(self.stats, "eval", None)
        values = dpf.eval_full(query.key, num_points=query.num_records, stats=eval_stats)
        return values.astype(np.uint8, copy=False)

    def _dpf(self, params: Tuple[int, int]) -> DPF:
        """The cached DPF evaluator for ``(domain_bits, output_bits)``."""
        dpf = self._dpf_cache.get(params)
        if dpf is None:
            dpf = DPF(params[0], output_bits=params[1], prg=self._prg)
            self._dpf_cache[params] = dpf
        return dpf

    def selector_matrix(self, queries: Sequence[Query]) -> np.ndarray:
        """Stack every query's selector share into one ``(B, N)`` uint8 matrix.

        The batched half of the eval stage: DPF queries sharing key
        parameters expand through one :meth:`~repro.dpf.dpf.DPF.eval_full_many`
        sweep (the PRG sees ``B x 2^level`` seeds per level instead of
        ``2^level`` seeds ``B`` times); naive shares are written straight in.
        The matrix comes from a per-engine checkout pool so steady-state
        flushes of one shape reuse one preallocated buffer; every row is
        fully overwritten, so stale contents can never leak.  Hand the buffer
        back with :meth:`_recycle_selector_matrix` once the batch is served.
        """
        num_records = self.database.num_records
        buffer = self._take_selector_buffer((len(queries), num_records))
        eval_stats = getattr(self.stats, "eval", None)
        dpf_groups: Dict[Tuple[int, int], List[int]] = {}
        for position, query in enumerate(queries):
            if isinstance(query, NaiveQuery):
                buffer[position] = query.share.bits
            else:
                params = (query.key.domain_bits, query.key.output_bits)
                dpf_groups.setdefault(params, []).append(position)
        for params, positions in dpf_groups.items():
            dpf = self._dpf(params)
            if len(positions) == 1:
                query = queries[positions[0]]
                buffer[positions[0]] = dpf.eval_full(
                    query.key, num_points=num_records, stats=eval_stats
                )
                continue
            values = dpf.eval_full_many(
                [queries[position].key for position in positions],
                num_points=num_records,
                stats=eval_stats,
            )
            for row, position in enumerate(positions):
                buffer[position] = values[row]
        return buffer

    def _take_selector_buffer(self, shape: Tuple[int, int]) -> np.ndarray:
        try:
            buffer = self._selector_pool.pop()
        except IndexError:
            buffer = None
        if buffer is None or buffer.shape != shape:
            buffer = np.empty(shape, dtype=np.uint8)
        return buffer

    def _recycle_selector_matrix(self, buffer: np.ndarray) -> None:
        """Return a :meth:`selector_matrix` buffer to the checkout pool."""
        if not self._selector_pool:
            self._selector_pool.append(buffer)

    # -- single-query path (latency mode) -----------------------------------------

    def answer(self, query: Query, lane: int = 0) -> IMPIRQueryResult:
        """Answer one query on execution lane ``lane``."""
        self.validate(query)
        caps = self.backend.capabilities()
        if not 0 <= lane < caps.lanes:
            raise ProtocolError(f"lane {lane} out of range [0, {caps.lanes})")
        breakdown = PhaseTimer()
        selector = self.selector_bits(query)
        eval_seconds = self.backend.latency_eval_seconds(query.num_records)
        if eval_seconds > 0:
            breakdown.record(PHASE_EVAL, eval_seconds)
        payload = self.backend.execute(selector, breakdown, lane=lane)
        result = self._assemble(query, payload, breakdown, lane)
        if self.events is not None:
            self.events.emit(
                "engine.answer",
                server=self.server_id,
                query=query.query_id,
                lane=lane,
                seconds=breakdown.total,
            )
        return result

    # -- batch path (throughput mode) ----------------------------------------------

    def answer_many(self, queries: Sequence[Query]) -> IMPIRBatchResult:
        """Answer a batch through the worker/lane pipeline of Fig. 8.

        Queries run round-robin over the backend's lanes; the simulated
        makespan comes from the :class:`BatchScheduler` fed with each query's
        measured stage durations.

        The whole flush goes through the batched fast path: one
        :meth:`selector_matrix` eval sweep and one
        :meth:`PIRBackend.execute_many` scan serve every query, bit-identical
        to (and charged exactly like) answering them one at a time.
        """
        if not queries:
            raise ProtocolError("answer_batch needs at least one query")
        for query in queries:
            self.validate(query)
        caps = self.backend.capabilities()
        scheduler = batch_scheduler_for(caps, len(queries))
        eval_seconds = self.backend.batch_eval_seconds(self.database.num_records)

        lanes = [position % max(1, caps.lanes) for position in range(len(queries))]
        breakdowns = [PhaseTimer() for _ in queries]
        selectors = self.selector_matrix(queries)
        if eval_seconds > 0:
            for breakdown in breakdowns:
                breakdown.record(PHASE_EVAL, eval_seconds)
        payloads = self.backend.execute_many(selectors, breakdowns, lanes)
        self._recycle_selector_matrix(selectors)

        results: List[IMPIRQueryResult] = []
        tasks: List[QueryTask] = []
        for position, query in enumerate(queries):
            breakdown = breakdowns[position]
            results.append(
                self._assemble(query, payloads[position], breakdown, lanes[position])
            )
            tasks.append(
                QueryTask(
                    query_id=query.query_id,
                    eval_seconds=breakdown.get(PHASE_EVAL),
                    dpu_seconds=breakdown.total - breakdown.get(PHASE_EVAL),
                )
            )
        schedule = scheduler.schedule(tasks)
        if self.events is not None:
            self.events.emit(
                "engine.batch",
                server=self.server_id,
                batch=len(queries),
                eval_seconds=eval_seconds,
                makespan=schedule.makespan,
            )
        return IMPIRBatchResult(results=results, schedule=schedule)

    # -- answer assembly ------------------------------------------------------------

    def _assemble(
        self, query: Query, payload: np.ndarray, breakdown: PhaseTimer, lane: int
    ) -> IMPIRQueryResult:
        if self.stats is not None:
            self.stats.queries_answered += 1
        total = breakdown.total
        answer = PIRAnswer(
            query_id=query.query_id,
            server_id=self.server_id,
            payload=payload.tobytes(),
            simulated_seconds=total if total > 0 else None,
        )
        return IMPIRQueryResult(answer=answer, breakdown=breakdown, cluster_id=lane)


def batch_scheduler_for(caps: BackendCapabilities, batch_size: int) -> BatchScheduler:
    """The Fig. 8 pipeline scheduler sized for a backend and batch.

    One copy of the sizing rule for both the functional engine and the
    analytic estimators: never more eval workers than queries, at least one
    of each resource.
    """
    workers = max(1, min(caps.batch_workers, batch_size))
    return BatchScheduler(num_workers=workers, num_clusters=max(1, caps.lanes))


class ReferenceBackend(PIRBackend):
    """Plain-numpy full scan: the functional oracle every variant must match.

    Also the execution substrate of the CPU/GPU baselines, whose cost models
    change *when* the scan is charged, not *what* is computed.
    """

    def __init__(self, name: str = "reference", dpxor_stats=None) -> None:
        self._name = name
        self._dpxor_stats = dpxor_stats
        self._database: Optional[Database] = None

    def prepare(self, database: Database) -> Optional[PhaseTimer]:
        self._database = database
        return None

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self._name,
            lanes=1,
            batch_workers=1,
            supports_naive=True,
            preloaded=True,
            description="full-domain scan in host DRAM (numpy)",
        )

    def execute(
        self, selector_bits: np.ndarray, breakdown: PhaseTimer, lane: int = 0
    ) -> np.ndarray:
        return dpxor(self._database.records, selector_bits, stats=self._dpxor_stats)

    def execute_many(
        self,
        selector_matrix: np.ndarray,
        breakdowns: Sequence[PhaseTimer],
        lanes: Sequence[int],
    ) -> np.ndarray:
        # One pass over the database serves the whole batch; the stats charge
        # B full scans either way (batching never discounts simulated bytes).
        return dpxor_many(
            self._database.records, selector_matrix, stats=self._dpxor_stats
        )

    def scan_many_into(
        self,
        selector_matrix: np.ndarray,
        out: np.ndarray,
        chunk_records: Optional[int] = None,
    ) -> np.ndarray:
        """One-pass batched scan straight into a caller-owned accumulator.

        The sharded executors' hot path: a shard worker scans its column
        block into its preallocated slab of the fleet-wide accumulator with
        no per-query Python and no allocation in the worker (see
        ``ShardedBackend.execute_many``).  Stats are charged exactly like
        :meth:`execute_many`.
        """
        return dpxor_many(
            self._database.records,
            selector_matrix,
            stats=self._dpxor_stats,
            chunk_records=chunk_records,
            out=out,
        )


# ---------------------------------------------------------------------------
# Backend registry: one place to enumerate every server variant.
# ---------------------------------------------------------------------------

ServerBuilder = Callable[..., object]

_BACKEND_BUILDERS: Dict[str, ServerBuilder] = {}
_defaults_loaded = False


def register_backend(name: str, builder: ServerBuilder) -> ServerBuilder:
    """Register a server builder under ``name`` (overwrites silently)."""
    _BACKEND_BUILDERS[name] = builder
    return builder


def _ensure_default_backends() -> None:
    """Populate the registry with the shipped variants (exactly once).

    The five single-machine servers plus the composed ``sharded`` variant
    (a :class:`~repro.shard.backend.ShardedServer` over reference children).

    Imports happen lazily here (not at module import) because the server
    modules themselves depend on this module.  User registrations made
    before the first lookup are kept — defaults never clobber them.
    """
    global _defaults_loaded
    if _defaults_loaded:
        return
    _defaults_loaded = True
    from repro.core.config import IMPIRConfig
    from repro.core.impir import IMPIRServer
    from repro.core.streaming import StreamedIMPIRServer
    from repro.cpu.cpu_pir import CPUPIRServer
    from repro.dpf.prf import make_prg
    from repro.gpu.gpu_pir import GPUPIRServer
    from repro.pim.config import scaled_down_config
    from repro.pir.server import PIRServer

    def default_config(num_dpus: int = 8, num_clusters: int = 1) -> IMPIRConfig:
        return IMPIRConfig(
            pim=scaled_down_config(num_dpus=num_dpus, tasklets=4),
            num_clusters=num_clusters,
        )

    def register_default(name: str, builder: ServerBuilder) -> None:
        _BACKEND_BUILDERS.setdefault(name, builder)

    register_default(
        "reference",
        lambda db, server_id=0, **kw: PIRServer(
            db, server_id=server_id, prg=kw.get("prg", make_prg("numpy"))
        ),
    )
    register_default(
        "cpu",
        lambda db, server_id=0, **kw: CPUPIRServer(
            db,
            server_id=server_id,
            config=kw.get("config"),
            prg=kw.get("prg", make_prg("numpy")),
        ),
    )
    register_default(
        "gpu",
        lambda db, server_id=0, **kw: GPUPIRServer(
            db,
            server_id=server_id,
            config=kw.get("config"),
            prg=kw.get("prg", make_prg("numpy")),
        ),
    )
    register_default(
        "im-pir",
        lambda db, server_id=0, **kw: IMPIRServer(
            db, config=kw.get("config", default_config()), server_id=server_id
        ),
    )
    register_default(
        "im-pir-streamed",
        lambda db, server_id=0, **kw: StreamedIMPIRServer(
            db,
            config=kw.get("config", default_config(num_dpus=4)),
            server_id=server_id,
            segment_records=kw.get("segment_records"),
        ),
    )

    from repro.shard.backend import ShardedServer

    register_default(
        "sharded",
        lambda db, server_id=0, **kw: ShardedServer(
            db,
            server_id=server_id,
            num_shards=kw.get("num_shards", 2),
            child_kind=kw.get("child_kind", "reference"),
            block_records=kw.get("block_records", 1),
            plan=kw.get("plan"),
            config=kw.get("config"),
            segment_records=kw.get("segment_records"),
            executor=kw.get("executor", "serial"),
            tuner=kw.get("tuner"),
            prg=kw.get("prg", make_prg("numpy")),
        ),
    )


def available_backends() -> Tuple[str, ...]:
    """Names of every registered backend, sorted."""
    _ensure_default_backends()
    return tuple(sorted(_BACKEND_BUILDERS))


def create_server(name: str, database: Database, server_id: int = 0, **kwargs):
    """Build the server facade registered under ``name``.

    Every returned server exposes ``.engine`` (a :class:`QueryEngine`), so a
    query can be answered uniformly via ``server.engine.answer(query)``
    regardless of the architecture behind it.
    """
    _ensure_default_backends()
    try:
        builder = _BACKEND_BUILDERS[name]
    except KeyError:
        raise ProtocolError(
            f"unknown backend {name!r}; registered: {', '.join(sorted(_BACKEND_BUILDERS))}"
        ) from None
    return builder(database, server_id=server_id, **kwargs)
