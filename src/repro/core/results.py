"""Result containers returned by the IM-PIR server."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.events import PhaseTimer
from repro.core.scheduler import BatchSchedule
from repro.pir.messages import PIRAnswer

#: Canonical phase names, in pipeline order (Algorithm 1 ➋–➏).
PHASE_EVAL = "eval"
PHASE_COPY_IN = "copy_cpu_to_dpu"
PHASE_DPXOR = "dpxor"
PHASE_COPY_OUT = "copy_dpu_to_cpu"
PHASE_AGGREGATE = "aggregate"

ALL_PHASES = (PHASE_EVAL, PHASE_COPY_IN, PHASE_DPXOR, PHASE_COPY_OUT, PHASE_AGGREGATE)


@dataclass
class IMPIRQueryResult:
    """One query's answer plus its simulated per-phase latency breakdown."""

    answer: PIRAnswer
    breakdown: PhaseTimer
    cluster_id: int = 0

    @property
    def latency_seconds(self) -> float:
        """Simulated server-side latency of this query."""
        return self.breakdown.total

    @property
    def dpu_pipeline_seconds(self) -> float:
        """Time spent on the DPU side of the pipeline (everything but eval/agg)."""
        return (
            self.breakdown.get(PHASE_COPY_IN)
            + self.breakdown.get(PHASE_DPXOR)
            + self.breakdown.get(PHASE_COPY_OUT)
        )

    def phase_fractions(self) -> Dict[str, float]:
        """Each phase's share of the total latency (Table 1 rows)."""
        return self.breakdown.fractions()


@dataclass
class IMPIRBatchResult:
    """A batch of answers plus the pipeline schedule that produced them."""

    results: List[IMPIRQueryResult] = field(default_factory=list)
    schedule: BatchSchedule = field(default_factory=BatchSchedule)

    @property
    def answers(self) -> List[PIRAnswer]:
        """Per-query answers in submission order."""
        return [result.answer for result in self.results]

    @property
    def batch_size(self) -> int:
        """Number of queries in the batch."""
        return len(self.results)

    @property
    def latency_seconds(self) -> float:
        """Simulated makespan of the whole batch."""
        return self.schedule.makespan

    @property
    def throughput_qps(self) -> float:
        """Queries per simulated second."""
        return self.schedule.throughput_qps

    def mean_breakdown(self) -> PhaseTimer:
        """Average per-query phase breakdown across the batch."""
        mean = PhaseTimer()
        if not self.results:
            return mean
        for result in self.results:
            mean.merge(result.breakdown)
        return mean.scaled(1.0 / len(self.results))
