"""End-to-end smoke run: every registered backend through one code path.

Unlike the figure generators (analytic, paper-scale), this target does real
functional work on a small database: it builds a two-replica deployment of
every backend in the :mod:`repro.core.engine` registry, answers the same
seeded query set through the shared ``QueryEngine``, cross-checks the
payloads bit-for-bit, and drives a batched retrieval through the
:class:`~repro.pir.frontend.PIRFrontend` to report scheduling metrics.

It is the CI canary wired into ``make check``: if any backend drifts from
the reference scan or the frontend mis-pairs an answer, this exits non-zero.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.common.units import format_seconds
from repro.control.autoscaler import AutoscalePolicy, DampingPolicy
from repro.control.plane import controlled_fleet
from repro.core.engine import available_backends, create_server
from repro.dpf.prf import make_prg
from repro.obs import (
    BurnRateRule,
    FlightRecorder,
    ObservabilityHub,
    SloObjective,
    SloPolicy,
    validate_bundle,
)
from repro.obs.tracing import KIND_PHASE, KIND_SERVER, KIND_SHARD
from repro.pir.async_frontend import AsyncPIRFrontend
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.pir.frontend import FLUSH_ON_WAIT, BatchingPolicy, PIRFrontend
from repro.shard.fleet import FleetRouter, heats_from_trace, render_placements
from repro.shard.plan import ShardPlan
from repro.workloads.traces import zipf_trace


def backend_smoke(
    num_records: int = 512,
    record_size: int = 32,
    indices: Sequence[int] = (0, 7, 255, 511),
    seed: int = 9,
    segment_records: Optional[int] = 128,
) -> str:
    """Run the cross-backend equivalence + frontend smoke; returns a report."""
    database = Database.random(num_records, record_size, seed=seed)
    lines: List[str] = [
        "Backend smoke: all server variants through the shared QueryEngine",
        f"database: {num_records} records x {record_size} B, queries at {list(indices)}",
        "",
        f"{'backend':>16} {'lanes':>6} {'preloaded':>10} {'batch makespan':>16} "
        f"{'throughput':>14} {'agree':>6}",
    ]

    baseline_payloads = None
    baseline_name = None
    for name in available_backends():
        kwargs = {"segment_records": segment_records} if name == "im-pir-streamed" else {}
        client = PIRClient(num_records, record_size, seed=seed + 1, prg=make_prg("numpy"))
        replicas = [create_server(name, database, server_id=i, **kwargs) for i in (0, 1)]
        caps = replicas[0].engine.backend.capabilities()

        # Per-query equivalence through the uniform engine surface.
        payloads = []
        for index in indices:
            queries = client.query(index)
            results = [replicas[q.server_id].engine.answer(q) for q in queries]
            payloads.append(tuple(r.answer.payload for r in results))
        if baseline_payloads is None:
            baseline_payloads, baseline_name = payloads, name
        agree = payloads == baseline_payloads
        if not agree:
            raise AssertionError(
                f"backend {name!r} disagrees with the payloads of {baseline_name!r}"
            )

        # Batched retrieval through the frontend (pairing + scheduling metrics).
        frontend = PIRFrontend(
            PIRClient(num_records, record_size, seed=seed + 2, prg=make_prg("numpy")),
            replicas,
            policy=BatchingPolicy(max_batch_size=len(indices)),
        )
        records = frontend.retrieve_batch(list(indices))
        for index, record in zip(indices, records):
            if record != database.record(index):
                raise AssertionError(f"backend {name!r} returned a wrong record for {index}")
        metrics = frontend.metrics
        makespan = metrics.total_makespan_seconds
        throughput = (
            f"{metrics.throughput_qps:14.1f}" if makespan > 0 else f"{'n/a':>14}"
        )
        lines.append(
            f"{caps.name:>16} {caps.lanes:>6} {str(caps.preloaded):>10} "
            f"{format_seconds(makespan) if makespan > 0 else 'untimed':>16} "
            f"{throughput} {'ok':>6}"
        )

    lines.append("")
    lines.append(
        f"{len(tuple(available_backends()))} backends agree bit-for-bit on "
        f"{len(list(indices))} queries; frontend paired and reconstructed every batch."
    )

    lines.extend(_fleet_smoke(database, indices, seed))
    return "\n".join(lines)


def _fleet_smoke(database: Database, indices: Sequence[int], seed: int) -> List[str]:
    """Sharded cross-backend retrieval through a capability-placed fleet.

    Shards the smoke database four ways, derives shard heats from a skewed
    trace (most queries hit the first shard), lets the placement put hot
    shards on preloaded PIM and cold shards on streamed IM-PIR, and verifies
    a batched retrieval through the resulting two replica fleets.
    """
    plan = ShardPlan.uniform(database.num_records, 4, block_records=8)
    hot = plan.shards[0]
    trace = [hot.start] * 64 + list(indices)
    heats = heats_from_trace(plan, trace)
    # The demo must show both deployment kinds whatever indices the caller
    # picked, so the least-queried shard is treated as fully cold for
    # placement (retrieval correctness never depends on placement).
    coldest = min(plan.non_empty_shards, key=lambda shard: heats[shard.index])
    heats[coldest.index] = 0.0
    router = FleetRouter(
        PIRClient(
            database.num_records, database.record_size, seed=seed + 3, prg=make_prg("numpy")
        ),
        database,
        plan,
        heats,
        policy=BatchingPolicy(max_batch_size=len(list(indices))),
    )
    kinds = set(router.placement_kinds())
    if len(kinds) < 2:
        raise AssertionError(
            f"capability placement used a single backend kind for hot and cold "
            f"shards: {kinds}"
        )
    records = router.retrieve_batch(list(indices))
    for index, record in zip(indices, records):
        if record != database.record(index):
            raise AssertionError(f"sharded fleet returned a wrong record for {index}")

    lines = ["", f"Sharded fleet: {plan.num_shards} shards, capability-aware placement"]
    lines.extend(render_placements(router.placements))
    lines.append(
        f"fleet retrieval verified for {len(list(indices))} indices across "
        f"{len(kinds)} backend kinds; batch makespan "
        f"{format_seconds(router.metrics.total_makespan_seconds)}"
    )
    return lines


def rebalance_smoke(
    num_records: int = 512,
    record_size: int = 32,
    seed: int = 9,
) -> str:
    """The ``--rebalance`` smoke: online control plane under a drifting Zipf.

    Drives the same drifting workload — Zipf-skewed indices whose hot spot
    moves from the first shard to the last halfway through — through a
    *static* :class:`FleetRouter` and through one wearing the full control
    plane (heat telemetry, live rebalancing, hot-record cache).  Asserts the
    three acceptance properties: at least one heat-driven shard migration, a
    nonzero cache hit rate, and records bit-identical to the static fleet's
    (retrieval correctness never depends on placement — before, during or
    after a migration).
    """
    database = Database.random(num_records, record_size, seed=seed)
    plan = ShardPlan.uniform(num_records, 4, block_records=8)
    first, last = plan.shards[0], plan.shards[-1]

    # Drifting workload: Zipf ranks concentrate near index 0, so offsetting
    # them by a shard's start pins the hot spot inside that shard; halfway
    # through the stream the hot spot jumps from the first shard to the last.
    # Both deployments start from the same offline placement, seeded with a
    # sample of the stream's *first* phase (the drift is what comes after).
    # The sample carries the live arrival stamps and the tracker's window
    # parameters, so the seed heats and the online estimates share a scale.
    stream, seed_heats = _drifting_workload(num_records, plan, seed)

    def make_client(extra: int) -> PIRClient:
        return PIRClient(
            num_records, record_size, seed=seed + extra, prg=make_prg("numpy")
        )

    policy = BatchingPolicy(max_batch_size=8, max_wait_seconds=10.0)
    static = FleetRouter(make_client(6), database, plan, seed_heats, policy=policy)
    static_records = static.retrieve_batch(stream)

    router, plane = controlled_fleet(
        make_client(6),
        database,
        plan,
        seed_heats,
        window_seconds=0.2,
        decay=0.5,
        rebalance_interval_seconds=0.4,
        cache_capacity=16,
        admit_min_heat=1.0,
        dedup=True,
        policy=policy,
    )
    initial_kinds = list(router.placement_kinds())

    # Live traffic on the simulated clock: arrivals 20ms apart, so heat
    # windows roll and rebalance passes fire as the stream drifts.
    request_ids = []
    now = 0.0
    for index in stream:
        request_ids.append(router.submit(index, arrival_seconds=now))
        now += 0.02
    router.close()
    live_records = [router.take_record(request_id) for request_id in request_ids]

    for index, record in zip(stream, live_records):
        if record != database.record(index):
            raise AssertionError(f"controlled fleet returned a wrong record for {index}")
    if live_records != static_records:
        raise AssertionError(
            "controlled fleet drifted from the static fleet's records"
        )
    migrations = plane.rebalancer.total_migrations
    if migrations < 1:
        raise AssertionError("no heat-driven shard migration under the drift")
    hit_rate = plane.cache.stats.hit_rate
    if not (router.metrics.cache_hits > 0 and hit_rate > 0):
        raise AssertionError(
            f"hot-record cache never hit: {plane.cache.stats.as_dict()}"
        )

    lines = [
        "Rebalance smoke: online control plane under a drifting Zipf workload",
        f"database: {num_records} records x {record_size} B, "
        f"{len(stream)} queries, hot spot shard {first.index} -> {last.index}",
        "",
        f"initial kinds: {initial_kinds}",
        f"final kinds:   {router.placement_kinds()}",
        "",
    ]
    lines.extend(plane.describe())
    lines.append("")
    lines.extend(render_placements(router.placements))
    lines.append(
        f"{len(stream)} records verified bit-identical to the static fleet "
        f"across {migrations} live migration(s); cache hit rate {hit_rate:.2f} "
        f"({router.metrics.cache_hits} request(s) served without a scan)"
    )
    return "\n".join(lines)


def resplit_smoke(
    num_records: int = 512,
    record_size: int = 32,
    seed: int = 9,
) -> str:
    """The ``--resplit`` smoke: online topology split/merge under drift.

    Same drifting Zipf workload as :func:`rebalance_smoke`, but the control
    plane's *plan-shape* policy is switched on: the topology itself follows
    the heat.  Asserts the topology acceptance properties — at least one
    online split and one merge occurred, every reshape pass carried nonzero
    remapped heat across the plan-version change (telemetry survives, never
    resets), the plan version advanced monotonically, and every retrieval is
    bit-identical to a static fleet whose boundaries never move.
    """
    database = Database.random(num_records, record_size, seed=seed)
    plan = ShardPlan.uniform(num_records, 4, block_records=8)
    first, last = plan.shards[0], plan.shards[-1]

    # The same drifting stream as the rebalance smoke: the Zipf hot spot
    # jumps from the first shard to the last halfway through.
    stream, seed_heats = _drifting_workload(num_records, plan, seed)

    def make_client(extra: int) -> PIRClient:
        return PIRClient(
            num_records, record_size, seed=seed + extra, prg=make_prg("numpy")
        )

    policy = BatchingPolicy(max_batch_size=8, max_wait_seconds=10.0)
    static = FleetRouter(make_client(6), database, plan, seed_heats, policy=policy)
    static_records = static.retrieve_batch(stream)

    router, plane = controlled_fleet(
        make_client(6),
        database,
        plan,
        seed_heats,
        window_seconds=0.2,
        decay=0.5,
        rebalance_interval_seconds=0.4,
        cache_capacity=16,
        admit_min_heat=1.0,
        split_heat_share=0.5,
        merge_heat_floor=0.5,
        min_shards=2,
        max_shards=8,
        dedup=True,
        policy=policy,
    )
    initial_version = router.plan.version

    request_ids = []
    now = 0.0
    for index in stream:
        request_ids.append(router.submit(index, arrival_seconds=now))
        now += 0.02
    router.close()
    live_records = [router.take_record(request_id) for request_id in request_ids]

    if live_records != static_records:
        raise AssertionError(
            "reshaping fleet drifted from the static fleet's records"
        )
    rebalancer = plane.rebalancer
    if rebalancer.total_splits < 1 or rebalancer.total_merges < 1:
        raise AssertionError(
            f"expected at least one online split and one merge, got "
            f"{rebalancer.total_splits} split(s) / {rebalancer.total_merges} merge(s)"
        )
    if router.plan.version <= initial_version:
        raise AssertionError(
            f"plan version did not advance: {router.plan.version}"
        )
    if router.plan.version != plane.tracker.plan.version:
        raise AssertionError(
            "router and tracker disagree on the live plan version"
        )
    for report in rebalancer.reports:
        if (report.splits or report.merges) and sum(report.heats) <= 0:
            raise AssertionError(
                f"heat was reset (not remapped) across the reshape at "
                f"{report.now:.3f}s: {report.heats}"
            )

    lines = [
        "Resplit smoke: online topology split/merge under a drifting Zipf workload",
        f"database: {num_records} records x {record_size} B, "
        f"{len(stream)} queries, hot spot shard {first.index} -> {last.index}",
        "",
        f"plan: v{initial_version} ({plan.num_shards} shards) -> "
        f"v{router.plan.version} ({router.plan.num_shards} shards)",
        f"final topology: {router.plan!r}",
        "",
    ]
    lines.extend(plane.describe())
    lines.append("")
    lines.extend(render_placements(router.placements))
    lines.append(
        f"{len(stream)} records verified bit-identical to the static fleet "
        f"across {rebalancer.total_splits} split(s), {rebalancer.total_merges} "
        f"merge(s) and {rebalancer.total_migrations} kind migration(s); heat "
        f"remapped (never reset) across every plan version"
    )
    return "\n".join(lines)


def autoscale_smoke(
    num_records: int = 512,
    record_size: int = 32,
    seed: int = 10,
) -> str:
    """The ``--autoscale`` smoke: the closed loop under a surging workload.

    Drives a calm → surge → cool-down Zipf stream through a controlled
    fleet with the full PR-8 loop on — replica elasticity from sustained
    utilization plus cost-aware damping on every reshape — and asserts the
    acceptance properties: at least one scale-up and one scale-down
    happened, at least one borderline reshape was suppressed by damping,
    and every retrieved record is bit-identical to a static single-replica
    fleet that never scales or reshapes.
    """
    database = Database.random(num_records, record_size, seed=seed)
    plan = ShardPlan.uniform(num_records, 4, block_records=8)

    # Three traffic phases on the simulated clock: a calm trickle (the
    # utilization dead zone), a 10x surge (sustained over the scale-up
    # band), and a cool-down (heat decays under the scale-down band).
    calm = zipf_trace(num_records, 64, exponent=1.2, seed=seed + 3)
    surge = zipf_trace(num_records, 160, exponent=1.4, seed=seed + 4)
    cool = zipf_trace(num_records, 64, exponent=1.2, seed=seed + 5)
    stream = list(calm) + list(surge) + list(cool)
    arrivals: List[float] = []
    now = 0.0
    for gap, phase in ((0.05, calm), (0.005, surge), (0.05, cool)):
        for _ in phase:
            arrivals.append(now)
            now += gap
    seed_heats = heats_from_trace(
        plan,
        list(calm),
        arrival_seconds=arrivals[: len(calm)],
        window_seconds=0.2,
        decay=0.5,
    )

    def make_client(extra: int) -> PIRClient:
        return PIRClient(
            num_records, record_size, seed=seed + extra, prg=make_prg("numpy")
        )

    policy = BatchingPolicy(max_batch_size=8, max_wait_seconds=10.0)
    static = FleetRouter(make_client(6), database, plan, seed_heats, policy=policy)
    static_records = static.retrieve_batch(stream)

    autoscale = AutoscalePolicy(
        target_heat_per_replica=10.0,
        scale_up_utilization=0.8,
        scale_down_utilization=0.3,
        min_replicas=1,
        max_replicas=2,
        sustain_passes=2,
        evaluation_interval_seconds=0.2,
    )
    # A generous merge floor keeps proposing merges of shards that still
    # carry a little heat; their projected saving is negative (the merged
    # shard scans both ranges on every query), so damping vetoes them —
    # the observable "refused to flap" half of the loop.
    damping = DampingPolicy(amortize_windows=4.0, cooldown_seconds=0.4)
    router, plane = controlled_fleet(
        make_client(6),
        database,
        plan,
        seed_heats,
        window_seconds=0.2,
        decay=0.5,
        rebalance_interval_seconds=0.4,
        split_heat_share=0.5,
        merge_heat_floor=5.0,
        min_shards=2,
        max_shards=8,
        damping=damping,
        autoscale=autoscale,
        dedup=True,
        policy=policy,
    )

    request_ids = []
    for index, arrival in zip(stream, arrivals):
        request_ids.append(router.submit(index, arrival_seconds=arrival))
    router.close()
    live_records = [router.take_record(request_id) for request_id in request_ids]

    if live_records != static_records:
        raise AssertionError(
            "autoscaled fleet drifted from the static fleet's records"
        )
    autoscaler = plane.autoscaler
    ups = [a for a in autoscaler.actions if a.direction == "up"]
    downs = [a for a in autoscaler.actions if a.direction == "down"]
    if not ups or not downs:
        raise AssertionError(
            f"expected at least one scale-up and one scale-down, got "
            f"{len(ups)} up / {len(downs)} down"
        )
    suppressed = plane.rebalancer.total_suppressed
    if suppressed < 1:
        raise AssertionError("damping never suppressed a borderline reshape")
    if router.replica_count != 1:
        raise AssertionError(
            f"fleet did not return to one replica per trust domain "
            f"(ended at {router.replica_count})"
        )

    lines = [
        "Autoscale smoke: closed-loop elasticity under a surging Zipf workload",
        f"database: {num_records} records x {record_size} B, "
        f"{len(stream)} queries (calm {len(calm)} / surge {len(surge)} / "
        f"cool {len(cool)})",
        "",
    ]
    lines.extend(plane.describe())
    for action in autoscaler.actions:
        lines.append("  " + action.describe())
    lines.append("")
    lines.extend(render_placements(router.placements))
    lines.append(
        f"{len(stream)} records verified bit-identical to the static fleet "
        f"across {len(ups)} scale-up(s), {len(downs)} scale-down(s) and "
        f"{suppressed} damped reshape(s); "
        f"{router.metrics.reconfigurations} gated reconfiguration(s)"
    )
    return "\n".join(lines)


class _LatencyFault:
    """Wraps a replica group; inflates *reported* latency while active.

    The injected degradation the SLO smoke and example drive: with
    ``penalty_seconds`` set, every answer's simulated seconds (and its
    PhaseTimer, as an ``induced_stall`` phase) are stretched by the penalty
    — exactly what a straggling replica looks like to the telemetry —
    while payload bytes are never touched, so retrieved records stay
    bit-identical to an unfaulted run.  Everything else forwards to the
    wrapped group, so elastic scale-ups ride through the wrapper.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.penalty_seconds = 0.0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def answer_batch(self, queries):
        result = self._inner.answer_batch(queries)
        penalty = self.penalty_seconds
        if penalty > 0.0:
            for item in result.results:
                answer = item.answer
                base = answer.simulated_seconds
                if base is None and item.breakdown is not None:
                    base = item.breakdown.total
                item.answer = replace(
                    answer, simulated_seconds=(base or 0.0) + penalty
                )
                if item.breakdown is not None:
                    item.breakdown.record("induced_stall", penalty)
        return result


def _slo_policy() -> SloPolicy:
    """The smoke/example SLO: a latency objective with a fast/slow pair.

    Scaled to the smoke's simulated traffic (requests 20 ms apart, flushes
    every 160 ms, normal latency well under 1 ms): the paging rule needs a
    sustained 8x burn over 0.8 s, still visible within a 0.2 s short
    window; the slow rule catches simmering 2x leaks over 3.2 s.
    """
    return SloPolicy(
        objectives=(
            SloObjective(
                "latency-p95", target=0.95, latency_threshold_seconds=0.005
            ),
            SloObjective("availability", target=0.999),
        ),
        rules=(
            BurnRateRule(
                severity="fast",
                long_window_seconds=0.8,
                short_window_seconds=0.2,
                burn_threshold=8.0,
                escalate=True,
            ),
            BurnRateRule(
                severity="slow",
                long_window_seconds=3.2,
                short_window_seconds=0.8,
                burn_threshold=2.0,
            ),
        ),
        bucket_seconds=0.05,
        digest_window_seconds=2.0,
    )


def slo_smoke(
    num_records: int = 512,
    record_size: int = 32,
    seed: int = 11,
) -> str:
    """The ``--slo`` smoke: burn-rate alerting closing the control loop.

    Drives calm → injected latency fault → recovery through a controlled
    fleet with the SLO engine wired, twice, and asserts the acceptance
    properties end to end: the fast-burn alert fires under the fault and
    resolves after recovery, the autoscaler's alert-escalated scale-up
    appears on the pass report, the dumped incident bundles are schema-valid
    and bit-identical across the two runs, and retrieved records match an
    uninstrumented static fleet exactly.
    """
    database = Database.random(num_records, record_size, seed=seed)
    plan = ShardPlan.uniform(num_records, 4, block_records=8)

    # Three traffic phases, arrivals 20 ms apart (flushes of 8 every
    # 160 ms): calm, the same load with a straggling fleet (+50 ms on every
    # answer — pure telemetry, zero payload effect), then recovery long
    # enough for every alert window to drain.
    calm = list(zipf_trace(num_records, 96, exponent=1.2, seed=seed + 1))
    fault = list(zipf_trace(num_records, 96, exponent=1.2, seed=seed + 2))
    recovery = list(zipf_trace(num_records, 128, exponent=1.2, seed=seed + 3))
    stream = calm + fault + recovery
    gap = 0.02
    penalty = 0.05
    seed_heats = heats_from_trace(
        plan,
        calm,
        arrival_seconds=[gap * i for i in range(len(calm))],
        window_seconds=0.2,
        decay=0.5,
    )
    policy = BatchingPolicy(max_batch_size=8, max_wait_seconds=10.0)

    static = FleetRouter(
        PIRClient(num_records, record_size, seed=seed + 6, prg=make_prg("numpy")),
        database,
        plan,
        seed_heats,
        policy=policy,
    )
    static_records = static.retrieve_batch(stream)

    def run_once():
        hub = ObservabilityHub(slo=_slo_policy())
        autoscale = AutoscalePolicy(
            # Deliberately oversized capacity target: utilization never
            # nears the bands, so any scale-up can only be the alert path.
            target_heat_per_replica=1000.0,
            min_replicas=1,
            max_replicas=2,
            sustain_passes=2,
            evaluation_interval_seconds=0.2,
            cooldown_seconds=1.0,
        )
        router, plane = controlled_fleet(
            PIRClient(
                num_records, record_size, seed=seed + 6, prg=make_prg("numpy")
            ),
            database,
            plan,
            seed_heats,
            window_seconds=0.2,
            decay=0.5,
            rebalance_interval_seconds=0.4,
            split_heat_share=0.5,
            merge_heat_floor=1.0,
            min_shards=2,
            max_shards=8,
            autoscale=autoscale,
            policy=policy,
            hub=hub,
        )
        faults = [_LatencyFault(group) for group in router.replicas]
        router.replicas[:] = faults

        request_ids = []
        now = 0.0
        phases = (
            (calm, 0.0),
            (fault, penalty),
            (recovery, 0.0),
        )
        for indices, stall in phases:
            for wrapper in faults:
                wrapper.penalty_seconds = stall
            for index in indices:
                request_ids.append(router.submit(index, arrival_seconds=now))
                now += gap
        router.close()
        records = [router.take_record(request_id) for request_id in request_ids]
        return hub, router, plane, records

    hub, router, plane, records = run_once()
    hub_b, _router_b, _plane_b, records_b = run_once()

    if records != static_records:
        raise AssertionError("instrumented run drifted from the static fleet")
    if records_b != records:
        raise AssertionError("the two instrumented runs disagree on records")

    engine = hub.slo
    fired = [a for a in engine.history if a.severity == "fast"]
    if not fired:
        raise AssertionError("the injected fault never fired a fast-burn alert")
    if any(alert.active for alert in engine.history):
        raise AssertionError("an alert stayed active through the recovery phase")
    escalated = [
        action
        for action in plane.autoscaler.actions
        if action.reason == "slo-escalated"
    ]
    if not escalated:
        raise AssertionError("the fast-burn alert never escalated a scale-up")
    report_text = "\n".join(plane.describe())
    if "slo-escalated" not in report_text:
        raise AssertionError("escalated scale-up missing from the pass report")

    bundles = hub.recorder.incidents
    if not bundles:
        raise AssertionError("no incident bundle was recorded at alert-fire")
    for bundle in bundles:
        validate_bundle(bundle)
    dumps_a = [FlightRecorder.dump(bundle) for bundle in bundles]
    dumps_b = [FlightRecorder.dump(bundle) for bundle in hub_b.recorder.incidents]
    if dumps_a != dumps_b:
        raise AssertionError("incident bundles differ across identical runs")
    if hub.events.dropped:
        raise AssertionError(f"event log dropped {hub.events.dropped} event(s)")

    resolved_fast = next(a for a in fired if a.resolved_at is not None)
    lines = [
        "SLO smoke: burn-rate alerting over an injected latency fault",
        f"database: {num_records} records x {record_size} B, "
        f"{len(stream)} queries (calm {len(calm)} / fault {len(fault)} / "
        f"recovery {len(recovery)}), +{penalty * 1e3:.0f}ms stall during the fault",
        "",
    ]
    lines.extend(plane.describe())
    lines.append("")
    lines.extend(engine.describe())
    lines.append("")
    lines.extend(hub.recorder.describe())
    lines.append("")
    lines.append(
        f"{len(stream)} records verified bit-identical to the static fleet; "
        f"fast-burn alert fired @ {resolved_fast.fired_at:.3f}s, resolved @ "
        f"{resolved_fast.resolved_at:.3f}s; {len(escalated)} escalated "
        f"scale-up(s); {len(bundles)} incident bundle(s), deterministic "
        f"across two runs"
    )
    return "\n".join(lines)


def _drifting_workload(
    num_records: int, plan: ShardPlan, seed: int, half: int = 96
) -> Tuple[List[int], List[float]]:
    """The shared drifting Zipf stream: hot spot jumps first → last shard.

    Returns ``(stream, seed_heats)`` — the same workload the rebalance and
    resplit smokes drive, factored for the traced smoke and the report
    target (a third copy of the construction would drift).
    """
    first, last = plan.shards[0], plan.shards[-1]
    skew = zipf_trace(num_records, 2 * half, exponent=1.4, seed=seed + 5)
    offsets = [first.start] * half + [last.start] * half
    stream = [
        (offset + index) % num_records for offset, index in zip(offsets, skew)
    ]
    seed_heats = heats_from_trace(
        plan,
        stream[:half],
        arrival_seconds=[0.02 * i for i in range(half)],
        window_seconds=0.2,
        decay=0.5,
    )
    return stream, seed_heats


def _drive_controlled(
    database: Database,
    plan: ShardPlan,
    seed_heats: Sequence[float],
    stream: Sequence[int],
    seed: int,
    hub=None,
):
    """Drive the drifting stream through one controlled fleet.

    Arrivals 20ms apart on the simulated clock (heat windows roll,
    rebalance passes fire); returns ``(router, plane, records)``.  With a
    ``hub`` the fleet is fully instrumented; without one every telemetry
    slot stays ``None`` — the two runs must return bit-identical records.
    """
    router, plane = controlled_fleet(
        PIRClient(
            database.num_records,
            database.record_size,
            seed=seed + 6,
            prg=make_prg("numpy"),
        ),
        database,
        plan,
        seed_heats,
        window_seconds=0.2,
        decay=0.5,
        rebalance_interval_seconds=0.4,
        cache_capacity=16,
        admit_min_heat=1.0,
        dedup=True,
        policy=BatchingPolicy(max_batch_size=8, max_wait_seconds=10.0),
        hub=hub,
    )
    request_ids = []
    now = 0.0
    for index in stream:
        request_ids.append(router.submit(index, arrival_seconds=now))
        now += 0.02
    router.close()
    records = [router.take_record(request_id) for request_id in request_ids]
    return router, plane, records


def traced_smoke(
    num_records: int = 512,
    record_size: int = 32,
    seed: int = 9,
) -> str:
    """The ``--traced`` smoke: the observability hub is strictly read-only.

    Drives the drifting Zipf workload twice — once bare, once with an
    :class:`~repro.obs.hub.ObservabilityHub` attached — and asserts the
    observability acceptance properties:

    * the instrumented run's records are **bit-identical** to the bare
      run's (telemetry never touches the data plane);
    * at least one complete pipeline trace was reconstructed — request →
      server → phase leaves → per-shard scan spans — whose server span
      total equals the engine's ``PhaseTimer`` total *float-exactly*;
    * the event stream carried at least one ``rebalance.pass`` and the
      cache-hit counter is nonzero (the control plane is visible);
    * no event was dropped by any sink.
    """
    database = Database.random(num_records, record_size, seed=seed)
    plan = ShardPlan.uniform(num_records, 4, block_records=8)
    stream, seed_heats = _drifting_workload(num_records, plan, seed)

    _, _, bare_records = _drive_controlled(
        database, plan, seed_heats, stream, seed, hub=None
    )
    hub = ObservabilityHub()
    router, plane, records = _drive_controlled(
        database, plan, seed_heats, stream, seed, hub=hub
    )

    for index, record in zip(stream, records):
        if record != database.record(index):
            raise AssertionError(f"instrumented fleet returned a wrong record for {index}")
    if records != bare_records:
        raise AssertionError(
            "instrumented fleet drifted from the uninstrumented fleet's records"
        )
    if hub.events.dropped:
        raise AssertionError(
            f"sink chain dropped {hub.events.dropped} event(s): {hub.events.last_error!r}"
        )
    rebalance_events = hub.ring.named("rebalance.pass")
    if not rebalance_events:
        raise AssertionError("no rebalance.pass event reached the ring buffer")
    cache_hits = hub.registry.get("repro_cache_hits_total").total()
    if cache_hits <= 0:
        raise AssertionError("cache-hit counter never incremented")

    traces = hub.tracer.traces()
    if len(traces) != len(stream):
        raise AssertionError(
            f"expected one trace per request: {len(traces)} != {len(stream)}"
        )
    complete = 0
    for trace in traces:
        servers = trace.root.find(KIND_SERVER)
        if not servers:
            continue
        pipeline_complete = True
        for server in servers:
            engine_seconds = server.labels.get("engine_seconds")
            if engine_seconds is None or not server.find(KIND_PHASE):
                pipeline_complete = False
                break
            if server.seconds != engine_seconds:
                raise AssertionError(
                    f"trace {trace.trace_id}: span total {server.seconds!r} != "
                    f"engine PhaseTimer total {engine_seconds!r}"
                )
            if not server.find(KIND_SHARD):
                pipeline_complete = False
                break
        if pipeline_complete:
            complete += 1
    if complete < 1:
        raise AssertionError("no complete pipeline trace was reconstructed")

    counts = hub.ring.counts()
    lines = [
        "Traced smoke: the observability hub over the drifting-Zipf control plane",
        f"database: {num_records} records x {record_size} B, {len(stream)} queries",
        "",
        f"records bit-identical to the uninstrumented run: {len(records)}/{len(stream)}",
        f"traces: {len(traces)} ({complete} complete pipeline trees; span totals "
        f"== engine PhaseTimer totals, float-exact)",
        f"events: {sum(counts.values())} in ring "
        f"({', '.join(f'{name}={count}' for name, count in sorted(counts.items()))})",
        f"rebalance passes observed: {len(rebalance_events)}; "
        f"cache hits counted: {int(cache_hits)}",
        "",
        "slowest trace:",
    ]
    slowest = hub.tracer.slowest(1)
    if slowest:
        lines.extend(slowest[0].render())
    return "\n".join(lines)


def observability_report(
    num_records: int = 512,
    record_size: int = 32,
    seed: int = 9,
    top_n: int = 3,
) -> str:
    """The ``report`` target: a full hub report from one instrumented run."""
    database = Database.random(num_records, record_size, seed=seed)
    plan = ShardPlan.uniform(num_records, 4, block_records=8)
    stream, seed_heats = _drifting_workload(num_records, plan, seed)
    hub = ObservabilityHub()
    _drive_controlled(database, plan, seed_heats, stream, seed, hub=hub)
    header = [
        "Observability report: drifting Zipf workload through a controlled fleet",
        f"database: {num_records} records x {record_size} B, {len(stream)} queries",
        "",
    ]
    return "\n".join(header) + hub.report(top_n=top_n)


class _InFlightRecorder:
    """Wraps a replica and records the wall-clock window of each batch call.

    ``hold_seconds`` stretches every call so window overlap across replicas
    is a robust signal of concurrent dispatch even when the scans themselves
    finish in microseconds.
    """

    def __init__(self, inner, hold_seconds: float = 0.02) -> None:
        self._inner = inner
        self._hold_seconds = hold_seconds
        self.server_id = inner.server_id
        self.windows: List[Tuple[float, float]] = []

    def answer_batch(self, queries):
        start = time.monotonic()
        time.sleep(self._hold_seconds)
        result = self._inner.answer_batch(queries)
        self.windows.append((start, time.monotonic()))
        return result


def async_backend_smoke(
    num_records: int = 512,
    record_size: int = 32,
    indices: Sequence[int] = (0, 7, 255, 511),
    seed: int = 9,
) -> str:
    """The ``--async`` smoke: asyncio frontend over thread-parallel fleets.

    Exercises the wall-clock path end to end: concurrent submitters split
    into size batches, every flush fans out to both replica fleets at the
    same time (asserted from recorded in-flight windows), a lone trailing
    submit flushes on the real max-wait timer with no follow-up arrival, and
    all records cross-check bit-for-bit against the deterministic
    simulated-clock :class:`PIRFrontend` fed the same request stream.
    """
    database = Database.random(num_records, record_size, seed=seed)
    indices = list(indices)
    stream = indices + [indices[0]]

    def make_replicas():
        # Sharded fleets with the thread executor, so per-shard scans overlap
        # inside each replica while the frontend overlaps the replicas.
        return [
            create_server(
                "sharded", database, server_id=i, num_shards=4, executor="threads"
            )
            for i in (0, 1)
        ]

    sync_frontend = PIRFrontend(
        PIRClient(num_records, record_size, seed=seed + 4, prg=make_prg("numpy")),
        make_replicas(),
        policy=BatchingPolicy(max_batch_size=2),
    )
    expected = sync_frontend.retrieve_batch(stream)

    replicas = [_InFlightRecorder(replica) for replica in make_replicas()]
    frontend = AsyncPIRFrontend(
        PIRClient(num_records, record_size, seed=seed + 4, prg=make_prg("numpy")),
        replicas,
        policy=BatchingPolicy(max_batch_size=2, max_wait_seconds=0.05),
    )

    async def run() -> Tuple[List[bytes], bytes, float]:
        records = await frontend.retrieve_batch(indices)
        lone_start = time.monotonic()
        lone = await frontend.submit(stream[-1])
        return records, lone, time.monotonic() - lone_start

    records, lone, lone_seconds = asyncio.run(run())

    got = records + [lone]
    for index, record in zip(stream, got):
        if record != database.record(index):
            raise AssertionError(f"async frontend returned a wrong record for {index}")
    if got != expected:
        raise AssertionError("async frontend drifted from the sync frontend's records")
    if frontend.metrics.flush_reasons.get(FLUSH_ON_WAIT, 0) < 1:
        raise AssertionError(
            f"no wait-timer flush recorded: {frontend.metrics.flush_reasons}"
        )
    overlaps = 0
    for window_a, window_b in zip(replicas[0].windows, replicas[1].windows):
        if max(window_a[0], window_b[0]) >= min(window_a[1], window_b[1]):
            raise AssertionError(
                f"replica dispatch did not overlap: {window_a} vs {window_b}"
            )
        overlaps += 1

    return "\n".join(
        [
            "Async frontend smoke: wall-clock batching over thread-parallel fleets",
            f"database: {num_records} records x {record_size} B, stream {stream}",
            "",
            f"records verified against the sync frontend: {len(got)}/{len(stream)}",
            f"flush reasons: {frontend.metrics.flush_reasons}",
            f"lone submit flushed by the max-wait timer after "
            f"{format_seconds(lone_seconds)} (no follow-up arrival)",
            f"replica fan-out overlapped in {overlaps}/{len(replicas[0].windows)} "
            f"batches (recorded in-flight windows)",
        ]
    )


def batched_smoke(
    num_records: int = 512,
    record_size: int = 32,
    batch_size: int = 6,
    seed: int = 9,
    segment_records: Optional[int] = 128,
) -> str:
    """The ``--batched`` smoke: one-pass batch scans against per-query answers.

    For every registered backend — plus the sharded backend's ``threads``
    executor, whose workers scan in parallel — this answers the same query
    batch twice: once through the sequential :meth:`QueryEngine.answer` loop,
    once through the batched :meth:`QueryEngine.answer_many` /
    ``execute_many`` path.  It asserts the documented cost contract of the
    batched fast path, per backend kind:

    * the answer payloads are bit-identical, everywhere;
    * on **host-side** backends every simulated phase except ``eval`` charges
      exactly the same seconds, and the ``execute_many`` override agrees
      byte-for-byte *and* phase-for-phase with the generic per-row fallback
      (``eval`` legitimately differs: the batch path uses the backend's batch
      cost model, the per-query path its latency model);
    * on the **PIM** backends (``im-pir``, ``im-pir-streamed``) the batched
      path pays its fixed per-dispatch charges — transfer latency, launch
      overhead, the streamed segment copy — once per batch instead of once
      per query: the phase set is unchanged, the host-side ``aggregate``
      charge stays exactly per-query, and every other phase's batch total is
      strictly below the sequential total (see
      :func:`~repro.core.partitioning.run_dpu_pipeline_many` for the
      formula; scan work itself is never discounted).
    """
    import numpy as np

    from repro.common.events import PhaseTimer
    from repro.core.engine import PIRBackend

    pim_kinds = {"im-pir", "im-pir-streamed"}

    def amortizable(phases):
        return sorted(set(phases) - {"eval", "aggregate"})

    def non_eval(timer):
        return {k: v for k, v in timer.durations.items() if k != "eval"}

    def check_amortized(label, sequential_timers, batched_timers):
        seq_phases = {k for t in sequential_timers for k in non_eval(t)}
        bat_phases = {k for t in batched_timers for k in non_eval(t)}
        if bat_phases != seq_phases:
            raise AssertionError(
                f"backend {label!r}: batched phase set drifted: "
                f"{sorted(seq_phases)} vs {sorted(bat_phases)}"
            )
        for seq, bat in zip(sequential_timers, batched_timers):
            if abs(seq.get("aggregate") - bat.get("aggregate")) > 1e-12:
                raise AssertionError(
                    f"backend {label!r}: aggregate must stay per-query"
                )
        for phase in amortizable(seq_phases):
            seq_total = sum(t.get(phase) for t in sequential_timers)
            bat_total = sum(t.get(phase) for t in batched_timers)
            if not bat_total < seq_total:
                raise AssertionError(
                    f"backend {label!r}: phase {phase!r} did not amortise "
                    f"({bat_total} vs sequential {seq_total})"
                )

    database = Database.random(num_records, record_size, seed=seed)
    client = PIRClient(num_records, record_size, seed=seed + 1, prg=make_prg("numpy"))
    queries = [
        client.query((i * 97) % num_records)[0] for i in range(batch_size)
    ]

    variants: List[tuple] = []
    for name in available_backends():
        kwargs = {"segment_records": segment_records} if name == "im-pir-streamed" else {}
        variants.append((name, name, kwargs))
    variants.append(("sharded/threads", "sharded", {"executor": "threads"}))

    lines: List[str] = [
        "Batched smoke: execute_many against the sequential per-query path",
        f"database: {num_records} records x {record_size} B, batch of {batch_size}",
        "",
        f"{'backend':>16} {'payloads':>9} {'phases':>10} {'fallback':>10}",
    ]
    for label, name, kwargs in variants:
        engine = create_server(name, database, server_id=0, **kwargs).engine
        is_pim = name in pim_kinds

        sequential = [engine.answer(query) for query in queries]
        batched = engine.answer_many(queries)
        if any(
            s.answer.payload != b.answer.payload
            for s, b in zip(sequential, batched.results)
        ):
            raise AssertionError(f"backend {label!r}: batched payloads drifted")
        if is_pim:
            check_amortized(
                label,
                [s.breakdown for s in sequential],
                [b.breakdown for b in batched.results],
            )
        else:
            for s, b in zip(sequential, batched.results):
                if non_eval(s.breakdown) != non_eval(b.breakdown):
                    raise AssertionError(
                        f"backend {label!r}: batched simulated phases drifted: "
                        f"{non_eval(s.breakdown)} vs {non_eval(b.breakdown)}"
                    )

        selectors = engine.selector_matrix(queries)
        lanes = [0] * batch_size
        override_timers = [PhaseTimer() for _ in queries]
        fallback_timers = [PhaseTimer() for _ in queries]
        got = engine.backend.execute_many(selectors, override_timers, lanes)
        want = PIRBackend.execute_many(
            engine.backend, selectors, fallback_timers, lanes
        )
        if not np.array_equal(got, want):
            raise AssertionError(
                f"backend {label!r}: execute_many override drifted from fallback"
            )
        if is_pim:
            check_amortized(label, fallback_timers, override_timers)
        elif any(
            a.durations != b.durations
            for a, b in zip(override_timers, fallback_timers)
        ):
            raise AssertionError(
                f"backend {label!r}: execute_many override charges different phases"
            )
        verdict = "amortized" if is_pim else "equal"
        lines.append(f"{label:>16} {'ok':>9} {verdict:>10} {'ok':>10}")

    lines.append("")
    lines.append(
        f"{len(variants)} backend variants answer batches bit-identically to "
        f"the per-query path (host-side costs unchanged; PIM per-dispatch "
        f"charges amortized once per batch)."
    )
    return "\n".join(lines)
