"""Per-figure data generators.

Each function regenerates the data behind one of the paper's tables or
figures from the analytic estimators, returning plain dataclasses the
benchmark modules print and the tests assert against.  The functional
counterparts (small-database end-to-end runs through the simulators) live in
the benchmark modules themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.breakdown import BreakdownTable
from repro.analysis.metrics import SpeedupReport, SweepSeries, compute_speedup
from repro.analysis.roofline import (
    RooflineModel,
    RooflinePoint,
    dpf_eval_characteristics,
    dpxor_characteristics,
    key_gen_characteristics,
)
from repro.bench import paper_reference as paper
from repro.bench.estimators import (
    CPUEstimator,
    GPUEstimator,
    IMPIREstimator,
    MotivationBreakdown,
    MotivationEstimator,
)
from repro.core.config import IMPIRConfig
from repro.core.results import ALL_PHASES, PHASE_DPXOR, PHASE_EVAL
from repro.cpu.config import CPUConfig
from repro.gpu.config import GPUConfig
from repro.workloads.generator import DatabaseSpec

DEFAULT_BATCH = paper.PAPER_DEFAULT_BATCH


# ---------------------------------------------------------------------------
# Figure 3 — motivation: DPF-PIR cost breakdown and roofline.
# ---------------------------------------------------------------------------


@dataclass
class Fig3Result:
    """Fig. 3(a) breakdown rows plus Fig. 3(b) roofline placements."""

    breakdowns: List[MotivationBreakdown] = field(default_factory=list)
    roofline_points: List[RooflinePoint] = field(default_factory=list)
    ridge_point: float = 0.0


def fig3_motivation(
    db_sizes_gib: Sequence[float] = (1.0, 2.0, 4.0),
    cpu_config: Optional[CPUConfig] = None,
) -> Fig3Result:
    """Regenerate Fig. 3: per-phase times and the roofline placement."""
    cpu_config = cpu_config if cpu_config is not None else CPUConfig()
    estimator = MotivationEstimator(cpu_config)
    breakdowns = [estimator.breakdown(size) for size in db_sizes_gib]

    # Roofline of the baseline server: peak scalar+AVX ops vs DRAM bandwidth.
    peak_gops = cpu_config.total_cores * cpu_config.frequency_hz * 8 / 1e9
    roofline = RooflineModel(
        peak_gops=peak_gops, memory_bandwidth_gbps=cpu_config.dram_peak_bandwidth / 1e9
    )
    largest = DatabaseSpec.from_size_gib(max(db_sizes_gib))
    kernels = [
        dpxor_characteristics(largest.size_bytes, largest.record_size),
        dpf_eval_characteristics(largest.num_records),
        key_gen_characteristics(max(1, (largest.num_records - 1).bit_length())),
    ]
    return Fig3Result(
        breakdowns=breakdowns,
        roofline_points=roofline.place_all(kernels),
        ridge_point=roofline.ridge_point,
    )


# ---------------------------------------------------------------------------
# Figure 9 — throughput/latency vs DB size and batch size.
# ---------------------------------------------------------------------------


@dataclass
class Fig9Result:
    """The four panels of Fig. 9 as named sweep series plus speedup reports."""

    vs_db_size: Dict[str, SweepSeries] = field(default_factory=dict)
    vs_batch_size: Dict[str, SweepSeries] = field(default_factory=dict)
    speedup_vs_db_size: Optional[SpeedupReport] = None
    speedup_vs_batch_size: Optional[SpeedupReport] = None


def fig9_throughput_latency(
    db_sizes_gib: Sequence[float] = paper.PAPER_FIG9_DB_SIZES_GIB,
    batch_sizes: Sequence[int] = paper.PAPER_BATCH_SIZES,
    batch_for_db_sweep: int = DEFAULT_BATCH,
    db_gib_for_batch_sweep: float = 1.0,
    impir_config: Optional[IMPIRConfig] = None,
    cpu_config: Optional[CPUConfig] = None,
) -> Fig9Result:
    """Regenerate Fig. 9(a-d): CPU-PIR vs IM-PIR sweeps."""
    impir = IMPIREstimator(impir_config)
    cpu = CPUEstimator(cpu_config)
    result = Fig9Result()

    impir_db = SweepSeries("IM-PIR", "db_size_gib")
    cpu_db = SweepSeries("CPU-PIR", "db_size_gib")
    # The paper's throughput pipeline dispatches every query's selectors,
    # launch and gather individually; amortized batched dispatch is this
    # repo's own optimisation, so the reproduced figures model the paper.
    for size in db_sizes_gib:
        spec = DatabaseSpec.from_size_gib(size)
        impir_est = impir.batch_estimate(spec, batch_for_db_sweep, amortize_dispatch=False)
        cpu_est = cpu.batch_estimate(spec, batch_for_db_sweep)
        impir_db.add(size, impir_est.latency_seconds, impir_est.throughput_qps)
        cpu_db.add(size, cpu_est.latency_seconds, cpu_est.throughput_qps)
    result.vs_db_size = {"IM-PIR": impir_db, "CPU-PIR": cpu_db}
    result.speedup_vs_db_size = compute_speedup(impir_db, cpu_db)

    impir_batch = SweepSeries("IM-PIR", "batch_size")
    cpu_batch = SweepSeries("CPU-PIR", "batch_size")
    spec = DatabaseSpec.from_size_gib(db_gib_for_batch_sweep)
    for batch in batch_sizes:
        impir_est = impir.batch_estimate(spec, batch, amortize_dispatch=False)
        cpu_est = cpu.batch_estimate(spec, batch)
        impir_batch.add(batch, impir_est.latency_seconds, impir_est.throughput_qps)
        cpu_batch.add(batch, cpu_est.latency_seconds, cpu_est.throughput_qps)
    result.vs_batch_size = {"IM-PIR": impir_batch, "CPU-PIR": cpu_batch}
    result.speedup_vs_batch_size = compute_speedup(impir_batch, cpu_batch)
    return result


# ---------------------------------------------------------------------------
# Figure 10 / Table 1 — latency breakdown per phase.
# ---------------------------------------------------------------------------


@dataclass
class Fig10Result:
    """Breakdown tables for IM-PIR and CPU-PIR plus the Table 1 fractions."""

    impir_table: BreakdownTable = field(default_factory=lambda: BreakdownTable(ALL_PHASES))
    cpu_table: BreakdownTable = field(
        default_factory=lambda: BreakdownTable([PHASE_EVAL, PHASE_DPXOR])
    )
    impir_fractions: Dict[str, float] = field(default_factory=dict)
    cpu_fractions: Dict[str, float] = field(default_factory=dict)


def fig10_breakdown(
    db_sizes_gib: Sequence[float] = paper.PAPER_FIG10_DB_SIZES_GIB,
    impir_config: Optional[IMPIRConfig] = None,
    cpu_config: Optional[CPUConfig] = None,
) -> Fig10Result:
    """Regenerate Fig. 10 and the Table 1 averages."""
    impir = IMPIREstimator(impir_config)
    cpu = CPUEstimator(cpu_config)
    result = Fig10Result()
    for size in db_sizes_gib:
        spec = DatabaseSpec.from_size_gib(size)
        result.impir_table.add_row(f"{size:g} GB", impir.query_breakdown(spec))
        result.cpu_table.add_row(f"{size:g} GB", cpu.query_breakdown(spec))
    result.impir_fractions = result.impir_table.average_fractions()
    result.cpu_fractions = result.cpu_table.average_fractions()
    return result


def table1_phase_contributions(
    db_sizes_gib: Sequence[float] = paper.PAPER_FIG10_DB_SIZES_GIB,
    impir_config: Optional[IMPIRConfig] = None,
    cpu_config: Optional[CPUConfig] = None,
) -> Fig10Result:
    """Table 1 is the average of the Fig. 10 sweep; reuse the same generator."""
    return fig10_breakdown(db_sizes_gib, impir_config=impir_config, cpu_config=cpu_config)


# ---------------------------------------------------------------------------
# Figure 11 — DPU clustering.
# ---------------------------------------------------------------------------


@dataclass
class Fig11Result:
    """Throughput/latency per cluster count, and the max gain over one cluster."""

    series_by_clusters: Dict[int, SweepSeries] = field(default_factory=dict)
    max_gain_over_single_cluster: float = 0.0


def fig11_clustering(
    cluster_counts: Sequence[int] = paper.PAPER_FIG11_CLUSTERS,
    batch_sizes: Sequence[int] = paper.PAPER_FIG11_BATCH_SIZES,
    db_size_gib: float = 1.0,
    impir_config: Optional[IMPIRConfig] = None,
) -> Fig11Result:
    """Regenerate Fig. 11: effect of DPU clustering on batch processing."""
    base_config = impir_config if impir_config is not None else IMPIRConfig()
    spec = DatabaseSpec.from_size_gib(db_size_gib)
    result = Fig11Result()
    for clusters in cluster_counts:
        estimator = IMPIREstimator(base_config.with_clusters(clusters))
        series = SweepSeries(f"{clusters} cluster(s)", "batch_size")
        for batch in batch_sizes:
            estimate = estimator.batch_estimate(spec, batch, amortize_dispatch=False)
            series.add(batch, estimate.latency_seconds, estimate.throughput_qps)
        result.series_by_clusters[clusters] = series

    if 1 in result.series_by_clusters:
        single = result.series_by_clusters[1]
        best_gain = 0.0
        for clusters, series in result.series_by_clusters.items():
            if clusters == 1:
                continue
            for point, base_point in zip(series.points, single.points):
                if base_point.throughput_qps > 0:
                    best_gain = max(best_gain, point.throughput_qps / base_point.throughput_qps)
        result.max_gain_over_single_cluster = best_gain
    return result


# ---------------------------------------------------------------------------
# Figure 12 — comparison with GPU-PIR.
# ---------------------------------------------------------------------------


@dataclass
class Fig12Result:
    """CPU vs IM-PIR vs GPU series plus pairwise speedup reports."""

    series: Dict[str, SweepSeries] = field(default_factory=dict)
    impir_over_gpu: Optional[SpeedupReport] = None
    gpu_over_cpu: Optional[SpeedupReport] = None
    impir_over_cpu: Optional[SpeedupReport] = None


def fig12_gpu_comparison(
    db_sizes_gib: Sequence[float] = paper.PAPER_FIG12_DB_SIZES_GIB,
    batch_size: int = DEFAULT_BATCH,
    impir_config: Optional[IMPIRConfig] = None,
    cpu_config: Optional[CPUConfig] = None,
    gpu_config: Optional[GPUConfig] = None,
) -> Fig12Result:
    """Regenerate Fig. 12: CPU-PIR vs IM-PIR vs GPU-PIR on small databases."""
    impir = IMPIREstimator(impir_config)
    cpu = CPUEstimator(cpu_config)
    gpu = GPUEstimator(gpu_config)

    impir_series = SweepSeries("IM-PIR", "db_size_gib")
    cpu_series = SweepSeries("CPU-PIR", "db_size_gib")
    gpu_series = SweepSeries("GPU-PIR", "db_size_gib")
    for size in db_sizes_gib:
        spec = DatabaseSpec.from_size_gib(size)
        for estimator, series in (
            (impir, impir_series),
            (cpu, cpu_series),
            (gpu, gpu_series),
        ):
            if estimator is impir:
                estimate = estimator.batch_estimate(
                    spec, batch_size, amortize_dispatch=False
                )
            else:
                estimate = estimator.batch_estimate(spec, batch_size)
            series.add(size, estimate.latency_seconds, estimate.throughput_qps)

    result = Fig12Result(
        series={"IM-PIR": impir_series, "CPU-PIR": cpu_series, "GPU-PIR": gpu_series}
    )
    result.impir_over_gpu = compute_speedup(impir_series, gpu_series)
    result.gpu_over_cpu = compute_speedup(gpu_series, cpu_series)
    result.impir_over_cpu = compute_speedup(impir_series, cpu_series)
    return result
