"""Analytic estimators evaluating the cost models at paper-scale parameters.

Gigabyte databases cannot be materialised as numpy arrays in this
environment, so the benchmark harness regenerates the paper's figures from
the *same cost formulas the functional simulators use*, evaluated on computed
byte/op counts.  Every duration produced here flows through
:class:`~repro.pim.timing.PIMTimingModel`, :class:`~repro.cpu.model.CPUModel`
or :class:`~repro.gpu.model.GPUModel` — the functional path and the analytic
path cannot disagree about the model because they share the code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.common.events import PhaseTimer
from repro.core.config import IMPIRConfig
from repro.core.engine import BackendCapabilities, batch_scheduler_for
from repro.core.results import (
    PHASE_AGGREGATE,
    PHASE_COPY_IN,
    PHASE_COPY_OUT,
    PHASE_DPXOR,
    PHASE_EVAL,
)
from repro.cpu.config import CPUConfig
from repro.cpu.model import CPUModel
from repro.gpu.config import GPUConfig
from repro.gpu.model import GPUModel
from repro.pim.timing import PIMTimingModel
from repro.workloads.generator import HASH_RECORD_SIZE, DatabaseSpec


@dataclass
class SystemEstimate:
    """Latency/throughput estimate for one system at one operating point."""

    system: str
    batch_size: int
    latency_seconds: float
    throughput_qps: float
    per_query_breakdown: PhaseTimer

    @property
    def per_query_latency(self) -> float:
        """Mean per-query latency implied by the makespan."""
        return self.latency_seconds / self.batch_size if self.batch_size else 0.0


class IMPIREstimator:
    """Paper-scale cost estimates for the IM-PIR server."""

    def __init__(self, config: Optional[IMPIRConfig] = None) -> None:
        self.config = config if config is not None else IMPIRConfig()
        self.timing = PIMTimingModel(self.config.pim)

    # -- per-query DPU-side chain --------------------------------------------------------

    def dpu_chain_breakdown(self, spec: DatabaseSpec, dpus: Optional[int] = None) -> PhaseTimer:
        """Phases ➌–➏ for one query served by ``dpus`` DPUs holding the full DB."""
        dpus = self.config.pim.num_dpus if dpus is None else dpus
        if dpus <= 0:
            raise ConfigurationError("dpus must be positive")
        timer = PhaseTimer()

        records_per_dpu = -(-spec.num_records // dpus)
        selector_bytes = dpus * ((records_per_dpu + 7) // 8)
        timer.record(PHASE_COPY_IN, self.timing.host_to_dpu_seconds(selector_bytes))

        chunk_bytes = records_per_dpu * spec.record_size
        kernel = self.timing.dpu_dpxor_cost(chunk_bytes, spec.record_size)
        timer.record(PHASE_DPXOR, self.timing.launch_seconds(dpus) + kernel.total_seconds)

        timer.record(PHASE_COPY_OUT, self.timing.dpu_to_host_seconds(dpus * spec.record_size))
        timer.record(PHASE_AGGREGATE, self.timing.host_aggregate_xor_seconds(dpus, spec.record_size))
        return timer

    def batched_dpu_chain_breakdown(
        self, spec: DatabaseSpec, batch_rows: int, dpus: Optional[int] = None
    ) -> PhaseTimer:
        """Per-query share of phases ➌–➏ when ``batch_rows`` queries share one dispatch.

        Mirrors :func:`~repro.core.partitioning.run_dpu_pipeline_many`'s cost
        model: one selector broadcast, one kernel launch and one result
        gather serve the whole sub-batch, so the fixed per-dispatch charges
        (transfer latency, launch overhead) split evenly across its rows
        while per-row bandwidth, kernel compute and the host fold stay
        per-query.  ``batch_rows == 1`` is exactly
        :meth:`dpu_chain_breakdown`.
        """
        dpus = self.config.pim.num_dpus if dpus is None else dpus
        if dpus <= 0:
            raise ConfigurationError("dpus must be positive")
        if batch_rows <= 0:
            raise ConfigurationError("batch_rows must be positive")
        timer = PhaseTimer()

        records_per_dpu = -(-spec.num_records // dpus)
        selector_bytes = dpus * ((records_per_dpu + 7) // 8)
        timer.record(
            PHASE_COPY_IN,
            self.timing.host_to_dpu_seconds(batch_rows * selector_bytes) / batch_rows,
        )

        chunk_bytes = records_per_dpu * spec.record_size
        kernel = self.timing.dpu_dpxor_cost(chunk_bytes, spec.record_size)
        timer.record(
            PHASE_DPXOR,
            self.timing.launch_seconds(dpus) / batch_rows + kernel.total_seconds,
        )

        timer.record(
            PHASE_COPY_OUT,
            self.timing.dpu_to_host_seconds(batch_rows * dpus * spec.record_size)
            / batch_rows,
        )
        timer.record(PHASE_AGGREGATE, self.timing.host_aggregate_xor_seconds(dpus, spec.record_size))
        return timer

    # -- latency mode (Fig. 10) --------------------------------------------------------------

    def query_breakdown(self, spec: DatabaseSpec) -> PhaseTimer:
        """Single-query latency breakdown with the whole host evaluating the key."""
        timer = PhaseTimer()
        timer.record(
            PHASE_EVAL,
            self.timing.host_dpf_eval_seconds(
                spec.num_records,
                blocks_per_leaf=self.config.blocks_per_leaf,
                threads=self.config.effective_latency_threads,
            ),
        )
        timer.merge(self.dpu_chain_breakdown(spec, dpus=self.config.pim.num_dpus))
        return timer

    def single_query_latency(self, spec: DatabaseSpec) -> float:
        """Total single-query latency."""
        return self.query_breakdown(spec).total

    # -- batch mode (Fig. 9 / 11) ----------------------------------------------------------------

    def batch_estimate(
        self, spec: DatabaseSpec, batch_size: int, amortize_dispatch: bool = True
    ) -> SystemEstimate:
        """Makespan/throughput of a batch through the worker/cluster pipeline.

        By default each cluster serves its round-robin share of the batch
        through one batched DPU dispatch (:meth:`batched_dpu_chain_breakdown`),
        exactly like the functional ``execute_many`` path — the analytic
        makespan amortizes per-dispatch overheads at the same per-lane
        sub-batch size the engine's lane assignment produces.
        ``amortize_dispatch=False`` models the paper's own throughput
        pipeline instead, where every query pays its own selector broadcast,
        kernel launch and result gather — the figure harness uses it so the
        reproduced trends stay calibrated to the paper's measurements rather
        than to this repo's batched-dispatch optimisation.
        """
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        num_clusters = self.config.num_clusters
        dpus_per_cluster = self.config.pim.num_dpus // num_clusters
        if dpus_per_cluster <= 0:
            raise ConfigurationError("more clusters than DPUs")

        eval_seconds = self.timing.host_dpf_eval_seconds(
            spec.num_records, blocks_per_leaf=self.config.blocks_per_leaf, threads=1
        )
        rows_per_cluster = -(-batch_size // num_clusters) if amortize_dispatch else 1
        chain = self.batched_dpu_chain_breakdown(
            spec, rows_per_cluster, dpus=dpus_per_cluster
        )
        dpu_seconds = chain.total

        # The same scheduler-sizing rule the functional QueryEngine applies,
        # driven by the same capability description of the platform.
        caps = BackendCapabilities(
            name="im-pir",
            lanes=num_clusters,
            batch_workers=self.config.effective_eval_workers,
        )
        scheduler = batch_scheduler_for(caps, batch_size)
        schedule = scheduler.schedule_uniform(batch_size, eval_seconds, dpu_seconds)

        per_query = PhaseTimer()
        per_query.record(PHASE_EVAL, eval_seconds)
        per_query.merge(chain)
        return SystemEstimate(
            system="IM-PIR",
            batch_size=batch_size,
            latency_seconds=schedule.makespan,
            throughput_qps=schedule.throughput_qps,
            per_query_breakdown=per_query,
        )


class CPUEstimator:
    """Paper-scale cost estimates for the CPU-PIR baseline."""

    def __init__(self, config: Optional[CPUConfig] = None) -> None:
        self.config = config if config is not None else CPUConfig()
        self.model = CPUModel(self.config)

    def query_breakdown(self, spec: DatabaseSpec) -> PhaseTimer:
        """Single-query latency breakdown (whole machine)."""
        return self.model.single_query_breakdown(spec.num_records, spec.record_size)

    def batch_estimate(self, spec: DatabaseSpec, batch_size: int) -> SystemEstimate:
        """Batch-mode (one thread per query) estimate."""
        estimate = self.model.batch_estimate(spec.num_records, spec.record_size, batch_size)
        return SystemEstimate(
            system="CPU-PIR",
            batch_size=batch_size,
            latency_seconds=estimate.latency_seconds,
            throughput_qps=estimate.throughput_qps,
            per_query_breakdown=estimate.per_query_breakdown,
        )


class GPUEstimator:
    """Paper-scale cost estimates for the GPU-PIR baseline."""

    def __init__(self, config: Optional[GPUConfig] = None) -> None:
        self.config = config if config is not None else GPUConfig()
        self.model = GPUModel(self.config)

    def query_breakdown(self, spec: DatabaseSpec) -> PhaseTimer:
        """Single-query latency breakdown on the GPU."""
        return self.model.single_query_breakdown(spec.num_records, spec.record_size)

    def batch_estimate(self, spec: DatabaseSpec, batch_size: int) -> SystemEstimate:
        """Batch-mode estimate on the GPU."""
        estimate = self.model.batch_estimate(spec.num_records, spec.record_size, batch_size)
        return SystemEstimate(
            system="GPU-PIR",
            batch_size=batch_size,
            latency_seconds=estimate.latency_seconds,
            throughput_qps=estimate.throughput_qps,
            per_query_breakdown=estimate.per_query_breakdown,
        )


@dataclass
class MotivationBreakdown:
    """Gen/Eval/dpXOR times for the single-threaded DPF-PIR of Fig. 3(a)."""

    db_size_gib: float
    gen_seconds: float
    eval_seconds: float
    dpxor_seconds: float

    @property
    def total_seconds(self) -> float:
        """Total single-query server+client time."""
        return self.gen_seconds + self.eval_seconds + self.dpxor_seconds


class MotivationEstimator:
    """Reproduces the paper's Fig. 3 motivation experiment (single CPU thread).

    The motivation measurement profiles an out-of-the-box DPF-PIR: one thread
    performs key generation, full-domain evaluation (well-batched AES-NI) and
    a naive per-record conditional-XOR scan over databases of 1-4 GB.  That
    unoptimised scan is what makes dpXOR dominate by roughly an order of
    magnitude over Eval, which in turn dwarfs Gen — the spread Fig. 3 reports
    and the observation that motivates offloading dpXOR to PIM.
    """

    #: Cost of one client-side Gen level (PRG expansions, correction-word
    #: arithmetic, key serialisation).
    GEN_SECONDS_PER_LEVEL = 1.6e-5
    #: Single-thread full-domain evaluation rate (leaves/second) with batched
    #: AES-NI and no materialised intermediate levels.
    EVAL_LEAVES_PER_SECOND = 300e6
    #: Naive single-thread conditional-XOR scan rate (bytes/second): byte-wise
    #: accumulation with an unpredictable branch per record.
    NAIVE_DPXOR_BYTES_PER_SECOND = 1.3e9

    def __init__(self, config: Optional[CPUConfig] = None) -> None:
        self.config = config if config is not None else CPUConfig()
        self.model = CPUModel(self.config)

    def breakdown(self, db_size_gib: float, record_size: int = HASH_RECORD_SIZE) -> MotivationBreakdown:
        """Gen/Eval/dpXOR times for one query over a ``db_size_gib`` database."""
        spec = DatabaseSpec.from_size_gib(db_size_gib, record_size)
        domain_bits = max(1, (spec.num_records - 1).bit_length())
        gen_seconds = domain_bits * self.GEN_SECONDS_PER_LEVEL
        eval_seconds = spec.num_records / self.EVAL_LEAVES_PER_SECOND
        dpxor_seconds = spec.size_bytes / self.NAIVE_DPXOR_BYTES_PER_SECOND
        return MotivationBreakdown(
            db_size_gib=db_size_gib,
            gen_seconds=gen_seconds,
            eval_seconds=eval_seconds,
            dpxor_seconds=dpxor_seconds,
        )
