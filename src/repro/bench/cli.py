"""Command-line entry point for regenerating the paper's evaluation.

Usage (after ``pip install -e .``)::

    python -m repro.bench.cli list            # what can be regenerated
    python -m repro.bench.cli fig9            # one figure
    python -m repro.bench.cli all             # the whole evaluation section

The output is the same plain-text rendering the benchmark harness prints; the
CLI exists so the figures can be regenerated without pytest, e.g. from a
notebook or a shell pipeline.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.bench.figures import (
    fig3_motivation,
    fig9_throughput_latency,
    fig10_breakdown,
    fig11_clustering,
    fig12_gpu_comparison,
)
from repro.bench.perf import (
    DEFAULT_HISTORY_DIR,
    render_bench,
    run_bench,
)
from repro.bench.smoke import (
    async_backend_smoke,
    autoscale_smoke,
    backend_smoke,
    batched_smoke,
    slo_smoke,
    observability_report,
    rebalance_smoke,
    resplit_smoke,
    traced_smoke,
)
from repro.bench.reporting import (
    render_fig3,
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
    render_table1,
)


def _run_fig10_and_table1() -> str:
    result = fig10_breakdown()
    return render_fig10(result) + "\n\n" + render_table1(result)


_TARGETS: Dict[str, Callable[[], str]] = {
    "fig3": lambda: render_fig3(fig3_motivation()),
    "fig9": lambda: render_fig9(fig9_throughput_latency()),
    "fig10": _run_fig10_and_table1,
    "table1": lambda: render_table1(fig10_breakdown()),
    "fig11": lambda: render_fig11(fig11_clustering()),
    "fig12": lambda: render_fig12(fig12_gpu_comparison()),
    "smoke": backend_smoke,
}


def available_targets() -> tuple:
    """Names accepted by the CLI (plus the pseudo-targets ``all``/``list``)."""
    return tuple(_TARGETS)


def run_target(name: str) -> str:
    """Regenerate one target and return its text rendering."""
    try:
        producer = _TARGETS[name]
    except KeyError:
        raise ValueError(
            f"unknown target {name!r}; valid targets: {', '.join(_TARGETS)}"
        ) from None
    return producer()


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-figures",
        description="Regenerate the IM-PIR paper's tables and figures from the cost models.",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default="all",
        help="one of: %s, bench, report, all, list (default: all)" % ", ".join(_TARGETS),
    )
    parser.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="with the smoke target: drive the asyncio frontend "
        "(real max-wait timers, concurrent replica dispatch) instead of the "
        "simulated-clock one",
    )
    parser.add_argument(
        "--rebalance",
        dest="use_rebalance",
        action="store_true",
        help="with the smoke target: drive a drifting Zipf workload through "
        "the online control plane (heat telemetry, live shard migration, "
        "hot-record cache) and cross-check records against a static fleet",
    )
    parser.add_argument(
        "--resplit",
        dest="use_resplit",
        action="store_true",
        help="with the smoke target: drive the drifting Zipf workload with "
        "the plan-shape policy enabled (online shard split/merge, versioned "
        "topology, heat remap) and cross-check records against a static fleet",
    )
    parser.add_argument(
        "--autoscale",
        dest="use_autoscale",
        action="store_true",
        help="with the smoke target: drive a surging Zipf workload through "
        "the closed-loop autoscaler (replica elasticity, cost-damped "
        "reshapes) and cross-check records against a static fleet",
    )
    parser.add_argument(
        "--slo",
        dest="use_slo",
        action="store_true",
        help="with the smoke target: drive calm -> injected latency fault -> "
        "recovery through the SLO engine, asserting the fast-burn alert "
        "fires and resolves, the alert-escalated scale-up lands, incident "
        "bundles are deterministic, and records match a static fleet",
    )
    parser.add_argument(
        "--batched",
        dest="use_batched",
        action="store_true",
        help="with the smoke target: answer the same batch through the "
        "sequential per-query path and the batched execute_many path on "
        "every backend, asserting bit-identical payloads and simulated costs",
    )
    parser.add_argument(
        "--traced",
        dest="use_traced",
        action="store_true",
        help="with the smoke target: drive the drifting workload bare and "
        "with the observability hub attached, asserting bit-identical "
        "records, float-exact span/PhaseTimer agreement, and visible "
        "rebalance + cache activity",
    )
    parser.add_argument(
        "--quick",
        dest="use_quick",
        action="store_true",
        help="with the bench target: a small shape without the JSON "
        "artifact, asserting the batched path is no slower than sequential",
    )
    args = parser.parse_args(argv)

    smoke_flags = {
        "--async": args.use_async,
        "--rebalance": args.use_rebalance,
        "--resplit": args.use_resplit,
        "--autoscale": args.use_autoscale,
        "--slo": args.use_slo,
        "--batched": args.use_batched,
        "--traced": args.use_traced,
    }
    selected = [flag for flag, enabled in smoke_flags.items() if enabled]
    if selected:
        if args.target != "smoke":
            print(f"{selected[0]} applies to the smoke target only", file=sys.stderr)
            return 2
        if len(selected) > 1:
            print(
                "pick one of --async / --rebalance / --resplit / --autoscale / "
                "--slo / --batched / --traced per run",
                file=sys.stderr,
            )
            return 2
        if args.use_async:
            print(async_backend_smoke())
        elif args.use_rebalance:
            print(rebalance_smoke())
        elif args.use_resplit:
            print(resplit_smoke())
        elif args.use_autoscale:
            print(autoscale_smoke())
        elif args.use_slo:
            print(slo_smoke())
        elif args.use_traced:
            print(traced_smoke())
        else:
            print(batched_smoke())
        return 0

    if args.use_quick and args.target != "bench":
        print("--quick applies to the bench target only", file=sys.stderr)
        return 2
    if args.target == "bench":
        metrics = run_bench(
            quick=args.use_quick,
            output_path=None,
            history_dir=None if args.use_quick else DEFAULT_HISTORY_DIR,
        )
        print(render_bench(metrics))
        if not args.use_quick:
            print(f"\narchived to {metrics['archived_to']}")
        return 0

    if args.target == "report":
        print(observability_report())
        return 0

    if args.target == "list":
        print("\n".join(list(_TARGETS) + ["bench", "report", "all"]))
        return 0
    if args.target == "all":
        for name in _TARGETS:
            print("=" * 100)
            print(run_target(name))
            print()
        return 0
    try:
        print(run_target(args.target))
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
