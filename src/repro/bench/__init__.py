"""Benchmark harness: analytic estimators, figure generators, reporting."""

from repro.bench.estimators import (
    CPUEstimator,
    GPUEstimator,
    IMPIREstimator,
    MotivationBreakdown,
    MotivationEstimator,
    SystemEstimate,
)
from repro.bench.figures import (
    Fig3Result,
    Fig9Result,
    Fig10Result,
    Fig11Result,
    Fig12Result,
    fig3_motivation,
    fig9_throughput_latency,
    fig10_breakdown,
    fig11_clustering,
    fig12_gpu_comparison,
    table1_phase_contributions,
)
from repro.bench.reporting import (
    render_fig3,
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
    render_speedup,
    render_table1,
)

__all__ = [
    "CPUEstimator",
    "GPUEstimator",
    "IMPIREstimator",
    "MotivationBreakdown",
    "MotivationEstimator",
    "SystemEstimate",
    "Fig3Result",
    "Fig9Result",
    "Fig10Result",
    "Fig11Result",
    "Fig12Result",
    "fig3_motivation",
    "fig9_throughput_latency",
    "fig10_breakdown",
    "fig11_clustering",
    "fig12_gpu_comparison",
    "table1_phase_contributions",
    "render_fig3",
    "render_fig9",
    "render_fig10",
    "render_fig11",
    "render_fig12",
    "render_speedup",
    "render_table1",
]
