"""Wall-clock microbenchmark for the batched one-pass scan path (PR 6).

The simulated cost models elsewhere in :mod:`repro.bench` answer "what would
the paper's hardware do"; this module answers a different question: how fast
does *this* repository actually run, and how much does the batched
``execute_many`` path (one pass over the database for a whole batch, one PRG
sweep per GGM level for every key) gain over the sequential per-query path.

Two modes share one harness:

* ``quick`` — a small shape wired into ``make check``: it smoke-asserts that
  the batched path is at least as fast as the sequential one and that both
  return bit-identical payloads.
* full — the ``make bench`` shape (4096 x 32 B records, batch of 32 on the
  reference backend), archived under ``benchmarks/history/`` so runs can be
  diffed with ``tools/bench_compare.py``.

Wall-clock numbers come from a best-of-``repeats`` loop (the minimum is the
least noisy estimator on a shared machine); the p50/p99 latencies are
*simulated* ones taken from the IM-PIR cluster schedule, so they are exactly
reproducible run to run.

Beyond the batched-vs-sequential headline, the artifact carries four more
sections:

* ``backend_survey`` — wall-clock records/sec (and records/sec per engaged
  host core) of the batched path on the reference, sharded and streamed
  backends, each correctness-gated against the reference payloads first;
* ``crossover_sweep`` — wall-clock records/sec of the sharded backend's raw
  ``execute_many`` across shard count x executor x batch size, plus the
  :class:`~repro.shard.tuner.ScanTuner` calibration rows, so the trajectory
  records where the serial-vs-threads crossover sits on this machine;
* ``dpu_pipeline`` — the *simulated* DPU pipeline cost model per PIM backend
  kind, built from :class:`~repro.pim.timing.PIMTimingModel`: broadcast +
  launch + dpXOR kernel + gather + host fold per query, reported as
  records/sec and records/sec per DPU (deterministic, clock-free), with the
  batched-dispatch amortisation alongside the sequential per-query cost;
* ``hardware`` — the host context the wall-clock numbers were measured in
  (CPU count, numpy version, thread-count env vars), so
  ``tools/bench_compare.py`` can warn before diffing apples against oranges.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.engine import create_server
from repro.dpf.prf import make_prg
from repro.pim.config import scaled_down_config
from repro.pim.timing import PIMTimingModel
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.shard.tuner import ScanTuner

#: Where ``make bench`` archives each run's artifact (one file per tag, so
#: the perf trajectory across commits accumulates instead of overwriting).
DEFAULT_HISTORY_DIR = "benchmarks/history"

#: Environment variables that cap BLAS/OpenMP thread pools — recorded in the
#: artifact because they change what "threads vs serial" means on a machine.
THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)

#: The full-mode shape: chosen so the fixed per-query numpy/Python overhead
#: the batched path amortises is visible but the database is still far from
#: memory-bound (where batching cannot beat a scan that is already DRAM-rate).
FULL_SHAPE = {"num_records": 4096, "record_size": 32, "batch_size": 32, "repeats": 7}

#: The quick-mode shape: small enough for ``make check``.
QUICK_SHAPE = {"num_records": 1024, "record_size": 32, "batch_size": 16, "repeats": 3}

#: The wall-clock backend survey: every entry names a registered backend
#: kind, the kwargs to build it with, and the number of host cores its
#: batched path engages (the denominator of records/sec/core — the sharded
#: backend fans its children out on a thread pool, the others are
#: single-core by construction).
SURVEY_BACKENDS = (
    {"kind": "reference", "kwargs": {}, "cores": 1},
    {
        "kind": "sharded",
        "kwargs": {"num_shards": 2, "executor": "threads"},
        "cores": 2,
    },
    {"kind": "im-pir-streamed", "kwargs": {}, "cores": 1},
)

#: The simulated DPU pipeline survey: PIM backend kinds and the DPU counts
#: their default registry configurations use (``scaled_down_config``).
DPU_PIPELINE_KINDS = ({"kind": "im-pir", "num_dpus": 8}, {"kind": "im-pir-streamed", "num_dpus": 4})

#: The crossover sweep's grid: shard counts and executors measured against
#: each batch size.  Full mode sweeps every batch below; quick mode keeps a
#: single batch so ``make check`` stays fast.
CROSSOVER_SHARDS = (1, 2, 4)
CROSSOVER_EXECUTORS = ("serial", "threads")
CROSSOVER_BATCHES_FULL = (8, 32)
CROSSOVER_BATCHES_QUICK = (16,)


def hardware_context() -> Dict[str, object]:
    """The host context wall-clock numbers depend on (for artifact diffs)."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "numpy_version": np.__version__,
        "thread_env": {
            name: os.environ[name]
            for name in THREAD_ENV_VARS
            if name in os.environ
        },
    }


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Minimum wall-clock seconds of ``repeats`` runs of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (no interpolation, deterministic)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


def bench_tag() -> str:
    """A short identifier for an archived artifact: the git commit, or ``local``."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return "local"
    tag = proc.stdout.strip()
    return tag if tag else "local"


def archive_metrics(
    metrics: Dict[str, object], history_dir: str, tag: Optional[str] = None
) -> str:
    """Write ``metrics`` to ``<history_dir>/BENCH_<tag>.json``; returns the path.

    The archived payload carries the tag, so a trajectory listing
    (``python tools/bench_compare.py <history_dir>``) can label each run
    even after files are copied around.
    """
    resolved = tag if tag is not None else bench_tag()
    os.makedirs(history_dir, exist_ok=True)
    path = os.path.join(history_dir, f"BENCH_{resolved}.json")
    payload = dict(metrics)
    payload["tag"] = resolved
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def backend_survey(
    database: Database,
    queries: Sequence[object],
    reference_payloads: Sequence[bytes],
    repeats: int,
) -> List[Dict[str, object]]:
    """Wall-clock records/sec (and per engaged core) of each surveyed backend.

    Every backend is correctness-gated first: its batched payloads must be
    bit-identical to the reference backend's before its clock numbers count.
    """
    rows: List[Dict[str, object]] = []
    for entry in SURVEY_BACKENDS:
        kind = str(entry["kind"])
        engine = create_server(kind, database, server_id=0, **entry["kwargs"]).engine
        payloads = [
            result.answer.payload for result in engine.answer_many(queries).results
        ]
        if list(payloads) != list(reference_payloads):
            raise AssertionError(
                f"backend {kind!r} payloads drifted from the reference backend"
            )
        batched_seconds = _best_of(lambda: engine.answer_many(queries), repeats)
        cores = min(int(entry["cores"]), os.cpu_count() or 1)
        records_scanned = len(queries) * database.num_records
        records_per_second = records_scanned / batched_seconds
        rows.append(
            {
                "backend": kind,
                "cores": cores,
                "batched_seconds": batched_seconds,
                "records_per_second": records_per_second,
                "records_per_second_per_core": records_per_second / cores,
            }
        )
    return rows


def crossover_sweep(
    database: Database,
    queries: Sequence[object],
    batch_sizes: Sequence[int],
    repeats: int,
    tuner: Optional[ScanTuner] = None,
) -> Dict[str, object]:
    """Wall-clock records/sec of the sharded raw scan across the tuning grid.

    Times :meth:`~repro.shard.backend.ShardedBackend.execute_many` directly
    (selector matrix prepared up front) so the sweep isolates the scan the
    serial-vs-threads decision is about — DPF evaluation and response
    assembly are identical either way and would only dilute the crossover.
    Alongside the grid, the sweep runs a :class:`~repro.shard.tuner.ScanTuner`
    calibration at each batch size and reports its rows and verdicts, so the
    archived artifact records the measured crossover, not just the raw grid.
    """
    from repro.common.events import PhaseTimer

    tuner = tuner if tuner is not None else ScanTuner(repeats=repeats)
    rows: List[Dict[str, object]] = []
    for num_shards in CROSSOVER_SHARDS:
        for executor in CROSSOVER_EXECUTORS:
            engine = create_server(
                "sharded",
                database,
                server_id=0,
                num_shards=num_shards,
                executor=executor,
            ).engine
            for batch_size in batch_sizes:
                batch_queries = list(queries[:batch_size])
                selectors = engine.selector_matrix(batch_queries)
                lanes = [0] * len(batch_queries)

                def scan() -> None:
                    timers = [PhaseTimer() for _ in batch_queries]
                    engine.backend.execute_many(selectors, timers, lanes)

                seconds = _best_of(scan, repeats)
                records_scanned = len(batch_queries) * database.num_records
                rows.append(
                    {
                        "num_shards": num_shards,
                        "executor": executor,
                        "batch_size": len(batch_queries),
                        "scan_seconds": seconds,
                        "records_per_second": records_scanned / seconds,
                    }
                )
            engine.backend.close()
    for batch_size in batch_sizes:
        tuner.choose(database.num_records, database.record_size, batch_size)
    return {"grid": rows, "scan_tuner": tuner.crossover_rows()}


def dpu_pipeline_model(
    num_records: int, record_size: int, batch_size: int = 32
) -> List[Dict[str, object]]:
    """Simulated per-query DPU pipeline cost per PIM backend kind.

    Deterministic (cost model only, no clock): one query's pipeline is
    selector broadcast to the DPU set, kernel launch, the dpXOR scan over
    each DPU's chunk, the per-DPU partial gather, and the host XOR fold.
    Each row also carries the batched-dispatch amortisation at ``batch_size``
    queries per dispatch (the :func:`~repro.core.partitioning.run_dpu_pipeline_many`
    formula): per-dispatch fixed charges — transfer latency, launch overhead —
    are paid once per batch; selector/result bytes, kernel scan and host fold
    still scale with the batch.
    """
    selector_bytes = max(1, num_records // 8)
    rows: List[Dict[str, object]] = []
    for entry in DPU_PIPELINE_KINDS:
        num_dpus = int(entry["num_dpus"])
        model = PIMTimingModel(scaled_down_config(num_dpus=num_dpus, tasklets=4))
        chunk_bytes = -(-num_records * record_size // num_dpus)
        kernel = model.dpu_dpxor_cost(chunk_bytes, record_size)
        stages = {
            "broadcast_seconds": model.host_broadcast_seconds(selector_bytes),
            "launch_seconds": model.launch_seconds(num_dpus),
            "kernel_seconds": kernel.total_seconds,
            "gather_seconds": model.dpu_to_host_seconds(num_dpus * record_size),
            "fold_seconds": model.host_aggregate_xor_seconds(num_dpus, record_size),
        }
        per_query_seconds = sum(stages.values())
        records_per_second = num_records / per_query_seconds

        batch_total_seconds = (
            model.host_broadcast_seconds(batch_size * selector_bytes)
            + model.launch_seconds(num_dpus)
            + batch_size * kernel.total_seconds
            + model.dpu_to_host_seconds(batch_size * num_dpus * record_size)
            + batch_size * model.host_aggregate_xor_seconds(num_dpus, record_size)
        )
        batched_per_query = batch_total_seconds / batch_size
        rows.append(
            {
                "backend": str(entry["kind"]),
                "num_dpus": num_dpus,
                "per_query_seconds": per_query_seconds,
                "records_per_second": records_per_second,
                "records_per_second_per_dpu": records_per_second / num_dpus,
                "stages": stages,
                "batched": {
                    "batch_size": batch_size,
                    "per_query_seconds": batched_per_query,
                    "records_per_second": num_records / batched_per_query,
                    "amortized_speedup": per_query_seconds / batched_per_query,
                },
            }
        )
    return rows


def run_bench(
    quick: bool = False,
    output_path: Optional[str] = None,
    seed: int = 11,
    history_dir: Optional[str] = None,
    tag: Optional[str] = None,
) -> Dict[str, object]:
    """Run the batched-vs-sequential benchmark and return its metrics.

    When ``output_path`` is given the metrics are also written there as JSON
    (``make bench`` writes no loose artifact — it archives only via
    ``history_dir``, as ``BENCH_<tag>.json`` with the tag defaulting to the
    current git commit, recording the path under ``metrics["archived_to"]``).

    Quick mode additionally *asserts* the batched path is no slower than the
    sequential one — that is its role as a ``make check`` smoke.  Full mode,
    on a machine with at least two cores, asserts the tuned sharded-threads
    scan beats the serial scan in records/sec at the bench shape (the
    crossover the :class:`~repro.shard.tuner.ScanTuner` exists to find).
    """
    shape = QUICK_SHAPE if quick else FULL_SHAPE
    num_records = int(shape["num_records"])
    record_size = int(shape["record_size"])
    batch_size = int(shape["batch_size"])
    repeats = int(shape["repeats"])

    database = Database.random(num_records, record_size, seed=seed)
    client = PIRClient(num_records, record_size, seed=seed + 1, prg=make_prg("numpy"))
    engine = create_server("reference", database, server_id=0).engine
    queries = [client.query(i % num_records)[0] for i in range(batch_size)]

    # Correctness gate before timing anything: the batched path must return
    # the same bytes as the sequential one, query for query.
    sequential_payloads = [engine.answer(query).answer.payload for query in queries]
    batched_payloads = [
        result.answer.payload for result in engine.answer_many(queries).results
    ]
    if sequential_payloads != batched_payloads:
        raise AssertionError("batched payloads differ from sequential payloads")

    sequential_seconds = _best_of(
        lambda: [engine.answer(query) for query in queries], repeats
    )
    batched_seconds = _best_of(lambda: engine.answer_many(queries), repeats)
    speedup = sequential_seconds / batched_seconds if batched_seconds > 0 else 0.0

    # Simulated per-query latency distribution from the IM-PIR cluster
    # schedule (deterministic: it comes from the cost model, not the clock).
    impir = create_server("im-pir", database, server_id=0).engine
    schedule = impir.answer_many(queries).schedule
    latencies: List[float] = [query.latency for query in schedule.queries]

    sweep = crossover_sweep(
        database,
        queries,
        CROSSOVER_BATCHES_QUICK if quick else CROSSOVER_BATCHES_FULL,
        repeats,
    )

    metrics: Dict[str, object] = {
        "bench": "batched_scan",
        "mode": "quick" if quick else "full",
        "shape": {
            "num_records": num_records,
            "record_size": record_size,
            "batch_size": batch_size,
            "repeats": repeats,
            "backend": "reference",
        },
        "hardware": hardware_context(),
        "wall_clock": {
            "sequential_seconds": sequential_seconds,
            "batched_seconds": batched_seconds,
            "batched_vs_sequential_speedup": speedup,
            "sequential_qps": batch_size / sequential_seconds,
            "batched_qps": batch_size / batched_seconds,
            "records_per_second": batch_size * num_records / batched_seconds,
        },
        "simulated_impir": {
            "p50_latency_seconds": _percentile(latencies, 0.50),
            "p99_latency_seconds": _percentile(latencies, 0.99),
            "batch_makespan_seconds": schedule.makespan,
        },
        "backend_survey": backend_survey(
            database, queries, sequential_payloads, repeats
        ),
        "crossover_sweep": sweep,
        "dpu_pipeline": dpu_pipeline_model(
            num_records, record_size, batch_size=batch_size
        ),
    }

    if quick and speedup < 1.0:
        raise AssertionError(
            f"batched path is slower than sequential ({speedup:.2f}x); "
            "the one-pass scan should never lose to per-query dispatch"
        )

    if not quick and (os.cpu_count() or 1) >= 2:
        at_full_batch = [
            row for row in sweep["grid"] if row["batch_size"] == batch_size
        ]
        best_threads = max(
            row["records_per_second"]
            for row in at_full_batch
            if row["executor"] == "threads" and row["num_shards"] > 1
        )
        best_serial = max(
            row["records_per_second"]
            for row in at_full_batch
            if row["executor"] == "serial"
        )
        if not best_threads > best_serial:
            raise AssertionError(
                f"tuned sharded-threads scan did not beat serial at the bench "
                f"shape on {os.cpu_count()} cores "
                f"({best_threads:,.0f} vs {best_serial:,.0f} records/s)"
            )

    if output_path is not None:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(metrics, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if history_dir is not None:
        metrics["archived_to"] = archive_metrics(metrics, history_dir, tag=tag)

    return metrics


def render_bench(metrics: Dict[str, object]) -> str:
    """Plain-text rendering of :func:`run_bench` metrics."""
    shape = metrics["shape"]
    wall = metrics["wall_clock"]
    simulated = metrics["simulated_impir"]
    lines = [
        f"Batched scan benchmark ({metrics['mode']} mode)",
        f"shape: {shape['num_records']} records x {shape['record_size']} B, "
        f"batch of {shape['batch_size']} on the {shape['backend']} backend "
        f"(best of {shape['repeats']})",
        "",
        f"sequential per-query: {wall['sequential_seconds'] * 1e3:8.1f} ms "
        f"({wall['sequential_qps']:8.1f} q/s)",
        f"batched execute_many: {wall['batched_seconds'] * 1e3:8.1f} ms "
        f"({wall['batched_qps']:8.1f} q/s)",
        f"speedup: {wall['batched_vs_sequential_speedup']:.2f}x   "
        f"scan rate: {wall['records_per_second']:,.0f} records/s",
        "",
        "simulated IM-PIR latency (cost model, deterministic):",
        f"p50 {simulated['p50_latency_seconds'] * 1e6:8.2f} us   "
        f"p99 {simulated['p99_latency_seconds'] * 1e6:8.2f} us   "
        f"batch makespan {simulated['batch_makespan_seconds'] * 1e6:8.2f} us",
        "",
        "backend survey (wall clock, batched path, payloads gated on reference):",
        f"{'backend':>16} {'cores':>5} {'records/s':>14} {'records/s/core':>15}",
    ]
    for row in metrics["backend_survey"]:
        lines.append(
            f"{row['backend']:>16} {row['cores']:>5} "
            f"{row['records_per_second']:>14,.0f} "
            f"{row['records_per_second_per_core']:>15,.0f}"
        )
    sweep = metrics.get("crossover_sweep")
    if sweep:
        hardware = metrics.get("hardware", {})
        lines += [
            "",
            f"crossover sweep (raw sharded execute_many, wall clock, "
            f"{hardware.get('cpu_count', '?')} cores):",
            f"{'shards':>6} {'executor':>9} {'batch':>6} {'records/s':>14}",
        ]
        for row in sweep["grid"]:
            lines.append(
                f"{row['num_shards']:>6} {row['executor']:>9} "
                f"{row['batch_size']:>6} {row['records_per_second']:>14,.0f}"
            )
        for calibration in sweep["scan_tuner"]:
            lines.append(
                f"tuner verdict at batch {calibration['batch']}: "
                f"{calibration['executor']} "
                f"(threads speedup {calibration['threads_speedup']:.2f}x, "
                f"{calibration['num_workers']} workers, "
                f"chunk {calibration['chunk_records']})"
            )
    lines += [
        "",
        "DPU pipeline cost model (simulated, deterministic):",
        f"{'backend':>16} {'DPUs':>5} {'us/query':>9} {'records/s':>14} {'records/s/DPU':>14} {'batched x':>9}",
    ]
    for row in metrics["dpu_pipeline"]:
        batched = row.get("batched", {})
        speedup_cell = (
            f"{batched['amortized_speedup']:>9.2f}" if batched else f"{'-':>9}"
        )
        lines.append(
            f"{row['backend']:>16} {row['num_dpus']:>5} "
            f"{row['per_query_seconds'] * 1e6:>9.2f} "
            f"{row['records_per_second']:>14,.0f} "
            f"{row['records_per_second_per_dpu']:>14,.0f} "
            f"{speedup_cell}"
        )
    return "\n".join(lines)
