"""Reference values reported by the paper, for paper-vs-measured comparisons.

Exact data tables are not published; values read off figures are approximate
and marked as such.  They are used only to *report* how close the
reproduction lands (EXPERIMENTS.md, Table-1 benchmark output), never to tune
results at run time.
"""

from __future__ import annotations

from typing import Dict

# -- headline claims (abstract, §5.3) ------------------------------------------------------

#: "query throughput ... more than 3.7x when compared to a standard CPU-based PIR".
HEADLINE_THROUGHPUT_SPEEDUP = 3.7

#: Fig. 9(a): speedup at the smallest database size (0.5 GB).
FIG9_SPEEDUP_AT_0_5_GIB = 1.7
#: Fig. 9(a): speedup at the largest database size (8 GB).
FIG9_SPEEDUP_AT_8_GIB = 3.7
#: Fig. 9(b): average speedup across batch sizes at a 1 GB database.
FIG9_MEAN_SPEEDUP_AT_1_GIB = 2.6

# -- Table 1: average phase contributions ---------------------------------------------------

TABLE1_IMPIR: Dict[str, float] = {
    "eval": 0.7645,
    "copy_cpu_to_dpu": 0.0717,
    "dpxor": 0.1620,
    "copy_dpu_to_cpu": 0.0018,
    "aggregate": 0.0000002,
}

TABLE1_CPU: Dict[str, float] = {
    "eval": 0.1664,
    "dpxor": 0.8336,
}

# -- Fig. 3: motivation experiment -----------------------------------------------------------

#: "a single query on a 4 GB database ... takes about 3 s on the server".
FIG3_TOTAL_SECONDS_AT_4_GIB = 3.0
#: "dpXOR operations take ~10x longer than key evaluation".
FIG3_DPXOR_OVER_EVAL = 10.0
#: "key evaluation ... ~1000x [longer] than key generation".
FIG3_EVAL_OVER_GEN = 1000.0

# -- Fig. 11: DPU clustering -------------------------------------------------------------------

#: "up to 1.35x throughput improvement with 8 DPU clusters compared to a single cluster".
FIG11_MAX_CLUSTER_GAIN = 1.35

# -- Fig. 12: GPU comparison ---------------------------------------------------------------------

#: "IM-PIR achieves up to 1.34x throughput ... compared to the GPU-based approach".
FIG12_IMPIR_OVER_GPU = 1.34
#: "the GPU-based approach achieves up to 1.36x throughput ... [over] CPU-PIR".
FIG12_GPU_OVER_CPU = 1.36
#: "1.3x latency improvement" for both of the above comparisons.
FIG12_LATENCY_IMPROVEMENT = 1.3

# -- evaluation setup constants --------------------------------------------------------------------

PAPER_NUM_DPUS = 2048
PAPER_TASKLETS_PER_DPU = 16
PAPER_RECORD_SIZE = 32
PAPER_DEFAULT_BATCH = 32
PAPER_FIG9_DB_SIZES_GIB = (0.5, 1.0, 2.0, 4.0, 8.0)
PAPER_FIG10_DB_SIZES_GIB = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
PAPER_FIG11_CLUSTERS = (1, 2, 4, 8)
PAPER_FIG11_BATCH_SIZES = (4, 8, 16, 32, 64, 128, 256)
PAPER_FIG12_DB_SIZES_GIB = (0.125, 0.25, 0.5, 0.75, 1.0)
PAPER_BATCH_SIZES = (4, 8, 16, 32, 64, 128, 256, 512)


def relative_error(measured: float, reference: float) -> float:
    """Relative deviation of ``measured`` from ``reference`` (0 when equal)."""
    if reference == 0:
        return float("inf") if measured else 0.0
    return abs(measured - reference) / abs(reference)
