"""Plain-text reporting of regenerated figures, with paper-vs-measured notes.

The benchmark modules call these helpers to print the rows/series the paper
reports, so running ``pytest benchmarks/ --benchmark-only -s`` reproduces the
evaluation section as console output (and EXPERIMENTS.md snapshots it).
"""

from __future__ import annotations

from typing import Iterable, List, Mapping

from repro.analysis.metrics import SpeedupReport, SweepSeries
from repro.bench import paper_reference as paper
from repro.bench.figures import Fig3Result, Fig9Result, Fig10Result, Fig11Result, Fig12Result


def _format_row(cells: Iterable[str], width: int = 16) -> str:
    return "  ".join(f"{cell:>{width}}" for cell in cells)


def render_fig3(result: Fig3Result) -> str:
    """Fig. 3: per-phase times and roofline placements."""
    lines = ["Figure 3(a) - DPF-PIR execution time breakdown (single CPU thread)"]
    lines.append(_format_row(["DB size (GB)", "Gen (ms)", "Eval (ms)", "dpXOR (ms)", "total (ms)"]))
    for row in result.breakdowns:
        lines.append(
            _format_row(
                [
                    f"{row.db_size_gib:g}",
                    f"{row.gen_seconds * 1e3:.4f}",
                    f"{row.eval_seconds * 1e3:.1f}",
                    f"{row.dpxor_seconds * 1e3:.1f}",
                    f"{row.total_seconds * 1e3:.1f}",
                ]
            )
        )
    lines.append("")
    lines.append("Figure 3(b) - roofline placement (memory-bound below ridge point)")
    lines.append(f"ridge point: {result.ridge_point:.2f} op/byte")
    for point in result.roofline_points:
        bound = "memory-bound" if point.memory_bound else "compute-bound"
        lines.append(
            f"  {point.name:>6}: OI={point.operational_intensity:.4f} op/B, "
            f"attainable={point.attainable_gops:.2f} Gops/s ({bound})"
        )
    return "\n".join(lines)


def _render_sweep(series_map: Mapping[str, SweepSeries], x_name: str) -> List[str]:
    names = list(series_map)
    xs = series_map[names[0]].xs
    lines = [_format_row([x_name] + [f"{n} QPS" for n in names] + [f"{n} lat(s)" for n in names])]
    for i, x in enumerate(xs):
        cells = [f"{x:g}"]
        cells += [f"{series_map[n].points[i].throughput_qps:.1f}" for n in names]
        cells += [f"{series_map[n].points[i].latency_seconds:.3f}" for n in names]
        lines.append(_format_row(cells))
    return lines


def render_fig9(result: Fig9Result) -> str:
    """Fig. 9: throughput/latency vs DB size and batch size."""
    lines = ["Figure 9(a)/(c) - vs DB size (batch = 32)"]
    lines += _render_sweep(result.vs_db_size, "DB (GB)")
    if result.speedup_vs_db_size is not None:
        report = result.speedup_vs_db_size
        lines.append(
            "speedup (IM-PIR/CPU-PIR): "
            + ", ".join(f"{x:g} GB: {s:.2f}x" for x, s in report.throughput_speedups.items())
        )
        lines.append(
            f"paper: {paper.FIG9_SPEEDUP_AT_0_5_GIB:.1f}x at 0.5 GB rising to "
            f">{paper.FIG9_SPEEDUP_AT_8_GIB:.1f}x at 8 GB"
        )
    lines.append("")
    lines.append("Figure 9(b)/(d) - vs batch size (DB = 1 GB)")
    lines += _render_sweep(result.vs_batch_size, "batch")
    if result.speedup_vs_batch_size is not None:
        lines.append(
            f"mean speedup across batch sizes: "
            f"{result.speedup_vs_batch_size.mean_throughput_speedup:.2f}x "
            f"(paper: ~{paper.FIG9_MEAN_SPEEDUP_AT_1_GIB:.1f}x)"
        )
    return "\n".join(lines)


def render_fig10(result: Fig10Result) -> str:
    """Fig. 10: per-phase latency tables for IM-PIR and CPU-PIR."""
    lines = ["Figure 10(a) - IM-PIR latency breakdown"]
    lines.append(result.impir_table.to_text())
    lines.append("")
    lines.append("Figure 10(b) - CPU-PIR latency breakdown")
    lines.append(result.cpu_table.to_text())
    return "\n".join(lines)


def render_table1(result: Fig10Result) -> str:
    """Table 1: average phase contributions, measured vs paper."""
    lines = ["Table 1 - average contribution of each phase to query latency"]
    lines.append("IM-PIR (measured): " + _fractions_to_text(result.impir_fractions))
    lines.append("IM-PIR (paper):    " + _fractions_to_text(paper.TABLE1_IMPIR))
    lines.append("CPU-PIR (measured): " + _fractions_to_text(result.cpu_fractions))
    lines.append("CPU-PIR (paper):    " + _fractions_to_text(paper.TABLE1_CPU))
    return "\n".join(lines)


def _fractions_to_text(fractions: Mapping[str, float]) -> str:
    return "  ".join(f"{phase}={value * 100:.2f}%" for phase, value in fractions.items())


def render_fig11(result: Fig11Result) -> str:
    """Fig. 11: clustering throughput/latency vs batch size."""
    lines = ["Figure 11 - DPU clustering (DB = 1 GB)"]
    names = {c: s for c, s in result.series_by_clusters.items()}
    xs = next(iter(names.values())).xs
    header = ["batch"] + [f"{c} cl QPS" for c in names] + [f"{c} cl lat(s)" for c in names]
    lines.append(_format_row(header))
    for i, x in enumerate(xs):
        cells = [f"{int(x)}"]
        cells += [f"{names[c].points[i].throughput_qps:.1f}" for c in names]
        cells += [f"{names[c].points[i].latency_seconds:.3f}" for c in names]
        lines.append(_format_row(cells))
    lines.append(
        f"max gain over a single cluster: {result.max_gain_over_single_cluster:.2f}x "
        f"(paper: up to {paper.FIG11_MAX_CLUSTER_GAIN:.2f}x)"
    )
    return "\n".join(lines)


def render_fig12(result: Fig12Result) -> str:
    """Fig. 12: CPU vs IM-PIR vs GPU comparison."""
    lines = ["Figure 12 - CPU-PIR vs IM-PIR vs GPU-PIR (batch = 32)"]
    lines += _render_sweep(result.series, "DB (GB)")
    if result.impir_over_gpu is not None:
        lines.append(
            f"IM-PIR over GPU-PIR (max): {result.impir_over_gpu.max_throughput_speedup:.2f}x "
            f"(paper: {paper.FIG12_IMPIR_OVER_GPU:.2f}x)"
        )
    if result.gpu_over_cpu is not None:
        lines.append(
            f"GPU-PIR over CPU-PIR (max): {result.gpu_over_cpu.max_throughput_speedup:.2f}x "
            f"(paper: {paper.FIG12_GPU_OVER_CPU:.2f}x)"
        )
    return "\n".join(lines)


def render_speedup(report: SpeedupReport) -> str:
    """One-line rendering of a speedup report."""
    return (
        f"{report.candidate} vs {report.baseline}: "
        f"min {report.min_throughput_speedup:.2f}x, "
        f"mean {report.mean_throughput_speedup:.2f}x, "
        f"max {report.max_throughput_speedup:.2f}x"
    )
