"""Multi-server PIR protocol: database, messages, client, server, driver."""

from repro.pir.async_frontend import AsyncPIRFrontend
from repro.pir.client import SCHEME_DPF, SCHEME_NAIVE, ClientStats, PIRClient
from repro.pir.database import DEFAULT_RECORD_SIZE, Database
from repro.pir.frontend import (
    AdaptiveBatchingPolicy,
    BatchingPolicy,
    FrontendMetrics,
    PIRFrontend,
    RequestRouter,
)
from repro.pir.messages import DPFQuery, NaiveQuery, PIRAnswer
from repro.pir.protocol import MultiServerPIRProtocol, RetrievalTrace
from repro.pir.serialization import (
    deserialize_answer,
    deserialize_key,
    deserialize_query,
    serialize_answer,
    serialize_key,
    serialize_query,
    wire_sizes,
)
from repro.pir.server import PIRServer, ServerStats
from repro.pir.xor_ops import (
    DpXorStats,
    dpxor,
    dpxor_chunked,
    dpxor_two_stage,
    inner_product_mod,
    xor_bytes,
    xor_fold,
)

__all__ = [
    "AsyncPIRFrontend",
    "SCHEME_DPF",
    "SCHEME_NAIVE",
    "ClientStats",
    "PIRClient",
    "DEFAULT_RECORD_SIZE",
    "Database",
    "AdaptiveBatchingPolicy",
    "BatchingPolicy",
    "FrontendMetrics",
    "PIRFrontend",
    "RequestRouter",
    "DPFQuery",
    "NaiveQuery",
    "PIRAnswer",
    "MultiServerPIRProtocol",
    "RetrievalTrace",
    "deserialize_answer",
    "deserialize_key",
    "deserialize_query",
    "serialize_answer",
    "serialize_key",
    "serialize_query",
    "wire_sizes",
    "PIRServer",
    "ServerStats",
    "DpXorStats",
    "dpxor",
    "dpxor_chunked",
    "dpxor_two_stage",
    "inner_product_mod",
    "xor_bytes",
    "xor_fold",
]
