"""Wire serialization for keys, queries and answers.

In a real deployment the client and the two servers are separate processes on
separate machines; everything they exchange must cross a network.  This module
defines a compact, versioned binary encoding for the protocol messages:

* DPF keys — root seed, per-level correction words, final correction word;
* DPF/naive queries — header plus key or packed selector share;
* answers — header plus the XOR sub-result.

The format is deliberately simple (fixed little-endian headers, no external
dependencies) and round-trip tested; it also gives the communication numbers
reported by the examples a concrete byte layout rather than an estimate.
"""

from __future__ import annotations

import struct
from typing import Tuple, Union

import numpy as np

from repro.common.errors import ProtocolError
from repro.dpf.dpf import DPFKey
from repro.dpf.ggm import CorrectionWord
from repro.dpf.naive import NaiveShare
from repro.dpf.prf import SEED_BYTES
from repro.pir.messages import DPFQuery, NaiveQuery, PIRAnswer

#: Format-version byte embedded in every message.
WIRE_VERSION = 1

_MAGIC_KEY = b"DK"
_MAGIC_DPF_QUERY = b"DQ"
_MAGIC_NAIVE_QUERY = b"NQ"
_MAGIC_ANSWER = b"PA"

_KEY_HEADER = struct.Struct("<2sBBBBQ")       # magic, version, party, domain_bits, output_bits, final_cw
_QUERY_HEADER = struct.Struct("<2sBBIQ")      # magic, version, server_id, query_id, num_records
_ANSWER_HEADER = struct.Struct("<2sBBIQI")    # magic, version, server_id, query_id, sim_ns, payload_len

Query = Union[DPFQuery, NaiveQuery]


# ---------------------------------------------------------------------------
# DPF keys
# ---------------------------------------------------------------------------


def serialize_key(key: DPFKey) -> bytes:
    """Encode a DPF key into its wire representation."""
    parts = [
        _KEY_HEADER.pack(
            _MAGIC_KEY,
            WIRE_VERSION,
            key.party,
            key.domain_bits,
            key.output_bits,
            key.final_correction,
        ),
        key.root_seed,
    ]
    for correction in key.correction_words:
        parts.append(correction.seed)
        parts.append(bytes([correction.t_left, correction.t_right]))
    return b"".join(parts)


def deserialize_key(blob: bytes) -> DPFKey:
    """Decode a DPF key from its wire representation."""
    if len(blob) < _KEY_HEADER.size + SEED_BYTES:
        raise ProtocolError("DPF key blob is truncated")
    magic, version, party, domain_bits, output_bits, final_correction = _KEY_HEADER.unpack_from(blob)
    if magic != _MAGIC_KEY:
        raise ProtocolError(f"not a DPF key blob (magic {magic!r})")
    if version != WIRE_VERSION:
        raise ProtocolError(f"unsupported wire version {version}")
    offset = _KEY_HEADER.size
    root_seed = blob[offset:offset + SEED_BYTES]
    offset += SEED_BYTES

    per_level = SEED_BYTES + 2
    expected = offset + domain_bits * per_level
    if len(blob) != expected:
        raise ProtocolError(
            f"DPF key blob has {len(blob)} bytes, expected {expected} for {domain_bits} levels"
        )
    corrections = []
    for _ in range(domain_bits):
        seed = blob[offset:offset + SEED_BYTES]
        t_left, t_right = blob[offset + SEED_BYTES], blob[offset + SEED_BYTES + 1]
        corrections.append(CorrectionWord(seed, t_left, t_right))
        offset += per_level
    return DPFKey(
        party=party,
        domain_bits=domain_bits,
        root_seed=root_seed,
        correction_words=tuple(corrections),
        final_correction=final_correction,
        output_bits=output_bits,
    )


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


def serialize_query(query: Query) -> bytes:
    """Encode a DPF or naive query into its wire representation."""
    if isinstance(query, DPFQuery):
        header = _QUERY_HEADER.pack(
            _MAGIC_DPF_QUERY, WIRE_VERSION, query.server_id, query.query_id, query.num_records
        )
        return header + serialize_key(query.key)
    if isinstance(query, NaiveQuery):
        header = _QUERY_HEADER.pack(
            _MAGIC_NAIVE_QUERY, WIRE_VERSION, query.server_id, query.query_id, query.num_records
        )
        packed = np.packbits(query.share.bits, bitorder="big").tobytes()
        return header + packed
    raise ProtocolError(f"cannot serialize query of type {type(query).__name__}")


def deserialize_query(blob: bytes) -> Query:
    """Decode a query from its wire representation."""
    if len(blob) < _QUERY_HEADER.size:
        raise ProtocolError("query blob is truncated")
    magic, version, server_id, query_id, num_records = _QUERY_HEADER.unpack_from(blob)
    if version != WIRE_VERSION:
        raise ProtocolError(f"unsupported wire version {version}")
    body = blob[_QUERY_HEADER.size:]
    if magic == _MAGIC_DPF_QUERY:
        key = deserialize_key(body)
        return DPFQuery(query_id=query_id, server_id=server_id, key=key, num_records=num_records)
    if magic == _MAGIC_NAIVE_QUERY:
        expected_bytes = (num_records + 7) // 8
        if len(body) != expected_bytes:
            raise ProtocolError(
                f"naive query body has {len(body)} bytes, expected {expected_bytes}"
            )
        bits = np.unpackbits(np.frombuffer(body, dtype=np.uint8), bitorder="big")[:num_records]
        share = NaiveShare(server_id=server_id, bits=bits)
        return NaiveQuery(query_id=query_id, server_id=server_id, share=share, num_records=num_records)
    raise ProtocolError(f"unknown query magic {magic!r}")


# ---------------------------------------------------------------------------
# Answers
# ---------------------------------------------------------------------------


def serialize_answer(answer: PIRAnswer) -> bytes:
    """Encode a server answer into its wire representation."""
    simulated_ns = int(round((answer.simulated_seconds or 0.0) * 1e9))
    header = _ANSWER_HEADER.pack(
        _MAGIC_ANSWER,
        WIRE_VERSION,
        answer.server_id,
        answer.query_id,
        simulated_ns,
        len(answer.payload),
    )
    return header + answer.payload


def deserialize_answer(blob: bytes) -> PIRAnswer:
    """Decode a server answer from its wire representation."""
    if len(blob) < _ANSWER_HEADER.size:
        raise ProtocolError("answer blob is truncated")
    magic, version, server_id, query_id, simulated_ns, payload_len = _ANSWER_HEADER.unpack_from(blob)
    if magic != _MAGIC_ANSWER:
        raise ProtocolError(f"not an answer blob (magic {magic!r})")
    if version != WIRE_VERSION:
        raise ProtocolError(f"unsupported wire version {version}")
    payload = blob[_ANSWER_HEADER.size:]
    if len(payload) != payload_len:
        raise ProtocolError(f"answer payload has {len(payload)} bytes, header says {payload_len}")
    simulated_seconds = simulated_ns / 1e9 if simulated_ns else None
    return PIRAnswer(
        query_id=query_id,
        server_id=server_id,
        payload=payload,
        simulated_seconds=simulated_seconds,
    )


def wire_sizes(query: Query, answer: PIRAnswer) -> Tuple[int, int]:
    """Serialized sizes of a (query, answer) pair — the real wire cost."""
    return len(serialize_query(query)), len(serialize_answer(answer))
