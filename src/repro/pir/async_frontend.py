"""Asyncio request frontend: real max-wait timers, concurrent replica fan-out.

:class:`~repro.pir.frontend.PIRFrontend` batches on *simulated* arrival
stamps — deterministic and thread-free, but its max-wait rule only fires when
a later arrival (or an explicit ``advance_time``) proves the wait expired,
and its replicas are called in sequence.  In front of live traffic neither
holds: a lone request must still flush once its wait elapses, and the
replicas — independent machines — should be scanned at the same time.

:class:`AsyncPIRFrontend` is that event-loop-driven counterpart:

* ``await submit(index)`` admits a request and resolves with the
  reconstructed record (one coroutine per in-flight client request);
* a real ``max_wait_seconds`` timer — a cancellable :mod:`asyncio` task,
  re-armed for the oldest pending request after every flush — triggers
  wait-flushes with no follow-up arrival needed;
* each flush dispatches **all replicas concurrently**:
  ``asyncio.gather`` over ``asyncio.to_thread``, because the replicas'
  numpy scans are blocking calls;
* batching semantics (size flush, wait flush, dedup fan-out, pairing by
  explicit request id, metrics) are shared with the sync frontend — both
  route through the pure flush-pipeline helpers in
  :mod:`repro.pir.frontend`, so the two are bit-identical by construction.

A failed flush (a replica drops, duplicates or invents an answer) rejects
every ``submit`` awaiting that batch with the
:class:`~repro.common.errors.ProtocolError` the pairing check raised.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from typing import Dict, List, Optional, Sequence

from repro.pir.client import PIRClient
from repro.pir.frontend import (
    FLUSH_ON_CLOSE,
    FLUSH_ON_SIZE,
    FLUSH_ON_WAIT,
    BatchingPolicy,
    FrontendMetrics,
    PendingRequest,
    admit_scanned,
    build_flush_observation,
    check_replicas,
    collect_answers,
    collect_update_appliers,
    count_cache_hits,
    dedup_leaders,
    fanout_dedup,
    fold_metrics,
    notify_flush_observers,
    per_server_queries,
    reconstruct_scanned,
    require_dedup_for_cache,
    require_no_orphans,
    wants_flush_observation,
)


class AsyncPIRFrontend:
    """Batches concurrent ``await submit`` calls and fans out to replicas.

    The constructor surface mirrors :class:`~repro.pir.frontend.PIRFrontend`
    (``policy`` is a :class:`BatchingPolicy` or the adaptive AIMD variant;
    ``dedup=True`` keeps the trusted-aggregator caveat documented there).
    All methods must be called from a running event loop; the replicas'
    ``answer_batch`` runs in worker threads, everything else — admission,
    pairing, reconstruction, metrics — stays on the loop, so no lock is
    needed around the frontend's own state.
    """

    def __init__(
        self,
        client: PIRClient,
        replicas: Sequence,
        policy: Optional[BatchingPolicy] = None,
        dedup: bool = False,
        observers: Sequence = (),
        cache=None,
    ) -> None:
        self.client = client
        self.replicas = check_replicas(client, replicas)
        self.policy = policy if policy is not None else BatchingPolicy()
        self.dedup = dedup
        self.observers: List = list(observers)
        self.cache = None
        if cache is not None:
            self.attach_cache(cache)
        self.metrics = FrontendMetrics()
        self._pending: List[PendingRequest] = []
        self._futures: Dict[int, "asyncio.Future[bytes]"] = {}
        self._next_request_id = 0
        self._timer_task: Optional["asyncio.Task[None]"] = None
        # Flush/writer quiescence (a reader-writer discipline): flushes may
        # overlap each other, but a *writer* — a bulk update, or a topology
        # reconfiguration (:meth:`reconfigure`) — must wait for every
        # in-flight flush to drain and blocks new flushes while it runs.
        # Otherwise a flush could reconstruct from mixed old/new replica
        # states (XOR of the two is garbage), re-admit pre-update bytes
        # into the cache after the invalidation, or span two plan versions
        # across its replicas mid-reshape.
        self._quiesce: Optional[asyncio.Condition] = None
        self._inflight_flushes = 0
        self._writers_waiting = 0
        self._writer_active = False

    def _quiesce_condition(self) -> asyncio.Condition:
        if self._quiesce is None:
            self._quiesce = asyncio.Condition()
        return self._quiesce

    @asynccontextmanager
    async def _quiesced(self):
        """Hold the writer slot: no flush in flight, new flushes blocked.

        Writer-preferring — announcing the waiting writer stops *new*
        flushes from taking reader slots, or sustained traffic could keep
        ``_inflight_flushes`` above zero forever and starve the writer
        indefinitely.  Shared by :meth:`apply_updates` (bulk data swaps)
        and :meth:`reconfigure` (topology swaps); both therefore guarantee
        no retrieval reconstructs across the change.
        """
        quiesce = self._quiesce_condition()
        async with quiesce:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._inflight_flushes:
                    await quiesce.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
                quiesce.notify_all()
        try:
            yield
        finally:
            async with quiesce:
                self._writer_active = False
                quiesce.notify_all()

    async def reconfigure(self, mutator):
        """Run a data-plane reconfiguration inside the writer quiesce.

        The asyncio counterpart of
        :meth:`repro.pir.frontend.PIRFrontend.reconfigure`: ``mutator`` (a
        plain callable — e.g. one applying a
        :class:`~repro.shard.plan.TopologyChange` to every replica fleet)
        runs only once every in-flight flush has drained, and no flush
        starts until it returns — so no flush ever spans two plan versions,
        even with replicas dispatched concurrently.  Returns ``mutator()``'s
        result.  The mutator runs in a worker thread (like the appliers in
        :meth:`apply_updates`): a topology swap prepares fresh children on
        real database slices, and that blocking numpy work must stall only
        the deliberately-quiesced flushes, not every coroutine on the loop.
        Drive this from a management task, not from a frontend observer:
        observers run while holding a *reader* slot, and waiting for the
        writer slot there would deadlock against the flush that invoked
        them.
        """
        async with self._quiesced():
            result = await asyncio.to_thread(mutator)
            self.metrics.reconfigurations += 1
            return result

    @property
    def inflight_flushes(self) -> int:
        """Flushes currently holding reader slots (0 inside any writer)."""
        return self._inflight_flushes

    def attach_cache(self, cache) -> None:
        """Enable the hot-record cache tier (requires ``dedup=True``) —
        the same gate as :meth:`repro.pir.frontend.PIRFrontend.attach_cache`."""
        require_dedup_for_cache(self.dedup)
        self.cache = cache

    async def apply_updates(self, updates) -> None:
        """Apply ``(index, record_bytes)`` updates to every replica.

        The async counterpart of
        :meth:`repro.pir.frontend.PIRFrontend.apply_updates`: replicas
        re-copy their dirty shards in worker threads (blocking numpy).
        The update *quiesces* the flush pipeline first — it waits for every
        in-flight flush to drain and holds new flushes until all replicas
        carry the new bytes and the cache's dirty indices are dropped — so
        no retrieval ever reconstructs from mixed old/new replica states,
        and no flush that scanned the old bytes can re-admit them after
        the invalidation.
        """
        updates = list(updates)
        if not updates:
            return
        appliers = collect_update_appliers(self.replicas)
        async with self._quiesced():
            try:
                for replica_apply in appliers:
                    await asyncio.to_thread(replica_apply, updates)
            finally:
                # Invalidate even when an applier fails midway: the replicas
                # may be left inconsistent (the caller sees the error), but a
                # stale cached record silently masking that inconsistency
                # would be strictly worse than the scan surfacing it.
                if self.cache is not None:
                    self.cache.invalidate(sorted({index for index, _ in updates}))

    # -- admission -------------------------------------------------------------------

    async def submit(self, index: int) -> bytes:
        """Admit a retrieval request; resolves with the reconstructed record.

        Resolution happens when the request's batch flushes — on reaching
        ``max_batch_size`` (this call dispatches the batch itself), or when
        the max-wait timer fires for the batch's oldest request.  A protocol
        fault anywhere in the batch rejects every awaiting submitter.
        """
        loop = asyncio.get_running_loop()
        # Query generation may reject the index; do it before registering so
        # the error surfaces here and no orphan pending entry is left behind.
        queries = [] if self.dedup else self.client.query(index)
        request = PendingRequest(
            request_id=self._allocate_request_id(),
            index=index,
            arrival_seconds=loop.time(),
            queries=queries,
        )
        future: "asyncio.Future[bytes]" = loop.create_future()
        self._pending.append(request)
        self._futures[request.request_id] = future
        if len(self._pending) >= self.policy.max_batch_size:
            # Shielded: cancelling *this* submitter must not abandon the
            # flush mid-flight — the rest of the batch is awaiting it too.
            await asyncio.shield(self._dispatch(self._take_pending(), FLUSH_ON_SIZE))
        else:
            self._arm_timer()
        return await future

    async def retrieve_batch(self, indices: Sequence[int]) -> List[bytes]:
        """Retrieve several records via concurrent submitters.

        Spawns one ``submit`` task per index, waits until every one has been
        admitted, then closes out the trailing partial batch instead of
        sitting out its max-wait.  Records return in submission order.
        """
        indices = list(indices)  # may be a one-shot iterable; iterated twice
        target = self._next_request_id + len(indices)
        tasks = [asyncio.create_task(self.submit(index)) for index in indices]

        def admission_failed() -> bool:
            # A task that finished with an error before the count reached the
            # target died during admission (e.g. index out of range) — stop
            # waiting for a request id it will never take.
            return any(task.done() and task.exception() is not None for task in tasks)

        while self._next_request_id < target and not admission_failed():
            await asyncio.sleep(0)
        await self.close()
        return list(await asyncio.gather(*tasks))

    async def close(self) -> None:
        """Cancel the wait timer and flush whatever is pending."""
        timer, self._timer_task = self._timer_task, None
        if timer is not None and not timer.done():
            timer.cancel()
            try:
                await timer
            except asyncio.CancelledError:
                pass
        while self._pending:
            await asyncio.shield(
                self._dispatch(self._take_pending(), FLUSH_ON_CLOSE)
            )

    @property
    def pending_count(self) -> int:
        """Requests admitted but not yet dispatched."""
        return len(self._pending)

    # -- internals ----------------------------------------------------------------------

    def _allocate_request_id(self) -> int:
        request_id = self._next_request_id
        self._next_request_id += 1
        return request_id

    def _take_pending(self) -> List[PendingRequest]:
        batch, self._pending = self._pending, []
        return batch

    def _arm_timer(self) -> None:
        """Ensure a timer task is watching the oldest pending request."""
        if self._timer_task is None or self._timer_task.done():
            self._timer_task = asyncio.create_task(self._timer_loop())

    async def _timer_loop(self) -> None:
        """Wait-flush whenever the oldest pending request's wait expires.

        One task serves consecutive batches: after a flush it re-arms itself
        for the new oldest pending request, and exits once nothing is
        pending (the next ``submit`` starts a fresh task).  A size flush
        elsewhere needs no cancellation — waking at a stale deadline just
        recomputes against the current oldest and sleeps again.
        """
        loop = asyncio.get_running_loop()
        try:
            while self._pending:
                deadline = self._pending[0].arrival_seconds + self.policy.max_wait_seconds
                delay = deadline - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                    continue
                # Shield the flush: cancelling the timer (close()) must not
                # abandon a dispatch mid-flight with submitters awaiting it.
                await asyncio.shield(
                    self._dispatch(self._take_pending(), FLUSH_ON_WAIT)
                )
        finally:
            if self._timer_task is asyncio.current_task():
                self._timer_task = None

    async def _dispatch(self, batch: List[PendingRequest], reason: str) -> None:
        """Flush one batch: concurrent replica fan-out, then the shared pipeline.

        Never raises — a failure rejects the batch's futures instead, so the
        error surfaces from every ``await submit`` of the batch rather than
        inside whichever coroutine happened to trigger the flush.
        """
        if not batch:
            return
        # Enter the flush pipeline as a "reader": overlaps freely with other
        # flushes, but never with a writer — an apply_updates or a topology
        # reconfigure — in progress (see the quiescence note in __init__).
        quiesce = self._quiesce_condition()
        async with quiesce:
            while self._writer_active or self._writers_waiting:
                await quiesce.wait()
            self._inflight_flushes += 1
        try:
            await self._run_flush(batch, reason)
        finally:
            async with quiesce:
                self._inflight_flushes -= 1
                quiesce.notify_all()

    async def _run_flush(self, batch: List[PendingRequest], reason: str) -> None:
        """The flush pipeline proper (already holding a reader slot)."""
        try:
            if self.dedup:
                scanned, cached = dedup_leaders(batch, self.client, self.cache)
            else:
                scanned, cached = batch, {}
            per_server = per_server_queries(scanned, len(self.replicas))
            # The replicas are independent machines running blocking numpy
            # scans: one worker thread each, gathered concurrently.  A batch
            # served entirely from the cache dispatches nothing.
            raw_results = (
                await asyncio.gather(
                    *(
                        asyncio.to_thread(replica.answer_batch, queries)
                        for replica, queries in zip(self.replicas, per_server)
                    )
                )
                if scanned
                else []
            )
            answers_by_key, makespans, schedules = collect_answers(raw_results)
            completed, record_by_index = reconstruct_scanned(
                self.client, scanned, answers_by_key
            )
            admit_scanned(self.cache, record_by_index)
            record_by_index.update(cached)
            deduped = (
                fanout_dedup(batch, completed, record_by_index, cached_indices=cached)
                if self.dedup
                else 0
            )
            require_no_orphans(answers_by_key)
        except Exception as error:  # reject the whole batch, batch-wide fault
            for request in batch:
                future = self._futures.pop(request.request_id, None)
                if future is not None and not future.done():
                    future.set_exception(error)
            return
        # Resolve the batch's futures before metrics/observer work: awaiting
        # submitters are scheduled to wake first, so control-plane observers
        # (which may run a blocking shard migration on the loop) never gate
        # request completion.  Observers that need heavier isolation should
        # be driven from a management task instead of this hook.
        for request in batch:
            future = self._futures.pop(request.request_id)
            if not future.done():
                future.set_result(completed[request.request_id])
        loop = asyncio.get_running_loop()
        try:
            now = loop.time()
            cache_hits = count_cache_hits(batch, cached)
            fold_metrics(
                self.metrics,
                self.policy,
                reason,
                len(batch),
                makespans,
                schedules,
                indices=[request.index for request in batch],
                now=now,
                observers=self.observers,
                cache_hits=cache_hits,
            )
            self.metrics.deduped_requests += deduped
            if wants_flush_observation(self.observers):
                notify_flush_observers(
                    self.observers,
                    build_flush_observation(
                        reason=reason,
                        now=now,
                        batch=batch,
                        scanned=scanned,
                        cached=cached,
                        deduped=deduped,
                        cache_hits=cache_hits,
                        makespans=makespans,
                        raw_results=raw_results,
                    ),
                )
        except Exception as error:
            # The batch already succeeded and its futures are resolved; an
            # observer fault (e.g. a control-plane migration failing) must
            # not masquerade as a retrieval failure in whichever submitter
            # triggered the flush, nor kill the timer task.  Route it to
            # the loop's exception handler instead.
            loop.call_exception_handler(
                {
                    "message": "frontend observer raised during post-flush "
                    "notification",
                    "exception": error,
                }
            )
