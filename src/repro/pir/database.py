"""PIR database abstraction.

A PIR database is a table ``D`` of ``N`` fixed-size records.  The paper's
evaluation uses 32-byte records (SHA-256 hashes, as found in certificate
transparency logs and compromised-credential services); the abstraction is
record-size agnostic.

The backing store is a single contiguous ``(N, record_size)`` uint8 numpy
array so that the dpXOR kernels can stream it exactly the way the paper's
servers stream DRAM/MRAM.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.common.errors import DatabaseError
from repro.common.rng import make_rng
from repro.common.units import format_bytes

DEFAULT_RECORD_SIZE = 32


class Database:
    """An immutable table of ``num_records`` fixed-size byte records."""

    def __init__(self, records: np.ndarray) -> None:
        array = np.ascontiguousarray(records, dtype=np.uint8)
        if array.ndim != 2:
            raise DatabaseError("records must be a 2-D array (num_records x record_size)")
        if array.shape[0] == 0 or array.shape[1] == 0:
            raise DatabaseError("database must contain at least one non-empty record")
        self._records = array
        self._records.setflags(write=False)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def random(
        cls,
        num_records: int,
        record_size: int = DEFAULT_RECORD_SIZE,
        seed: Optional[int] = None,
    ) -> "Database":
        """A database of uniformly random records (the paper's synthetic DB)."""
        if num_records <= 0 or record_size <= 0:
            raise DatabaseError("num_records and record_size must be positive")
        rng = make_rng(seed)
        records = rng.integers(0, 256, size=(num_records, record_size), dtype=np.uint8)
        return cls(records)

    @classmethod
    def from_records(cls, records: Sequence[bytes]) -> "Database":
        """Build a database from equal-length byte strings."""
        if not records:
            raise DatabaseError("cannot build a database from zero records")
        record_size = len(records[0])
        if record_size == 0:
            raise DatabaseError("records must be non-empty")
        array = np.empty((len(records), record_size), dtype=np.uint8)
        for i, record in enumerate(records):
            if len(record) != record_size:
                raise DatabaseError(
                    f"record {i} has length {len(record)}, expected {record_size}"
                )
            array[i] = np.frombuffer(record, dtype=np.uint8)
        return cls(array)

    @classmethod
    def zeros(cls, num_records: int, record_size: int = DEFAULT_RECORD_SIZE) -> "Database":
        """An all-zero database (useful as an explicit placeholder in tests)."""
        if num_records <= 0 or record_size <= 0:
            raise DatabaseError("num_records and record_size must be positive")
        return cls(np.zeros((num_records, record_size), dtype=np.uint8))

    # -- accessors ------------------------------------------------------------

    @property
    def records(self) -> np.ndarray:
        """The read-only ``(N, record_size)`` uint8 backing array."""
        return self._records

    @property
    def num_records(self) -> int:
        """Number of records ``N``."""
        return int(self._records.shape[0])

    @property
    def record_size(self) -> int:
        """Record size in bytes ``L``."""
        return int(self._records.shape[1])

    @property
    def size_bytes(self) -> int:
        """Total database size in bytes."""
        return self.num_records * self.record_size

    @property
    def index_bits(self) -> int:
        """Bits needed to address any record (the DPF domain size)."""
        return max(1, (self.num_records - 1).bit_length())

    def record(self, index: int) -> bytes:
        """The record at ``index`` as raw bytes."""
        if not 0 <= index < self.num_records:
            raise DatabaseError(f"record index {index} out of range [0, {self.num_records})")
        return self._records[index].tobytes()

    def __getitem__(self, index: int) -> bytes:
        return self.record(index)

    def __len__(self) -> int:
        return self.num_records

    def __iter__(self) -> Iterator[bytes]:
        return (row.tobytes() for row in self._records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return bool(np.array_equal(self._records, other._records))

    def __repr__(self) -> str:
        return (
            f"Database(num_records={self.num_records}, record_size={self.record_size}, "
            f"size={format_bytes(self.size_bytes)})"
        )

    # -- partitioning ----------------------------------------------------------

    def chunk_bounds(self, num_chunks: int) -> List[tuple]:
        """Split ``[0, N)`` into ``num_chunks`` contiguous ``(start, stop)`` ranges.

        The first ``N mod num_chunks`` chunks get one extra record, matching
        the paper's ceil-based block size ``B_d = ceil(N / P)`` while never
        producing empty leading chunks.  Chunks beyond the record count are
        empty ``(stop, stop)`` ranges so a fixed DPU population can always be
        addressed.
        """
        if num_chunks <= 0:
            raise DatabaseError("num_chunks must be positive")
        base = self.num_records // num_chunks
        remainder = self.num_records % num_chunks
        bounds = []
        start = 0
        for chunk_index in range(num_chunks):
            size = base + (1 if chunk_index < remainder else 0)
            bounds.append((start, start + size))
            start += size
        return bounds

    def chunk(self, start: int, stop: int) -> np.ndarray:
        """A read-only view of records ``[start, stop)``."""
        if not 0 <= start <= stop <= self.num_records:
            raise DatabaseError(f"invalid chunk range [{start}, {stop})")
        return self._records[start:stop]

    def with_updates(self, updates: Iterable[tuple]) -> "Database":
        """Return a new database with ``(index, record_bytes)`` updates applied.

        Models the paper's bulk-update path (updates applied by the host while
        DPUs are idle); the original database is left untouched.
        """
        array = self._records.copy()
        array.setflags(write=True)
        for index, record in updates:
            if not 0 <= index < self.num_records:
                raise DatabaseError(f"update index {index} out of range")
            if len(record) != self.record_size:
                raise DatabaseError(
                    f"update record has length {len(record)}, expected {self.record_size}"
                )
            array[index] = np.frombuffer(record, dtype=np.uint8)
        return Database(array)
