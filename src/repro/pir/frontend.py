"""Request frontend: batching, routing and answer pairing across replicas.

The servers answer queries; this module decides *which* queries reach them
*when*.  A :class:`PIRFrontend` (alias :class:`RequestRouter`) sits between
clients and the replica set:

* **admission** — ``submit(index)`` registers a retrieval request and assigns
  it an explicit request id;
* **batching** — pending requests aggregate under a :class:`BatchingPolicy`
  (maximum batch size plus a maximum simulated wait), so the expensive
  per-batch pipeline fill/drain of Fig. 8 is amortised over many requests;
  an :class:`AdaptiveBatchingPolicy` resizes the batch online (AIMD) from
  the cluster utilization each flushed batch reports;
* **routing** — each flushed batch fans out to every replica's
  ``answer_batch`` (the replicas are independent trust domains; functionally
  they are called in sequence, the simulated makespan treats them as
  parallel);
* **pairing** — the replicas' answers are re-joined *by explicit request id*:
  every request knows the ``(query_id, server_id)`` pairs it is owed, a
  missing or duplicated answer raises
  :class:`~repro.common.errors.ProtocolError` instead of silently
  mis-pairing;
* **reconstruction** — paired answers are XOR-folded back into records by the
  client, and scheduling metrics (makespan, throughput) are accumulated from
  the replicas' :class:`~repro.core.scheduler.BatchSchedule` objects.

Time is simulated: callers stamp requests with ``arrival_seconds`` (defaults
to a frontend-local clock) and the max-wait rule triggers deterministically
from those stamps, which keeps the batching policy unit-testable without
threads or sleeps.  :mod:`repro.pir.async_frontend` provides the wall-clock
counterpart (real asyncio max-wait timers, concurrent replica dispatch)
built on the same flush pipeline helpers at the bottom of this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ProtocolError
from repro.core.scheduler import BatchSchedule
from repro.pir.client import PIRClient
from repro.pir.messages import PIRAnswer

#: Flush triggers, reported in :class:`FrontendMetrics.flush_reasons`.
FLUSH_ON_SIZE = "size"
FLUSH_ON_WAIT = "wait"
FLUSH_ON_CLOSE = "close"


@dataclass(frozen=True)
class BatchingPolicy:
    """When a batch of pending requests is dispatched to the replicas.

    A batch flushes as soon as it holds ``max_batch_size`` requests, or when
    its oldest request has waited ``max_wait_seconds`` of simulated time —
    whichever comes first.
    """

    max_batch_size: int = 32
    max_wait_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ProtocolError("max_batch_size must be positive")
        if self.max_wait_seconds < 0:
            raise ProtocolError("max_wait_seconds must be non-negative")

    @classmethod
    def from_pipeline(
        cls,
        num_workers: int,
        num_clusters: int,
        rounds: int = 2,
        max_wait_seconds: float = 0.05,
    ) -> "BatchingPolicy":
        """Size batches to keep the Fig. 8 pipeline saturated.

        A batch of ``max(workers, clusters) * rounds`` queries gives every
        eval worker and every DPU cluster ``rounds`` tasks, which is what the
        :class:`~repro.core.scheduler.BatchScheduler` needs for utilization to
        approach 1 despite fill/drain effects.
        """
        width = max(1, num_workers, num_clusters)
        return cls(max_batch_size=width * max(1, rounds), max_wait_seconds=max_wait_seconds)


class AdaptiveBatchingPolicy:
    """An AIMD controller resizing ``max_batch_size`` online.

    The frontend reports every flushed batch's
    :meth:`~repro.core.scheduler.BatchSchedule.cluster_utilization` back to
    its policy (:meth:`observe_utilization`); this policy steers the batch
    size toward the smallest value that keeps the Fig. 8 pipeline saturated:

    * utilization below ``low_utilization`` means fill/drain effects dominate
      (the batch is too small to keep every cluster busy) — **additively
      increase** the batch size;
    * utilization above ``high_utilization`` means the pipeline is saturated
      and further batching only adds queueing latency — **multiplicatively
      decrease** back toward the knee.

    The duck-typed surface (``max_batch_size``/``max_wait_seconds``) matches
    :class:`BatchingPolicy`, so the frontend accepts either interchangeably.
    """

    def __init__(
        self,
        initial_batch_size: int = 8,
        max_wait_seconds: float = 0.05,
        min_batch_size: int = 1,
        max_batch_size_limit: int = 256,
        increase_step: int = 2,
        decrease_factor: float = 0.5,
        low_utilization: float = 0.5,
        high_utilization: float = 0.9,
    ) -> None:
        if not 1 <= min_batch_size <= initial_batch_size <= max_batch_size_limit:
            raise ProtocolError(
                "need min_batch_size <= initial_batch_size <= max_batch_size_limit"
            )
        if max_wait_seconds < 0:
            raise ProtocolError("max_wait_seconds must be non-negative")
        if increase_step <= 0:
            raise ProtocolError("increase_step must be positive")
        if not 0.0 < decrease_factor < 1.0:
            raise ProtocolError("decrease_factor must be in (0, 1)")
        if not 0.0 <= low_utilization <= high_utilization <= 1.0:
            raise ProtocolError("need 0 <= low_utilization <= high_utilization <= 1")
        self.max_batch_size = initial_batch_size
        self.max_wait_seconds = max_wait_seconds
        self.min_batch_size = min_batch_size
        self.max_batch_size_limit = max_batch_size_limit
        self.increase_step = increase_step
        self.decrease_factor = decrease_factor
        self.low_utilization = low_utilization
        self.high_utilization = high_utilization
        #: ``(utilization, resulting max_batch_size)`` per observation.
        self.history: List[Tuple[float, int]] = []

    def observe_utilization(self, utilization: float) -> int:
        """Feed one batch's cluster utilization; returns the new batch size."""
        if utilization < self.low_utilization:
            self.max_batch_size = min(
                self.max_batch_size_limit, self.max_batch_size + self.increase_step
            )
        elif utilization > self.high_utilization:
            # Round (half-up) rather than truncate: int() would turn e.g.
            # 3 * 0.5 into 1, overshooting past the knee the AIMD loop is
            # hunting for in a single step.  With a factor close to 1 the
            # rounded value can equal the current size — still step down by
            # one, or sustained saturation would never reach the floor.
            decreased = int(self.max_batch_size * self.decrease_factor + 0.5)
            if decreased >= self.max_batch_size:
                decreased = self.max_batch_size - 1
            self.max_batch_size = max(self.min_batch_size, decreased)
        self.history.append((utilization, self.max_batch_size))
        return self.max_batch_size


@dataclass
class PendingRequest:
    """A submitted retrieval waiting for its batch to flush."""

    request_id: int
    index: int
    arrival_seconds: float
    #: One query per replica, all sharing the client's query id.
    queries: List = field(default_factory=list)

    @property
    def expected_keys(self) -> List[Tuple[int, int]]:
        """The ``(query_id, server_id)`` answer pairs this request is owed."""
        return [(q.query_id, q.server_id) for q in self.queries]


@dataclass
class FrontendMetrics:
    """Scheduling metrics accumulated across every flushed batch."""

    batches_dispatched: int = 0
    requests_served: int = 0
    #: Requests answered from another request's scan (``dedup=True`` only).
    deduped_requests: int = 0
    #: Requests served from the hot-record cache without any replica scan.
    cache_hits: int = 0
    #: Sum over batches of the slowest replica's makespan (replicas overlap).
    total_makespan_seconds: float = 0.0
    flush_reasons: Dict[str, int] = field(default_factory=dict)
    last_schedule: Optional[BatchSchedule] = None
    last_cluster_utilization: float = 0.0
    #: Completed reconfigurations (topology applies, replica adds/drains,
    #: control passes) that ran through the frontend's gate.
    reconfigurations: int = 0

    @property
    def throughput_qps(self) -> float:
        """Requests per simulated second across all dispatched batches."""
        if self.total_makespan_seconds <= 0:
            return float("inf") if self.requests_served else 0.0
        return self.requests_served / self.total_makespan_seconds


class PIRFrontend:
    """Aggregates client requests into batches and routes them to replicas.

    ``replicas`` is one server per ``server_id`` (any of the engine-backed
    variants); each must expose ``answer_batch``.  The frontend is the only
    component that sees both replicas' answers, so it is also where the
    two-out-of-two pairing invariant is enforced.
    """

    def __init__(
        self,
        client: PIRClient,
        replicas: Sequence,
        policy: Optional[BatchingPolicy] = None,
        dedup: bool = False,
        observers: Sequence = (),
        cache=None,
    ) -> None:
        """``policy`` may be a :class:`BatchingPolicy` or an
        :class:`AdaptiveBatchingPolicy` (any object exposing
        ``max_batch_size``/``max_wait_seconds``; if it also exposes
        ``observe_utilization``, every flushed batch's cluster utilization is
        reported back to it).

        ``dedup=True`` scans each distinct index of a batch once and fans the
        reconstructed record back out to every request that asked for it, by
        request id.  **Privacy caveat**: the replicas then see one query where
        a non-deduplicating frontend would send several, so the batch's query
        count leaks the number of *distinct* indices in it.  That is only
        acceptable when the frontend is a trusted aggregator and the observed
        traffic pattern is part of the threat model — hence off by default.

        ``observers`` are telemetry sinks: every flushed batch's record
        indices and flush instant are reported to each observer's
        ``observe_batch(indices, now)`` — the hook the control plane's
        :class:`~repro.control.telemetry.HeatTracker` feeds from.  An
        observer fault (e.g. a failed rebalance migration) propagates to
        the caller that triggered the flush — deliberate fail-fast in this
        deterministic frontend; the batch itself completed first, so its
        records remain claimable via :meth:`take_record`.  (The asyncio
        frontend diverges here: it resolves the batch's futures first and
        routes observer faults to the loop's exception handler, since a
        live deployment must not fail retrievals on control-plane errors.)

        ``cache`` is an opt-in :class:`~repro.control.cache.HotRecordCache`
        serving repeat indices without a replica scan.  It rides on the
        dedup machinery (cached leaders skip query generation, followers
        are filled by the dedup fan-out) and carries the same
        trusted-aggregator caveat, so it **requires** ``dedup=True``.
        """
        self.client = client
        self.replicas = check_replicas(client, replicas)
        self.policy = policy if policy is not None else BatchingPolicy()
        self.dedup = dedup
        self.observers: List = list(observers)
        self.cache = None
        if cache is not None:
            self.attach_cache(cache)
        self.metrics = FrontendMetrics()
        self._pending: List[PendingRequest] = []
        self._completed: Dict[int, bytes] = {}
        self._next_request_id = 0
        self._clock = 0.0

    def attach_cache(self, cache) -> None:
        """Enable the hot-record cache tier (requires ``dedup=True``).

        The gate is deliberate: a caching frontend sends the replicas fewer
        queries than it admitted, leaking the traffic pattern exactly as
        batch dedup does, so it is only meaningful in the trusted-aggregator
        deployments that already opted into dedup.
        """
        require_dedup_for_cache(self.dedup)
        self.cache = cache

    def reconfigure(self, mutator):
        """Run a data-plane reconfiguration strictly between flushes.

        The sync frontend's "quiesce" is structural: everything runs on one
        thread, a flush is atomic within :meth:`_flush`, and observers (the
        control plane's rebalance hook) fire only after a batch's scans
        completed — so by the time ``mutator`` runs there is never a flush
        in flight, and no flush can span two plan versions.  The method
        exists so reconfigurations (topology swaps, bulk migrations) go
        through one named gate on both frontends: the asyncio counterpart
        (:meth:`repro.pir.async_frontend.AsyncPIRFrontend.reconfigure`)
        enforces the same guarantee with its writer-preferring quiesce.
        Returns ``mutator()``'s result.
        """
        result = mutator()
        self.metrics.reconfigurations += 1
        return result

    def apply_updates(self, updates) -> None:
        """Apply ``(index, record_bytes)`` updates to every replica.

        The frontend is the right place to land updates once a cache is
        attached: dirty indices are dropped from it first, so a cached
        record can never go stale relative to the replicas (the next
        request for it pays a scan and re-admits the new bytes).  Every
        replica must expose ``apply_updates``.
        """
        updates = list(updates)
        if not updates:
            return
        appliers = collect_update_appliers(self.replicas)
        if self.cache is not None:
            self.cache.invalidate(sorted({index for index, _ in updates}))
        for replica_apply in appliers:
            replica_apply(updates)

    # -- admission -------------------------------------------------------------------

    def submit(self, index: int, arrival_seconds: Optional[float] = None) -> int:
        """Register a retrieval request; returns its request id.

        May flush the pending batch first (the new arrival's timestamp proves
        the oldest pending request exceeded its max wait) or immediately
        after (the batch reached ``max_batch_size``).
        """
        now = self._advance_clock(arrival_seconds)
        if self._pending and now - self._pending[0].arrival_seconds >= self.policy.max_wait_seconds:
            self._flush(FLUSH_ON_WAIT)
        request_id = self._next_request_id
        self._next_request_id += 1
        request = PendingRequest(
            request_id=request_id,
            index=index,
            arrival_seconds=now,
            # With dedup enabled, query generation is deferred to flush time
            # so only one query set is produced per distinct index in a batch.
            queries=[] if self.dedup else self.client.query(index),
        )
        self._pending.append(request)
        if len(self._pending) >= self.policy.max_batch_size:
            self._flush(FLUSH_ON_SIZE)
        return request_id

    def advance_time(self, now: float) -> None:
        """Advance simulated time; flushes the pending batch if its wait expired."""
        now = self._advance_clock(now)
        if self._pending and now - self._pending[0].arrival_seconds >= self.policy.max_wait_seconds:
            self._flush(FLUSH_ON_WAIT)

    def close(self) -> None:
        """Flush whatever is pending (end of the request stream)."""
        if self._pending:
            self._flush(FLUSH_ON_CLOSE)

    # -- results ----------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Requests admitted but not yet dispatched."""
        return len(self._pending)

    def take_record(self, request_id: int) -> bytes:
        """Pop the reconstructed record for ``request_id`` (must be complete)."""
        try:
            return self._completed.pop(request_id)
        except KeyError:
            raise ProtocolError(f"request {request_id} has no completed record") from None

    def retrieve_batch(self, indices: Sequence[int]) -> List[bytes]:
        """Retrieve several records, batching under the configured policy.

        Submissions share one arrival instant, so batches split purely on
        ``max_batch_size``; the trailing partial batch flushes on close.
        Records return in submission order.
        """
        request_ids = [self.submit(index) for index in indices]
        self.close()
        return [self.take_record(request_id) for request_id in request_ids]

    # -- internals ----------------------------------------------------------------------

    def _advance_clock(self, now: Optional[float]) -> float:
        if now is None:
            return self._clock
        if now < self._clock:
            raise ProtocolError(
                f"time moves forward: {now} is before the frontend clock {self._clock}"
            )
        self._clock = now
        return now

    def _flush(self, reason: str) -> None:
        batch, self._pending = self._pending, []
        if self.dedup:
            scanned, cached = dedup_leaders(batch, self.client, self.cache)
        else:
            scanned, cached = batch, {}
        per_server = per_server_queries(scanned, len(self.replicas))
        # Route through each replica's public batch surface, so attached cost
        # models (CPU/GPU analytic estimates, IM-PIR schedules) are honoured.
        # Replicas are called in sequence here; the asyncio frontend
        # (repro.pir.async_frontend) dispatches the same per-server query
        # lists concurrently and shares every helper below.  A batch served
        # entirely from the cache dispatches nothing (an empty batch is a
        # protocol error on the engine side, and there is nothing to scan).
        raw_results = (
            [
                replica.answer_batch(per_server[server_id])
                for server_id, replica in enumerate(self.replicas)
            ]
            if scanned
            else []
        )
        answers_by_key, makespans, schedules = collect_answers(raw_results)
        completed, record_by_index = reconstruct_scanned(
            self.client, scanned, answers_by_key
        )
        admit_scanned(self.cache, record_by_index)
        record_by_index.update(cached)
        self._completed.update(completed)
        deduped = 0
        if self.dedup:
            deduped = fanout_dedup(
                batch, self._completed, record_by_index, cached_indices=cached
            )
            self.metrics.deduped_requests += deduped
        require_no_orphans(answers_by_key)
        cache_hits = count_cache_hits(batch, cached)
        fold_metrics(
            self.metrics,
            self.policy,
            reason,
            len(batch),
            makespans,
            schedules,
            indices=[request.index for request in batch],
            now=self._clock,
            observers=self.observers,
            cache_hits=cache_hits,
        )
        if wants_flush_observation(self.observers):
            notify_flush_observers(
                self.observers,
                build_flush_observation(
                    reason=reason,
                    now=self._clock,
                    batch=batch,
                    scanned=scanned,
                    cached=cached,
                    deduped=deduped,
                    cache_hits=cache_hits,
                    makespans=makespans,
                    raw_results=raw_results,
                ),
            )


#: The frontend is a request router; both names are part of the public API.
RequestRouter = PIRFrontend


# ---------------------------------------------------------------------------
# Shared flush pipeline: pure, event-loop-free helpers.
#
# Both frontends — the deterministic simulated-clock PIRFrontend above and
# the wall-clock AsyncPIRFrontend in repro.pir.async_frontend — flush a batch
# through exactly these steps; only *how* the replicas are called (in
# sequence vs. concurrently via asyncio.to_thread) differs.  Keeping the
# pairing/dedup/metrics logic here, loop-free and stateless, is what makes
# the two frontends bit-identical by construction.
# ---------------------------------------------------------------------------


def check_replicas(client: PIRClient, replicas: Sequence) -> List:
    """Validate a replica set against the client's expectations.

    Every replica must expose a ``server_id`` matching its position (the
    pairing invariant keys answers by it) — an object without the attribute
    is rejected rather than silently trusted.
    """
    replicas = list(replicas)
    if len(replicas) != client.num_servers:
        raise ProtocolError(
            f"client expects {client.num_servers} replicas, got {len(replicas)}"
        )
    for server_id, replica in enumerate(replicas):
        actual = getattr(replica, "server_id", None)
        if actual is None:
            raise ProtocolError(
                f"replica at position {server_id} exposes no server_id "
                f"(answer pairing is keyed by it)"
            )
        if actual != server_id:
            raise ProtocolError(
                f"replica at position {server_id} reports server_id {actual}"
            )
    return replicas


def dedup_leaders(
    batch: Sequence[PendingRequest], client: PIRClient, cache=None
) -> Tuple[List[PendingRequest], Dict[int, bytes]]:
    """Pick one leader per distinct index; leaders generate (and owe) queries.

    Returns ``(leaders to scan, records served from cache by index)``.  A
    distinct index resident in ``cache`` is served from it instead of
    electing a leader — no queries are generated, no replica sees it (the
    whole point of the cache tier) — and the dedup fan-out
    (:func:`fanout_dedup`) delivers the cached record to every request that
    asked for it.  Other followers are satisfied from their leader's
    reconstruction the same way.
    """
    leaders: Dict[int, PendingRequest] = {}
    cached: Dict[int, bytes] = {}
    for request in batch:
        if request.index in leaders or request.index in cached:
            continue
        record = cache.get(request.index) if cache is not None else None
        if record is not None:
            cached[request.index] = record
            continue
        request.queries = client.query(request.index)
        leaders[request.index] = request
    return list(leaders.values()), cached


def collect_update_appliers(replicas: Sequence) -> List:
    """Every replica's ``apply_updates``, validated before any runs.

    Validation must complete for the whole replica set *before* the first
    update lands: discovering a non-updatable replica halfway through would
    leave the set permanently inconsistent (some replicas on new bytes,
    some on old — XOR reconstruction then returns garbage, silently).
    """
    appliers = []
    for replica in replicas:
        replica_apply = getattr(replica, "apply_updates", None)
        if replica_apply is None:
            raise ProtocolError(
                f"replica {replica.server_id} exposes no apply_updates"
            )
        appliers.append(replica_apply)
    return appliers


def require_dedup_for_cache(dedup: bool) -> None:
    """The hot-record cache gate, stated once for both frontends.

    Cached answers skip replica scans, leaking the traffic pattern exactly
    as batch dedup does — the cache is only meaningful in trusted-
    aggregator deployments that already opted into ``dedup=True``.
    """
    if not dedup:
        raise ProtocolError(
            "a hot-record cache requires dedup=True (same trusted-"
            "aggregator caveat: cached answers skip replica scans)"
        )


def admit_scanned(cache, record_by_index: Dict[int, bytes]) -> None:
    """Offer every freshly scanned reconstruction to the cache (if any).

    Called before cached records are merged into ``record_by_index``, so
    only records that actually cost a replica scan are offered; admission
    policy (heat floor, LRU eviction) is the cache's own.
    """
    if cache is not None:
        cache.admit_many(record_by_index)


def count_cache_hits(batch: Sequence[PendingRequest], cached: Dict[int, bytes]) -> int:
    """Requests of ``batch`` served from the cache (leaders and followers)."""
    return sum(1 for request in batch if request.index in cached)


def per_server_queries(scanned: Sequence[PendingRequest], num_servers: int) -> List[List]:
    """Group the scanned requests' queries into one list per replica."""
    per_server: List[List] = [[] for _ in range(num_servers)]
    for request in scanned:
        for query in request.queries:
            per_server[query.server_id].append(query)
    return per_server


def collect_answers(
    raw_results: Sequence,
) -> Tuple[Dict[Tuple[int, int], PIRAnswer], List[float], List[BatchSchedule]]:
    """Key every replica's answers by ``(query_id, server_id)``.

    ``raw_results`` holds one ``answer_batch`` result per replica (any
    dialect :func:`_normalize_batch` understands).  Returns the answer map
    plus the per-replica makespans and batch schedules; a duplicated key
    raises :class:`ProtocolError` instead of silently overwriting.
    """
    answers_by_key: Dict[Tuple[int, int], PIRAnswer] = {}
    makespans: List[float] = []
    schedules: List[BatchSchedule] = []
    for raw in raw_results:
        answers, makespan, schedule = _normalize_batch(raw)
        makespans.append(makespan)
        if schedule is not None:
            schedules.append(schedule)
        for answer in answers:
            key = (answer.query_id, answer.server_id)
            if key in answers_by_key:
                raise ProtocolError(
                    f"duplicate answer for query {answer.query_id} "
                    f"from server {answer.server_id}"
                )
            answers_by_key[key] = answer
    return answers_by_key, makespans, schedules


def reconstruct_scanned(
    client: PIRClient,
    scanned: Sequence[PendingRequest],
    answers_by_key: Dict[Tuple[int, int], PIRAnswer],
) -> Tuple[Dict[int, bytes], Dict[int, bytes]]:
    """Pair and reconstruct every scanned request's record.

    Consumes the owed answers from ``answers_by_key`` (what remains
    afterwards is orphaned — see :func:`require_no_orphans`) and returns
    ``(record by request id, record by index)``; a missing answer raises
    :class:`ProtocolError`.
    """
    completed: Dict[int, bytes] = {}
    record_by_index: Dict[int, bytes] = {}
    for request in scanned:
        group = []
        for key in request.expected_keys:
            try:
                group.append(answers_by_key.pop(key))
            except KeyError:
                raise ProtocolError(
                    f"missing answer for request {request.request_id} "
                    f"(query {key[0]}, server {key[1]})"
                ) from None
        group.sort(key=lambda answer: answer.server_id)
        record = client.reconstruct(group)
        completed[request.request_id] = record
        record_by_index[request.index] = record
    return completed, record_by_index


def fanout_dedup(
    batch: Sequence[PendingRequest],
    completed: Dict[int, bytes],
    record_by_index: Dict[int, bytes],
    cached_indices: Sequence[int] = frozenset(),
) -> int:
    """Fan each leader's record out to its followers by request id.

    Fills ``completed`` in place for every batch request not already served
    by its own scan; returns how many were answered from another request's
    *scan*.  Requests whose index is in ``cached_indices`` are filled too
    but not counted — they are cache hits (:func:`count_cache_hits`), not
    dedup wins, and the two metrics must not double-count.
    """
    deduped = 0
    for request in batch:
        if request.request_id not in completed:
            completed[request.request_id] = record_by_index[request.index]
            if request.index not in cached_indices:
                deduped += 1
    return deduped


def require_no_orphans(answers_by_key: Dict[Tuple[int, int], PIRAnswer]) -> None:
    """Reject answers no request claimed (a replica answered off-protocol)."""
    if answers_by_key:
        orphans = sorted(answers_by_key)
        raise ProtocolError(
            f"replicas returned {len(orphans)} unmatched answers: {orphans}"
        )


def fold_metrics(
    metrics: FrontendMetrics,
    policy,
    reason: str,
    num_requests: int,
    makespans: Sequence[float],
    schedules: Sequence[BatchSchedule],
    indices: Sequence[int] = (),
    now: float = 0.0,
    observers: Sequence = (),
    cache_hits: int = 0,
) -> None:
    """Accumulate one flushed batch into ``metrics`` and feed the observers.

    Replicas overlap, so the batch is charged the slowest replica's makespan;
    a policy exposing ``observe_utilization`` (the AIMD controller) is fed
    the slowest schedule's cluster utilization.  ``observers`` exposing
    ``observe_batch`` get the batch's record indices and flush instant —
    the same per-flush hook, which is how the control plane's heat
    telemetry sees every batch from both the sync and the async frontend.
    """
    metrics.batches_dispatched += 1
    metrics.requests_served += num_requests
    metrics.cache_hits += cache_hits
    metrics.total_makespan_seconds += max(makespans, default=0.0)
    metrics.flush_reasons[reason] = metrics.flush_reasons.get(reason, 0) + 1
    if schedules:
        slowest = max(schedules, key=lambda schedule: schedule.makespan)
        metrics.last_schedule = slowest
        metrics.last_cluster_utilization = slowest.cluster_utilization()
        observe = getattr(policy, "observe_utilization", None)
        if observe is not None:
            observe(metrics.last_cluster_utilization)
    for observer in observers:
        observe_batch = getattr(observer, "observe_batch", None)
        if observe_batch is not None:
            observe_batch(indices, now)


@dataclass(frozen=True)
class ResultDetail:
    """Per-answer timing detail captured from a replica's raw batch result.

    ``breakdown`` is the engine's per-query :class:`PhaseTimer` **by
    reference** (the sharded backend keys per-shard scan detail by its
    identity); ``simulated_seconds`` is the engine-written
    :attr:`PIRAnswer.simulated_seconds` — an independently computed total a
    trace's span sum can be cross-checked against.
    """

    breakdown: Optional[object]
    simulated_seconds: Optional[float]


@dataclass(frozen=True)
class FlushObservation:
    """Everything one flushed batch can tell an ``observe_flush`` observer.

    Built only when some observer exposes ``observe_flush`` (the
    observability hub), *after* the batch's futures/records are settled —
    instrumentation can never change what the data plane returns.  The
    per-request tuples use plain ids/indices so the observation is safe to
    retain; only ``details`` holds live objects (the breakdown timers).
    """

    reason: str
    now: float
    #: ``(request_id, index)`` for every request of the batch.
    batch: Tuple[Tuple[int, int], ...]
    #: ``(request_id, index, expected (query_id, server_id) keys)`` for the
    #: requests that actually reached the replicas.
    scanned: Tuple[Tuple[int, int, Tuple[Tuple[int, int], ...]], ...]
    #: Indices served straight from the hot-record cache.
    cached_indices: frozenset
    cache_hits: int
    deduped: int
    makespans: Tuple[float, ...]
    #: ``(query_id, server_id)`` -> :class:`ResultDetail`.
    details: Dict[Tuple[int, int], ResultDetail]


def wants_flush_observation(observers: Sequence) -> bool:
    """Whether any observer wants the (costlier) per-flush observation."""
    return any(
        getattr(observer, "observe_flush", None) is not None for observer in observers
    )


def collect_result_details(raw_results: Sequence) -> Dict[Tuple[int, int], ResultDetail]:
    """Capture per-answer breakdowns/totals from raw ``answer_batch`` results.

    Accepts the same result dialects as :func:`_normalize_batch`; answers
    without a per-query breakdown (CPU/GPU analytic batch results, bare
    :class:`PIRAnswer` lists) still contribute their engine-simulated
    seconds.
    """
    details: Dict[Tuple[int, int], ResultDetail] = {}

    def harvest(item) -> None:
        answer = getattr(item, "answer", item)
        details[(answer.query_id, answer.server_id)] = ResultDetail(
            breakdown=getattr(item, "breakdown", None),
            simulated_seconds=answer.simulated_seconds,
        )

    for raw in raw_results:
        results = getattr(raw, "results", None)
        if results is not None:
            for item in results:
                harvest(item)
        elif hasattr(raw, "answers"):
            for answer in raw.answers:
                harvest(answer)
        else:
            for item in raw:
                harvest(item)
    return details


def build_flush_observation(
    reason: str,
    now: float,
    batch: Sequence[PendingRequest],
    scanned: Sequence[PendingRequest],
    cached: Dict[int, bytes],
    deduped: int,
    cache_hits: int,
    makespans: Sequence[float],
    raw_results: Sequence,
) -> FlushObservation:
    """Assemble the :class:`FlushObservation` for one completed flush."""
    return FlushObservation(
        reason=reason,
        now=now,
        batch=tuple((request.request_id, request.index) for request in batch),
        scanned=tuple(
            (request.request_id, request.index, tuple(request.expected_keys))
            for request in scanned
        ),
        cached_indices=frozenset(cached),
        cache_hits=cache_hits,
        deduped=deduped,
        makespans=tuple(makespans),
        details=collect_result_details(raw_results),
    )


def notify_flush_observers(observers: Sequence, observation: FlushObservation) -> None:
    """Hand the observation to every observer exposing ``observe_flush``.

    Fault semantics follow :func:`fold_metrics`: in the sync frontend an
    observer fault propagates to the flushing caller (the batch's records
    are already claimable), in the async frontend the caller routes it to
    the loop's exception handler.
    """
    for observer in observers:
        observe_flush = getattr(observer, "observe_flush", None)
        if observe_flush is not None:
            observe_flush(observation)


def _normalize_batch(raw) -> Tuple[List[PIRAnswer], float, Optional[BatchSchedule]]:
    """Extract ``(answers, makespan, schedule)`` from any ``answer_batch`` result.

    Accepts :class:`~repro.core.results.IMPIRBatchResult` (makespan from its
    schedule), CPU/GPU batch results (makespan from their analytic
    ``latency_seconds``), or plain sequences of per-query results /
    :class:`PIRAnswer` (makespan is the sum of the per-query breakdowns —
    sequential execution — which is 0.0 for untimed servers).
    """
    schedule = getattr(raw, "schedule", None)
    if hasattr(raw, "answers"):
        makespan = getattr(raw, "latency_seconds", 0.0)
        if not makespan and schedule is not None:
            makespan = schedule.makespan
        return list(raw.answers), float(makespan), schedule
    answers: List[PIRAnswer] = []
    makespan = 0.0
    for item in raw:
        if hasattr(item, "answer"):
            answers.append(item.answer)
            breakdown = getattr(item, "breakdown", None)
            if breakdown is not None:
                makespan += breakdown.total
        else:
            answers.append(item)
    return answers, makespan, schedule
