"""End-to-end protocol driver wiring one client to a set of replica servers.

`MultiServerPIRProtocol` is the simplest way to run the complete flow of
Algorithm 1 (key generation -> per-server evaluation -> reconstruction) in a
single process.  It is used by the quickstart example, by the integration
tests, and as the correctness oracle against which the architecture-specific
servers (CPU, GPU, IM-PIR) are checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.common.errors import ProtocolError
from repro.dpf.prf import make_prg
from repro.pir.client import SCHEME_DPF, SCHEME_NAIVE, PIRClient
from repro.pir.database import Database
from repro.pir.messages import PIRAnswer
from repro.pir.server import PIRServer


@dataclass
class RetrievalTrace:
    """Everything that happened while retrieving one record (for reporting)."""

    index: int
    record: bytes
    upload_bytes: int
    download_bytes: int
    answers: List[PIRAnswer] = field(default_factory=list)


class MultiServerPIRProtocol:
    """A client plus ``num_servers`` replicas of the same database.

    The servers are plain reference servers; architecture-aware deployments
    (IM-PIR, CPU-PIR, GPU-PIR) plug their own server objects into the same
    client/message types.
    """

    def __init__(
        self,
        database: Database,
        num_servers: int = 2,
        scheme: str = SCHEME_DPF,
        prg_backend: str = "numpy",
        seed: Optional[int] = None,
    ) -> None:
        if num_servers < 2:
            raise ProtocolError("multi-server PIR requires at least two servers")
        if scheme not in (SCHEME_DPF, SCHEME_NAIVE):
            raise ProtocolError(f"unknown scheme {scheme!r}")
        self.database = database
        self.num_servers = num_servers
        self.scheme = scheme
        # The client and every server must share the PRG construction, but the
        # instances are separate: a real deployment has no shared state.
        self.client = PIRClient(
            num_records=database.num_records,
            record_size=database.record_size,
            num_servers=num_servers,
            scheme=scheme,
            prg=make_prg(prg_backend),
            seed=seed,
        )
        self.servers = [
            PIRServer(database, server_id=i, prg=make_prg(prg_backend))
            for i in range(num_servers)
        ]

    def retrieve(self, index: int) -> bytes:
        """Privately retrieve the record at ``index``."""
        return self.retrieve_with_trace(index).record

    def retrieve_with_trace(self, index: int) -> RetrievalTrace:
        """Retrieve a record and report the per-message communication costs."""
        queries = self.client.query(index)
        answers = [self.servers[q.server_id].answer(q) for q in queries]
        record = self.client.reconstruct(answers)
        return RetrievalTrace(
            index=index,
            record=record,
            upload_bytes=sum(q.upload_bytes for q in queries),
            download_bytes=sum(a.download_bytes for a in answers),
            answers=answers,
        )

    def retrieve_batch(self, indices: Sequence[int]) -> List[bytes]:
        """Retrieve several records (queries are processed sequentially)."""
        return [self.retrieve(index) for index in indices]

    def verify_against_database(self, indices: Sequence[int]) -> bool:
        """Check PIR answers against direct database reads (testing helper)."""
        for index in indices:
            if self.retrieve(index) != self.database.record(index):
                return False
        return True
