"""dpXOR kernels: the linear "select-and-XOR" scan at the heart of the server.

The paper calls the combination of the inner product with the selector vector
and the XOR accumulation "dpXOR".  For an XOR-group database the operation is

    r = XOR_{j : v[j] = 1}  D[j]

which every PIR server must evaluate over the *entire* database for every
query (the all-for-one principle).  This module provides the reference numpy
implementations plus the chunked/two-stage variants mirroring how the work is
split across DPUs and tasklets, and a small operation counter used by the
cost models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.common.errors import DatabaseError


@dataclass
class DpXorStats:
    """Byte/record traffic of a dpXOR evaluation, consumed by the cost models."""

    records_scanned: int = 0
    records_selected: int = 0
    db_bytes_read: int = 0
    selector_bytes_read: int = 0
    output_bytes_written: int = 0

    def merge(self, other: "DpXorStats") -> None:
        """Accumulate another stats object into this one."""
        self.records_scanned += other.records_scanned
        self.records_selected += other.records_selected
        self.db_bytes_read += other.db_bytes_read
        self.selector_bytes_read += other.selector_bytes_read
        self.output_bytes_written += other.output_bytes_written

    @property
    def total_bytes_moved(self) -> int:
        """All bytes that crossed the memory interface."""
        return self.db_bytes_read + self.selector_bytes_read + self.output_bytes_written


#: Word width of the fast XOR path: eight uint8 lanes folded per operation.
WORD_BYTES = 8

#: Target per-chunk database footprint of the batched one-pass scan.  Sized
#: to sit comfortably inside a per-core cache so the ``B`` accumulator passes
#: over a chunk re-read hot lines instead of streaming the database ``B``
#: times from DRAM.
BATCH_CHUNK_BYTES = 1 << 18


def word_view(array: np.ndarray) -> Optional[np.ndarray]:
    """View ``array``'s last axis as uint64 words, or ``None`` when it can't.

    The fast path needs the byte count along the last axis to be a multiple
    of the word width and the buffer to be C-contiguous; odd record sizes and
    strided views take the uint8 fallback instead.
    """
    if array.shape[-1] % WORD_BYTES or array.shape[-1] == 0:
        return None
    if not array.flags["C_CONTIGUOUS"]:
        return None
    return array.view(np.uint64)


def _validate(database: np.ndarray, selector: np.ndarray) -> tuple:
    database = np.asarray(database, dtype=np.uint8)
    selector = np.asarray(selector, dtype=np.uint8)
    if database.ndim != 2:
        raise DatabaseError("database chunk must be 2-D (records x bytes)")
    if selector.ndim != 1 or selector.shape[0] != database.shape[0]:
        raise DatabaseError(
            f"selector length {selector.shape} does not match database rows {database.shape[0]}"
        )
    return database, selector


def _validate_many(database: np.ndarray, selectors: np.ndarray) -> tuple:
    database = np.asarray(database, dtype=np.uint8)
    selectors = np.asarray(selectors, dtype=np.uint8)
    if database.ndim != 2:
        raise DatabaseError("database chunk must be 2-D (records x bytes)")
    if selectors.ndim != 2 or selectors.shape[1] != database.shape[0]:
        raise DatabaseError(
            f"selector matrix {selectors.shape} does not match database rows "
            f"{database.shape[0]} (expected (batch, records))"
        )
    return database, selectors


def dpxor(
    database: np.ndarray,
    selector: np.ndarray,
    stats: Optional[DpXorStats] = None,
) -> np.ndarray:
    """Reference dpXOR: XOR of database rows whose selector bit is set.

    ``database`` is ``(N, record_size)`` uint8, ``selector`` is ``(N,)`` of
    0/1 values.  Returns the ``(record_size,)`` XOR accumulator.  The whole
    database is charged to ``stats`` regardless of how many bits are set: the
    all-for-one principle means a real server touches every record.
    """
    database, selector = _validate(database, selector)
    mask = selector.astype(bool)
    if mask.any():
        result = np.bitwise_xor.reduce(database[mask], axis=0)
    else:
        result = np.zeros(database.shape[1], dtype=np.uint8)
    if stats is not None:
        stats.merge(
            DpXorStats(
                records_scanned=database.shape[0],
                records_selected=int(mask.sum()),
                db_bytes_read=database.shape[0] * database.shape[1],
                selector_bytes_read=database.shape[0],
                output_bytes_written=database.shape[1],
            )
        )
    return result.astype(np.uint8)


def dpxor_chunked(
    database: np.ndarray,
    selector: np.ndarray,
    num_chunks: int,
    stats: Optional[DpXorStats] = None,
) -> np.ndarray:
    """dpXOR evaluated as ``num_chunks`` partial scans folded together.

    Mirrors the distribution of the database across DPUs: each chunk produces
    a partial result and the partials are XOR-folded, which is exactly the
    aggregation step ➏ of Algorithm 1.  The result is bit-identical to
    :func:`dpxor`.
    """
    database, selector = _validate(database, selector)
    if num_chunks <= 0:
        raise DatabaseError("num_chunks must be positive")
    partials = []
    bounds = np.linspace(0, database.shape[0], num_chunks + 1, dtype=np.int64)
    for chunk_index in range(num_chunks):
        start, stop = int(bounds[chunk_index]), int(bounds[chunk_index + 1])
        partials.append(dpxor(database[start:stop], selector[start:stop], stats=stats))
    return xor_fold(partials)


def dpxor_two_stage(
    database: np.ndarray,
    selector: np.ndarray,
    num_workers: int,
    stats: Optional[DpXorStats] = None,
) -> np.ndarray:
    """Two-stage parallel reduction (Algorithm 1, TASKLETXOR + MASTERXOR).

    Stage 1 splits the chunk across ``num_workers`` tasklets that each produce
    a partial result; stage 2 has the master tasklet XOR-fold the partials.
    Functionally identical to :func:`dpxor`; kept separate so the DPU kernel
    and its tests exercise the exact structure of the paper's kernel.
    """
    database, selector = _validate(database, selector)
    if num_workers <= 0:
        raise DatabaseError("num_workers must be positive")
    partials = []
    num_records = database.shape[0]
    per_worker = -(-num_records // num_workers) if num_records else 0
    for worker in range(num_workers):
        start = min(worker * per_worker, num_records)
        stop = min(start + per_worker, num_records)
        if start == stop:
            partials.append(np.zeros(database.shape[1], dtype=np.uint8))
            continue
        partials.append(dpxor(database[start:stop], selector[start:stop], stats=stats))
    return xor_fold(partials)


def dpxor_many(
    database: np.ndarray,
    selectors: np.ndarray,
    stats: Optional[DpXorStats] = None,
    chunk_records: Optional[int] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Batched dpXOR: serve a whole batch of selectors in one database pass.

    ``database`` is ``(N, record_size)`` uint8 and ``selectors`` is
    ``(B, N)`` of 0/1 values — one selector share per row.  Returns the
    ``(B, record_size)`` matrix of XOR accumulators, bit-identical to calling
    :func:`dpxor` on each row.

    The scan walks the database once in cache-sized record chunks
    (``chunk_records`` rows at a time, defaulting to ~``BATCH_CHUNK_BYTES``
    worth) and folds every batch row's selected records into its accumulator
    while the chunk is hot, via uint64-word views when the record size is a
    multiple of :data:`WORD_BYTES` (uint8 fallback otherwise).  Batching is a
    wall-clock optimisation only: ``stats`` is charged exactly what ``B``
    sequential full scans charge (the all-for-one principle holds per query).

    ``out``, when given, is a caller-owned C-contiguous ``(B, record_size)``
    uint8 accumulator block the scan writes into (and returns) instead of
    allocating — what lets the sharded threads executor's workers land their
    shard's sub-results straight into one preallocated slab.  It is zeroed
    first, so reuse across batches needs no caller-side reset.
    """
    database, selectors = _validate_many(database, selectors)
    num_records, record_size = database.shape
    batch = selectors.shape[0]
    if out is None:
        out = np.zeros((batch, record_size), dtype=np.uint8)
    else:
        if out.shape != (batch, record_size) or out.dtype != np.uint8:
            raise DatabaseError(
                f"out buffer {out.shape}/{out.dtype} does not match "
                f"({batch}, {record_size}) uint8"
            )
        out[:] = 0
    selected = selectors.astype(bool)
    if num_records and batch and record_size:
        if chunk_records is None:
            chunk_records = max(1, BATCH_CHUNK_BYTES // record_size)
        elif chunk_records <= 0:
            raise DatabaseError("chunk_records must be positive")
        db_words = word_view(database)
        scan_db = db_words if db_words is not None else database
        accumulators = out.view(np.uint64) if db_words is not None else out
        for start in range(0, num_records, chunk_records):
            block = scan_db[start : start + chunk_records]
            block_masks = selected[:, start : start + chunk_records]
            for row in range(batch):
                mask = block_masks[row]
                if mask.any():
                    accumulators[row] ^= np.bitwise_xor.reduce(block[mask], axis=0)
    if stats is not None:
        stats.merge(
            DpXorStats(
                records_scanned=batch * num_records,
                records_selected=int(selected.sum()),
                db_bytes_read=batch * num_records * record_size,
                selector_bytes_read=batch * num_records,
                output_bytes_written=batch * record_size,
            )
        )
    return out


def dpxor_many_chunked(
    database: np.ndarray,
    selectors: np.ndarray,
    num_chunks: int,
    stats: Optional[DpXorStats] = None,
) -> np.ndarray:
    """Batched :func:`dpxor_chunked`: per-chunk batched scans, folded.

    Splits the records exactly like :func:`dpxor_chunked` (so the PIM/CPU/GPU
    cost models charge the same simulated bytes per chunk) and serves the
    whole batch within each chunk via :func:`dpxor_many`.
    """
    database, selectors = _validate_many(database, selectors)
    if num_chunks <= 0:
        raise DatabaseError("num_chunks must be positive")
    result = np.zeros((selectors.shape[0], database.shape[1]), dtype=np.uint8)
    bounds = np.linspace(0, database.shape[0], num_chunks + 1, dtype=np.int64)
    for chunk_index in range(num_chunks):
        start, stop = int(bounds[chunk_index]), int(bounds[chunk_index + 1])
        _xor_into(
            result,
            dpxor_many(database[start:stop], selectors[:, start:stop], stats=stats),
        )
    return result


def dpxor_many_two_stage(
    database: np.ndarray,
    selectors: np.ndarray,
    num_workers: int,
    stats: Optional[DpXorStats] = None,
) -> np.ndarray:
    """Batched :func:`dpxor_two_stage`: per-tasklet batched partials, folded.

    Stage 1 splits the records across ``num_workers`` exactly like the
    sequential kernel; each worker serves the whole batch over its slice in
    one pass, and stage 2 XOR-folds the ``(B, record_size)`` partials.
    """
    database, selectors = _validate_many(database, selectors)
    if num_workers <= 0:
        raise DatabaseError("num_workers must be positive")
    result = np.zeros((selectors.shape[0], database.shape[1]), dtype=np.uint8)
    num_records = database.shape[0]
    per_worker = -(-num_records // num_workers) if num_records else 0
    for worker in range(num_workers):
        start = min(worker * per_worker, num_records)
        stop = min(start + per_worker, num_records)
        if start == stop:
            continue
        _xor_into(
            result,
            dpxor_many(database[start:stop], selectors[:, start:stop], stats=stats),
        )
    return result


def _xor_into(accumulator: np.ndarray, partial: np.ndarray) -> None:
    """XOR ``partial`` into ``accumulator`` in place, word-wide when possible."""
    acc_words = word_view(accumulator)
    part_words = word_view(partial)
    if acc_words is not None and part_words is not None:
        acc_words ^= part_words
    else:
        accumulator ^= partial


def xor_fold(partials: Sequence[np.ndarray]) -> np.ndarray:
    """XOR-fold a sequence of equal-length byte vectors into one."""
    if len(partials) == 0:
        raise DatabaseError("cannot fold an empty list of partial results")
    arrays = [np.asarray(p, dtype=np.uint8) for p in partials]
    length = arrays[0].shape[0]
    for i, array in enumerate(arrays):
        if array.ndim != 1 or array.shape[0] != length:
            raise DatabaseError(f"partial result {i} has mismatched shape {array.shape}")
    result = np.zeros(length, dtype=np.uint8)
    result_words = word_view(result)
    for array in arrays:
        array_words = word_view(array)
        if result_words is not None and array_words is not None:
            result_words ^= array_words
        else:
            result ^= array
    return result


def xor_bytes(left: bytes, right: bytes) -> bytes:
    """XOR two equal-length byte strings (client-side reconstruction step)."""
    if len(left) != len(right):
        raise DatabaseError("cannot XOR byte strings of different lengths")
    if len(left) % WORD_BYTES == 0 and len(left):
        # XOR is bytewise, so folding eight lanes per uint64 operation leaves
        # the output bytes identical regardless of host endianness.
        left_words = np.frombuffer(left, dtype=np.uint64)
        right_words = np.frombuffer(right, dtype=np.uint64)
        return (left_words ^ right_words).tobytes()
    left_arr = np.frombuffer(left, dtype=np.uint8)
    right_arr = np.frombuffer(right, dtype=np.uint8)
    return (left_arr ^ right_arr).tobytes()


def inner_product_mod(
    database: np.ndarray,
    weights: np.ndarray,
    modulus: int,
    stats: Optional[DpXorStats] = None,
) -> np.ndarray:
    """Weighted sum of database rows modulo ``modulus``.

    The paper's formal model works over a field F_p; XOR is the special case
    p = 2 applied bitwise.  This generalised inner product backs the n-server
    additive-sharing variant of the protocol and the F_p examples.
    """
    database = np.asarray(database, dtype=np.uint8)
    weights = np.asarray(weights)
    if database.ndim != 2:
        raise DatabaseError("database chunk must be 2-D (records x bytes)")
    if weights.shape != (database.shape[0],):
        raise DatabaseError("weights length must equal the number of records")
    if modulus < 2:
        raise DatabaseError("modulus must be at least 2")
    accumulator = (
        database.astype(np.uint64) * weights.astype(np.uint64)[:, None]
    ).sum(axis=0) % np.uint64(modulus)
    if stats is not None:
        stats.merge(
            DpXorStats(
                records_scanned=database.shape[0],
                records_selected=int(np.count_nonzero(weights)),
                db_bytes_read=database.shape[0] * database.shape[1],
                selector_bytes_read=weights.nbytes,
                output_bytes_written=database.shape[1] * 8,
            )
        )
    return accumulator.astype(np.uint64)


def partial_results_to_list(partials: Sequence[np.ndarray]) -> List[bytes]:
    """Convert partial-result arrays to raw bytes (what DPUs ship to the host)."""
    return [np.asarray(p, dtype=np.uint8).tobytes() for p in partials]
