"""dpXOR kernels: the linear "select-and-XOR" scan at the heart of the server.

The paper calls the combination of the inner product with the selector vector
and the XOR accumulation "dpXOR".  For an XOR-group database the operation is

    r = XOR_{j : v[j] = 1}  D[j]

which every PIR server must evaluate over the *entire* database for every
query (the all-for-one principle).  This module provides the reference numpy
implementations plus the chunked/two-stage variants mirroring how the work is
split across DPUs and tasklets, and a small operation counter used by the
cost models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.common.errors import DatabaseError


@dataclass
class DpXorStats:
    """Byte/record traffic of a dpXOR evaluation, consumed by the cost models."""

    records_scanned: int = 0
    records_selected: int = 0
    db_bytes_read: int = 0
    selector_bytes_read: int = 0
    output_bytes_written: int = 0

    def merge(self, other: "DpXorStats") -> None:
        """Accumulate another stats object into this one."""
        self.records_scanned += other.records_scanned
        self.records_selected += other.records_selected
        self.db_bytes_read += other.db_bytes_read
        self.selector_bytes_read += other.selector_bytes_read
        self.output_bytes_written += other.output_bytes_written

    @property
    def total_bytes_moved(self) -> int:
        """All bytes that crossed the memory interface."""
        return self.db_bytes_read + self.selector_bytes_read + self.output_bytes_written


def _validate(database: np.ndarray, selector: np.ndarray) -> tuple:
    database = np.asarray(database, dtype=np.uint8)
    selector = np.asarray(selector, dtype=np.uint8)
    if database.ndim != 2:
        raise DatabaseError("database chunk must be 2-D (records x bytes)")
    if selector.ndim != 1 or selector.shape[0] != database.shape[0]:
        raise DatabaseError(
            f"selector length {selector.shape} does not match database rows {database.shape[0]}"
        )
    return database, selector


def dpxor(
    database: np.ndarray,
    selector: np.ndarray,
    stats: Optional[DpXorStats] = None,
) -> np.ndarray:
    """Reference dpXOR: XOR of database rows whose selector bit is set.

    ``database`` is ``(N, record_size)`` uint8, ``selector`` is ``(N,)`` of
    0/1 values.  Returns the ``(record_size,)`` XOR accumulator.  The whole
    database is charged to ``stats`` regardless of how many bits are set: the
    all-for-one principle means a real server touches every record.
    """
    database, selector = _validate(database, selector)
    mask = selector.astype(bool)
    if mask.any():
        result = np.bitwise_xor.reduce(database[mask], axis=0)
    else:
        result = np.zeros(database.shape[1], dtype=np.uint8)
    if stats is not None:
        stats.merge(
            DpXorStats(
                records_scanned=database.shape[0],
                records_selected=int(mask.sum()),
                db_bytes_read=database.shape[0] * database.shape[1],
                selector_bytes_read=database.shape[0],
                output_bytes_written=database.shape[1],
            )
        )
    return result.astype(np.uint8)


def dpxor_chunked(
    database: np.ndarray,
    selector: np.ndarray,
    num_chunks: int,
    stats: Optional[DpXorStats] = None,
) -> np.ndarray:
    """dpXOR evaluated as ``num_chunks`` partial scans folded together.

    Mirrors the distribution of the database across DPUs: each chunk produces
    a partial result and the partials are XOR-folded, which is exactly the
    aggregation step ➏ of Algorithm 1.  The result is bit-identical to
    :func:`dpxor`.
    """
    database, selector = _validate(database, selector)
    if num_chunks <= 0:
        raise DatabaseError("num_chunks must be positive")
    partials = []
    bounds = np.linspace(0, database.shape[0], num_chunks + 1, dtype=np.int64)
    for chunk_index in range(num_chunks):
        start, stop = int(bounds[chunk_index]), int(bounds[chunk_index + 1])
        partials.append(dpxor(database[start:stop], selector[start:stop], stats=stats))
    return xor_fold(partials)


def dpxor_two_stage(
    database: np.ndarray,
    selector: np.ndarray,
    num_workers: int,
    stats: Optional[DpXorStats] = None,
) -> np.ndarray:
    """Two-stage parallel reduction (Algorithm 1, TASKLETXOR + MASTERXOR).

    Stage 1 splits the chunk across ``num_workers`` tasklets that each produce
    a partial result; stage 2 has the master tasklet XOR-fold the partials.
    Functionally identical to :func:`dpxor`; kept separate so the DPU kernel
    and its tests exercise the exact structure of the paper's kernel.
    """
    database, selector = _validate(database, selector)
    if num_workers <= 0:
        raise DatabaseError("num_workers must be positive")
    partials = []
    num_records = database.shape[0]
    per_worker = -(-num_records // num_workers) if num_records else 0
    for worker in range(num_workers):
        start = min(worker * per_worker, num_records)
        stop = min(start + per_worker, num_records)
        if start == stop:
            partials.append(np.zeros(database.shape[1], dtype=np.uint8))
            continue
        partials.append(dpxor(database[start:stop], selector[start:stop], stats=stats))
    return xor_fold(partials)


def xor_fold(partials: Sequence[np.ndarray]) -> np.ndarray:
    """XOR-fold a sequence of equal-length byte vectors into one."""
    if len(partials) == 0:
        raise DatabaseError("cannot fold an empty list of partial results")
    arrays = [np.asarray(p, dtype=np.uint8) for p in partials]
    length = arrays[0].shape[0]
    for i, array in enumerate(arrays):
        if array.ndim != 1 or array.shape[0] != length:
            raise DatabaseError(f"partial result {i} has mismatched shape {array.shape}")
    result = np.zeros(length, dtype=np.uint8)
    for array in arrays:
        result ^= array
    return result


def xor_bytes(left: bytes, right: bytes) -> bytes:
    """XOR two equal-length byte strings (client-side reconstruction step)."""
    if len(left) != len(right):
        raise DatabaseError("cannot XOR byte strings of different lengths")
    left_arr = np.frombuffer(left, dtype=np.uint8)
    right_arr = np.frombuffer(right, dtype=np.uint8)
    return (left_arr ^ right_arr).tobytes()


def inner_product_mod(
    database: np.ndarray,
    weights: np.ndarray,
    modulus: int,
    stats: Optional[DpXorStats] = None,
) -> np.ndarray:
    """Weighted sum of database rows modulo ``modulus``.

    The paper's formal model works over a field F_p; XOR is the special case
    p = 2 applied bitwise.  This generalised inner product backs the n-server
    additive-sharing variant of the protocol and the F_p examples.
    """
    database = np.asarray(database, dtype=np.uint8)
    weights = np.asarray(weights)
    if database.ndim != 2:
        raise DatabaseError("database chunk must be 2-D (records x bytes)")
    if weights.shape != (database.shape[0],):
        raise DatabaseError("weights length must equal the number of records")
    if modulus < 2:
        raise DatabaseError("modulus must be at least 2")
    accumulator = (
        database.astype(np.uint64) * weights.astype(np.uint64)[:, None]
    ).sum(axis=0) % np.uint64(modulus)
    if stats is not None:
        stats.merge(
            DpXorStats(
                records_scanned=database.shape[0],
                records_selected=int(np.count_nonzero(weights)),
                db_bytes_read=database.shape[0] * database.shape[1],
                selector_bytes_read=weights.nbytes,
                output_bytes_written=database.shape[1] * 8,
            )
        )
    return accumulator.astype(np.uint64)


def partial_results_to_list(partials: Sequence[np.ndarray]) -> List[bytes]:
    """Convert partial-result arrays to raw bytes (what DPUs ship to the host)."""
    return [np.asarray(p, dtype=np.uint8).tobytes() for p in partials]
