"""Reference (architecture-agnostic) PIR server.

This server answers queries the way the protocol defines them, with plain
numpy and no hardware model attached: full-domain DPF evaluation followed by
the dpXOR scan.  It is the functional oracle that the CPU, GPU and IM-PIR
servers must agree with bit-for-bit, and the natural starting point for
anyone reading the code base top-down.

All the protocol logic (validation, key evaluation, answer assembly) lives in
:class:`repro.core.engine.QueryEngine`; this module only binds it to the
plain-numpy :class:`~repro.core.engine.ReferenceBackend`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.dpf.dpf import EvalStats
from repro.dpf.prf import LengthDoublingPRG
from repro.pir.database import Database
from repro.pir.messages import DPFQuery, NaiveQuery, PIRAnswer
from repro.pir.xor_ops import DpXorStats

Query = Union[DPFQuery, NaiveQuery]


@dataclass
class ServerStats:
    """Operation counters accumulated across every answered query."""

    queries_answered: int = 0
    eval: EvalStats = field(default_factory=EvalStats)
    dpxor: DpXorStats = field(default_factory=DpXorStats)


class PIRServer:
    """One replica of the database answering secret-shared queries."""

    def __init__(
        self,
        database: Database,
        server_id: int,
        prg: Optional[LengthDoublingPRG] = None,
    ) -> None:
        # Imported lazily: repro.pir must stay importable on its own, and the
        # engine module (in repro.core) imports repro.pir wire types at load.
        from repro.core.engine import QueryEngine, ReferenceBackend

        self.stats = ServerStats()
        self.backend = ReferenceBackend(name="reference", dpxor_stats=self.stats.dpxor)
        self.engine = QueryEngine(
            self.backend, server_id=server_id, prg=prg, stats=self.stats
        )
        self.engine.prepare(database)
        self.database = database
        self.server_id = server_id

    # -- query handling ---------------------------------------------------------

    def answer(self, query: Query) -> PIRAnswer:
        """Answer a single query with this server's XOR sub-result."""
        return self.engine.answer(query).answer

    def answer_batch(self, queries: Sequence[Query]) -> List[PIRAnswer]:
        """Answer several queries sequentially (the reference server has no
        batching optimisations — that is what IM-PIR adds)."""
        if not queries:
            return []
        return [result.answer for result in self.engine.answer_many(queries).results]
