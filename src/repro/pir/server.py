"""Reference (architecture-agnostic) PIR server.

This server answers queries the way the protocol defines them, with plain
numpy and no hardware model attached: full-domain DPF evaluation followed by
the dpXOR scan.  It is the functional oracle that the CPU, GPU and IM-PIR
servers must agree with bit-for-bit, and the natural starting point for
anyone reading the code base top-down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.common.errors import ProtocolError
from repro.dpf.dpf import DPF, EvalStats
from repro.dpf.prf import LengthDoublingPRG
from repro.pir.database import Database
from repro.pir.messages import DPFQuery, NaiveQuery, PIRAnswer
from repro.pir.xor_ops import DpXorStats, dpxor

Query = Union[DPFQuery, NaiveQuery]


@dataclass
class ServerStats:
    """Operation counters accumulated across every answered query."""

    queries_answered: int = 0
    eval: EvalStats = field(default_factory=EvalStats)
    dpxor: DpXorStats = field(default_factory=DpXorStats)


class PIRServer:
    """One replica of the database answering secret-shared queries."""

    def __init__(
        self,
        database: Database,
        server_id: int,
        prg: Optional[LengthDoublingPRG] = None,
    ) -> None:
        if server_id < 0:
            raise ProtocolError("server_id must be non-negative")
        self.database = database
        self.server_id = server_id
        self._prg = prg
        self.stats = ServerStats()

    # -- query handling ---------------------------------------------------------

    def answer(self, query: Query) -> PIRAnswer:
        """Answer a single query with this server's XOR sub-result."""
        if query.server_id != self.server_id:
            raise ProtocolError(
                f"query addressed to server {query.server_id}, this is server {self.server_id}"
            )
        if query.num_records != self.database.num_records:
            raise ProtocolError(
                "query was generated for a database of "
                f"{query.num_records} records, this replica holds {self.database.num_records}"
            )
        selector = self._selector_bits(query)
        payload = dpxor(self.database.records, selector, stats=self.stats.dpxor)
        self.stats.queries_answered += 1
        return PIRAnswer(
            query_id=query.query_id,
            server_id=self.server_id,
            payload=payload.tobytes(),
        )

    def answer_batch(self, queries: Sequence[Query]) -> List[PIRAnswer]:
        """Answer several queries sequentially (the reference server has no
        batching optimisations — that is what IM-PIR adds)."""
        return [self.answer(query) for query in queries]

    # -- internals ---------------------------------------------------------------

    def _selector_bits(self, query: Query) -> np.ndarray:
        if isinstance(query, DPFQuery):
            dpf = DPF(
                query.key.domain_bits,
                output_bits=query.key.output_bits,
                prg=self._prg,
            )
            values = dpf.eval_full(query.key, num_points=query.num_records, stats=self.stats.eval)
            return values.astype(np.uint8)
        if isinstance(query, NaiveQuery):
            return query.share.bits
        raise ProtocolError(f"unsupported query type: {type(query).__name__}")
