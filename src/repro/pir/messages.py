"""Wire messages exchanged between the PIR client and servers.

Queries carry either a DPF key (the compact O(lambda log N) encoding used by
IM-PIR and both baselines) or a dense selector-bit share (the naive scheme of
§2.3).  Answers carry the server's XOR sub-result.  Sizes are exposed so the
examples and benchmarks can report upload/download communication costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.common.errors import ProtocolError
from repro.dpf.dpf import DPFKey
from repro.dpf.naive import NaiveShare


@dataclass(frozen=True)
class DPFQuery:
    """A DPF-encoded query for one server."""

    query_id: int
    server_id: int
    key: DPFKey
    num_records: int

    def __post_init__(self) -> None:
        if self.server_id not in (0, 1):
            raise ProtocolError("DPF queries are defined for a two-server deployment")
        if self.num_records <= 0:
            raise ProtocolError("num_records must be positive")
        if self.num_records > self.key.domain_size:
            raise ProtocolError(
                f"database of {self.num_records} records does not fit in a "
                f"{self.key.domain_bits}-bit DPF domain"
            )

    @property
    def upload_bytes(self) -> int:
        """Bytes sent from the client to this server."""
        return self.key.size_bytes


@dataclass(frozen=True)
class NaiveQuery:
    """A dense selector-share query for one server (naive scheme)."""

    query_id: int
    server_id: int
    share: NaiveShare
    num_records: int

    def __post_init__(self) -> None:
        if self.server_id < 0:
            raise ProtocolError("server_id must be non-negative")
        if self.share.num_items != self.num_records:
            raise ProtocolError("selector share length must match the database size")

    @property
    def upload_bytes(self) -> int:
        """Bytes sent from the client to this server."""
        return self.share.size_bytes


@dataclass(frozen=True)
class PIRAnswer:
    """A server's sub-result for one query."""

    query_id: int
    server_id: int
    payload: bytes
    simulated_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.payload:
            raise ProtocolError("answer payload must not be empty")

    @property
    def download_bytes(self) -> int:
        """Bytes sent from this server back to the client."""
        return len(self.payload)

    def payload_array(self) -> np.ndarray:
        """The payload as a uint8 numpy array."""
        return np.frombuffer(self.payload, dtype=np.uint8)
