"""PIR client: query generation and answer reconstruction.

The client side of the protocol is deliberately lightweight (the paper keeps
it off the critical path): key generation costs O(log N) PRG calls and
reconstruction is a single XOR of the servers' sub-results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.common.errors import ProtocolError
from repro.dpf.dpf import DPF
from repro.dpf.naive import NaiveXorQueryScheme
from repro.dpf.prf import LengthDoublingPRG
from repro.pir.messages import DPFQuery, NaiveQuery, PIRAnswer
from repro.pir.xor_ops import xor_bytes

Query = Union[DPFQuery, NaiveQuery]

SCHEME_DPF = "dpf"
SCHEME_NAIVE = "naive"


@dataclass
class ClientStats:
    """Communication accounting for one client instance."""

    queries_generated: int = 0
    upload_bytes: int = 0
    download_bytes: int = 0
    answers_reconstructed: int = 0


class PIRClient:
    """Generates per-server queries for an index and reconstructs the record.

    Parameters
    ----------
    num_records, record_size:
        Shape of the replicated database (public parameters).
    num_servers:
        Number of non-colluding servers.  The DPF scheme supports exactly two;
        the naive scheme supports any ``n >= 2``.
    scheme:
        ``"dpf"`` (default) or ``"naive"``.
    prg:
        Optional PRG backend shared with the servers (the DPF requires both
        ends to expand seeds identically).
    """

    def __init__(
        self,
        num_records: int,
        record_size: int,
        num_servers: int = 2,
        scheme: str = SCHEME_DPF,
        prg: Optional[LengthDoublingPRG] = None,
        seed: Optional[int] = None,
    ) -> None:
        if num_records <= 0 or record_size <= 0:
            raise ProtocolError("num_records and record_size must be positive")
        if num_servers < 2:
            raise ProtocolError("multi-server PIR requires at least two servers")
        if scheme not in (SCHEME_DPF, SCHEME_NAIVE):
            raise ProtocolError(f"unknown scheme {scheme!r}")
        if scheme == SCHEME_DPF and num_servers != 2:
            raise ProtocolError("the DPF scheme is a two-server construction")

        self.num_records = num_records
        self.record_size = record_size
        self.num_servers = num_servers
        self.scheme = scheme
        self.stats = ClientStats()
        self._next_query_id = 0

        domain_bits = max(1, (num_records - 1).bit_length())
        self._dpf = DPF(domain_bits, output_bits=1, prg=prg, seed=seed)
        self._naive = NaiveXorQueryScheme(num_records, num_servers=num_servers, seed=seed)

    @property
    def domain_bits(self) -> int:
        """DPF domain bits covering the database index space."""
        return self._dpf.domain_bits

    def _allocate_query_id(self) -> int:
        query_id = self._next_query_id
        self._next_query_id += 1
        return query_id

    # -- query generation -----------------------------------------------------

    def query(self, index: int) -> List[Query]:
        """Encode a private query for ``index``: one message per server."""
        if not 0 <= index < self.num_records:
            raise ProtocolError(f"index {index} out of range [0, {self.num_records})")
        query_id = self._allocate_query_id()
        if self.scheme == SCHEME_DPF:
            key0, key1 = self._dpf.gen(index, 1)
            queries: List[Query] = [
                DPFQuery(query_id=query_id, server_id=0, key=key0, num_records=self.num_records),
                DPFQuery(query_id=query_id, server_id=1, key=key1, num_records=self.num_records),
            ]
        else:
            shares = self._naive.share(index)
            queries = [
                NaiveQuery(
                    query_id=query_id,
                    server_id=share.server_id,
                    share=share,
                    num_records=self.num_records,
                )
                for share in shares
            ]
        self.stats.queries_generated += 1
        self.stats.upload_bytes += sum(q.upload_bytes for q in queries)
        return queries

    def query_batch(self, indices: Sequence[int]) -> List[List[Query]]:
        """Encode a batch of queries; returns one per-server list per index."""
        return [self.query(index) for index in indices]

    # -- reconstruction ---------------------------------------------------------

    def reconstruct(self, answers: Sequence[PIRAnswer]) -> bytes:
        """XOR the servers' sub-results back into the requested record."""
        if len(answers) != self.num_servers:
            raise ProtocolError(
                f"expected {self.num_servers} answers, got {len(answers)}"
            )
        query_ids = {answer.query_id for answer in answers}
        if len(query_ids) != 1:
            raise ProtocolError(f"answers mix query ids: {sorted(query_ids)}")
        server_ids = sorted(answer.server_id for answer in answers)
        if server_ids != list(range(self.num_servers)):
            raise ProtocolError(f"answers must cover every server exactly once, got {server_ids}")
        lengths = {len(answer.payload) for answer in answers}
        if lengths != {self.record_size}:
            raise ProtocolError(
                f"answer payloads have sizes {sorted(lengths)}, expected {self.record_size}"
            )

        record = answers[0].payload
        for answer in answers[1:]:
            record = xor_bytes(record, answer.payload)
        self.stats.download_bytes += sum(answer.download_bytes for answer in answers)
        self.stats.answers_reconstructed += 1
        return record

    def reconstruct_batch(self, answer_groups: Sequence[Sequence[PIRAnswer]]) -> List[bytes]:
        """Reconstruct several records, one per group of per-server answers."""
        return [self.reconstruct(group) for group in answer_groups]

    def group_answers(self, answers: Sequence[PIRAnswer]) -> Dict[int, List[PIRAnswer]]:
        """Group a flat answer stream by query id (utility for batch flows)."""
        grouped: Dict[int, List[PIRAnswer]] = {}
        for answer in answers:
            grouped.setdefault(answer.query_id, []).append(answer)
        return grouped
