"""Always-on fleet flight recorder and deterministic incident bundles.

An aircraft flight recorder is cheap, bounded, and always running — you
only open it after something went wrong.  :class:`FlightRecorder` is the
fleet's version: an :class:`~repro.obs.events.EventLog` sink that keeps the
last N events plus pointers to the live metric registry and SLO engine.
When an alert fires (or an operator asks), :meth:`record_incident` freezes
everything into a JSON-safe **incident bundle**: recent events, the metric
snapshot, the topology version, active alerts, and the SLO accounting at
that instant.  Bundles are deterministic — same simulated run, same bytes —
which is what lets the chaos harness assert "the control plane degraded
gracefully" on the artifact instead of on log grep.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.common.errors import ConfigurationError

#: Current bundle schema tag; bump on breaking layout changes.
INCIDENT_SCHEMA = "repro.incident/1"

#: Required bundle keys and the types :func:`validate_bundle` enforces.
_BUNDLE_FIELDS = {
    "schema": str,
    "trigger": str,
    "now": (int, float),
    "topology_version": int,
    "active_alerts": list,
    "events": list,
}


class FlightRecorder:
    """Bounded black box: last N events + live state providers.

    Plug it into an event log's sink chain (it implements ``emit``); bind
    the registry and SLO engine with :meth:`bind` when they exist.  The
    recorder never raises from the hot path and holds only bounded state:
    ``capacity`` event dicts and at most ``max_incidents`` bundles.
    """

    def __init__(self, capacity: int = 256, max_incidents: int = 8) -> None:
        if capacity <= 0:
            raise ConfigurationError("recorder capacity must be positive")
        if max_incidents <= 0:
            raise ConfigurationError("max_incidents must be positive")
        self.capacity = int(capacity)
        self.max_incidents = int(max_incidents)
        self._events: Deque[Dict[str, object]] = deque(maxlen=self.capacity)
        #: Last topology version seen on the event stream (0 = construction).
        self.topology_version = 0
        self.registry = None
        self.slo = None
        self.incidents: List[Dict[str, object]] = []
        self.events_seen = 0

    def bind(self, registry=None, slo=None) -> None:
        """Attach the live state providers snapshotted into bundles."""
        if registry is not None:
            self.registry = registry
        if slo is not None:
            self.slo = slo

    # -- event-sink protocol --------------------------------------------------------

    def emit(self, event) -> None:
        self.events_seen += 1
        payload = event.as_dict()
        self._events.append(payload)
        if event.name in ("topology.applied", "rebalance.pass"):
            version = payload.get("version", payload.get("plan_version"))
            if isinstance(version, int):
                self.topology_version = version

    # -- bundles --------------------------------------------------------------------

    def recent_events(self) -> List[Dict[str, object]]:
        """The retained tail of the event stream, oldest first."""
        return list(self._events)

    def snapshot(self, trigger: str, now: float) -> Dict[str, object]:
        """Freeze the current state into a schema-tagged incident bundle."""
        active: List[Dict[str, object]] = []
        slo_state: Optional[Dict[str, object]] = None
        if self.slo is not None:
            slo_state = self.slo.as_dict(now)
            active = list(slo_state.get("active_alerts", []))
        metrics = self.registry.as_dict() if self.registry is not None else None
        return {
            "schema": INCIDENT_SCHEMA,
            "trigger": str(trigger),
            "now": float(now),
            "topology_version": self.topology_version,
            "active_alerts": active,
            "slo": slo_state,
            "metrics": metrics,
            "events": self.recent_events(),
        }

    def record_incident(self, trigger: str, now: float) -> Dict[str, object]:
        """Capture a bundle and keep it (bounded to ``max_incidents``)."""
        bundle = self.snapshot(trigger, now)
        self.incidents.append(bundle)
        if len(self.incidents) > self.max_incidents:
            del self.incidents[0]
        return bundle

    @staticmethod
    def dump(bundle: Dict[str, object]) -> str:
        """Canonical JSON rendering: sorted keys, no whitespace drift."""
        return json.dumps(bundle, sort_keys=True, separators=(",", ":"))

    def dump_to(self, path: str, bundle: Optional[Dict[str, object]] = None) -> str:
        """Write a bundle (default: the latest incident) to ``path``."""
        if bundle is None:
            if not self.incidents:
                raise ConfigurationError("no incidents recorded yet")
            bundle = self.incidents[-1]
        text = self.dump(bundle)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        return text

    def describe(self) -> List[str]:
        lines = [
            f"events retained {len(self._events)}/{self.capacity}"
            f" (seen {self.events_seen})",
            f"topology version {self.topology_version}",
            f"incidents recorded {len(self.incidents)}",
        ]
        for bundle in self.incidents:
            lines.append(
                f"incident trigger={bundle['trigger']} now={bundle['now']:.3f}"
                f" alerts={len(bundle['active_alerts'])}"
            )
        return lines


def validate_bundle(bundle: Dict[str, object]) -> None:
    """Raise :class:`ConfigurationError` unless ``bundle`` matches the schema.

    The chaos harness's assertion surface: required keys present with the
    right types, the schema tag current, every event row carrying
    ``name``/``seq``/``now``, and every active alert naming its objective
    and severity.  The whole bundle must round-trip through JSON.
    """
    if not isinstance(bundle, dict):
        raise ConfigurationError("incident bundle must be a dict")
    for key, kinds in _BUNDLE_FIELDS.items():
        if key not in bundle:
            raise ConfigurationError(f"incident bundle missing key: {key!r}")
        if not isinstance(bundle[key], kinds):
            raise ConfigurationError(f"incident bundle key {key!r} has wrong type")
    if bundle["schema"] != INCIDENT_SCHEMA:
        raise ConfigurationError(
            f"unknown incident schema: {bundle['schema']!r} (want {INCIDENT_SCHEMA!r})"
        )
    for row in bundle["events"]:
        if not isinstance(row, dict) or not {"name", "seq", "now"} <= set(row):
            raise ConfigurationError("incident bundle event rows need name/seq/now")
    for alert in bundle["active_alerts"]:
        if not isinstance(alert, dict) or not {"objective", "severity"} <= set(alert):
            raise ConfigurationError(
                "incident bundle alerts need objective/severity"
            )
    try:
        json.dumps(bundle, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"incident bundle is not JSON-safe: {exc}") from exc
