"""Span tracing: per-request pipeline trees from ``PhaseTimer`` merges.

The paper's Figure 10 decomposes an IM-PIR query into its pipeline phases
(host eval, CPU→DPU copy, dpXOR, DPU→CPU copy, aggregate) — but only in
aggregate.  This module reconstructs that decomposition **per individual
request**: each retrieval gets a :class:`Trace` whose root span covers the
request, one child span per replica server (its seconds taken from the
engine's :class:`~repro.common.events.PhaseTimer`, one leaf span per
phase), and — when the sharded backend participates — per-shard scan spans
nested under each server.

Durations are **simulated seconds copied from the timers**, never measured
here: :meth:`Span.add_phases` accumulates a timer's phase durations in
iteration order, which makes the span total *float-exactly* equal to
``PhaseTimer.total`` of the same timer (both are a left-to-right sum over
the same values) — the acceptance check ``smoke --traced`` enforces.

Shard detail rides a side channel: the engine's per-query breakdown object
flows by identity from :meth:`QueryEngine.answer_many` into
:meth:`~repro.shard.backend.ShardedBackend.execute_many` and back out in
the raw results, so the backend keys its per-shard child timers by
``id(breakdown)`` (guarded by a weakref so a recycled id can never attach
another query's shards) and the hub pops them when it builds the trace.
Shard spans are *parallel* detail — children fold per-phase max, so their
seconds deliberately do not sum into the server span.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError

#: Span kinds used by the hub's pipeline reconstruction.
KIND_REQUEST = "request"
KIND_SERVER = "server"
KIND_SHARD = "shard"
KIND_PHASE = "phase"
KIND_CACHE = "cache"


class Span:
    """One named interval in a trace tree.

    ``seconds`` is additive over :meth:`add_phases` calls; children created
    with :meth:`child` do **not** automatically contribute to the parent
    (parallel children — replicas, shards — must not sum), callers roll up
    explicitly where summation is the right semantics.
    """

    __slots__ = ("name", "kind", "seconds", "labels", "children")

    def __init__(self, name: str, kind: str = "span", **labels) -> None:
        self.name = name
        self.kind = kind
        self.seconds = 0.0
        self.labels: Dict[str, object] = dict(labels)
        self.children: List["Span"] = []

    def child(self, name: str, kind: str = "span", **labels) -> "Span":
        span = Span(name, kind=kind, **labels)
        self.children.append(span)
        return span

    def add_phases(self, durations, kind: str = KIND_PHASE) -> None:
        """Fold a ``PhaseTimer`` (or a plain phase→seconds mapping) in.

        One leaf child span per phase, accumulated left to right in the
        timer's own iteration order — so ``self.seconds`` lands on exactly
        the float ``PhaseTimer.total`` computes for the same timer.
        """
        items = durations.durations.items() if hasattr(durations, "durations") else durations.items()
        for phase, seconds in items:
            leaf = self.child(phase, kind=kind)
            leaf.seconds = float(seconds)
            self.seconds += float(seconds)

    def find(self, kind: str) -> List["Span"]:
        """Direct children of ``kind`` (not recursive)."""
        return [span for span in self.children if span.kind == kind]

    def phase_total(self) -> float:
        """Left-to-right sum of this span's direct phase leaves."""
        total = 0.0
        for span in self.children:
            if span.kind == KIND_PHASE:
                total += span.seconds
        return total

    def render(self, indent: int = 0) -> List[str]:
        labels = ""
        if self.labels:
            labels = " " + " ".join(
                f"{key}={value}" for key, value in sorted(self.labels.items())
            )
        lines = [
            f"{'  ' * indent}{self.name} [{self.kind}] "
            f"{self.seconds * 1e6:.3f}us{labels}"
        ]
        for span in self.children:
            lines.extend(span.render(indent + 1))
        return lines


class Trace:
    """One request's span tree plus its identity and start instant."""

    __slots__ = ("trace_id", "root", "started_now")

    def __init__(self, trace_id: str, root: Span, started_now: float) -> None:
        self.trace_id = trace_id
        self.root = root
        self.started_now = started_now

    @property
    def total_seconds(self) -> float:
        return self.root.seconds

    def render(self) -> List[str]:
        lines = [f"trace {self.trace_id} @ {self.started_now:.3f}s"]
        lines.extend(self.root.render(indent=1))
        return lines


class Tracer:
    """Bounded trace store plus the shard-scan side channel.

    ``max_traces`` bounds memory FIFO (oldest trace evicted first); the
    side channel is bounded the same way so an instrumented backend driven
    without a hub reading it back cannot grow without bound.  Thread-safe:
    the sharded backend records scan detail from pool threads.
    """

    def __init__(self, max_traces: int = 512, max_scan_entries: int = 4096) -> None:
        if max_traces <= 0 or max_scan_entries <= 0:
            raise ConfigurationError("tracer bounds must be positive")
        self.max_traces = max_traces
        self.max_scan_entries = max_scan_entries
        self.traces_evicted = 0
        self._traces: "OrderedDict[str, Trace]" = OrderedDict()
        #: id(breakdown) -> (weakref to the breakdown, [(shard_index, phases)])
        self._scans: "OrderedDict[int, Tuple[object, List[Tuple[int, Dict[str, float]]]]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()

    # -- traces -----------------------------------------------------------------

    def start_trace(
        self, trace_id: str, name: str, now: float = 0.0, kind: str = KIND_REQUEST, **labels
    ) -> Trace:
        """Create (or return the existing) trace for ``trace_id``."""
        with self._lock:
            trace = self._traces.get(trace_id)
            if trace is None:
                trace = Trace(trace_id, Span(name, kind=kind, **labels), now)
                self._traces[trace_id] = trace
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
                    self.traces_evicted += 1
            return trace

    def get(self, trace_id: str) -> Optional[Trace]:
        with self._lock:
            return self._traces.get(trace_id)

    def traces(self) -> List[Trace]:
        """Retained traces, oldest first."""
        with self._lock:
            return list(self._traces.values())

    def __len__(self) -> int:
        return len(self._traces)

    def slowest(self, n: int = 5) -> List[Trace]:
        """The ``n`` retained traces with the largest root seconds."""
        return sorted(
            self.traces(), key=lambda trace: trace.total_seconds, reverse=True
        )[: max(0, n)]

    # -- the shard-scan side channel ---------------------------------------------

    def record_shard_scan(self, breakdown, shard_index: int, timer) -> None:
        """Attach one shard's child-timer phases to a query's breakdown object.

        Called by the sharded backend while it still holds the engine's
        per-query ``PhaseTimer``; the hub pops the detail by the same object
        when the flush observation reaches it.  Keyed by ``id`` with a
        weakref guard: if the breakdown was garbage-collected and its id
        recycled, the stale entry is discarded instead of mis-attaching
        another query's shards.
        """
        phases = dict(timer.durations) if hasattr(timer, "durations") else dict(timer)
        with self._lock:
            key = id(breakdown)
            entry = self._scans.get(key)
            if entry is not None and entry[0]() is not breakdown:
                entry = None  # recycled id: drop the stale detail
            if entry is None:
                entry = (weakref.ref(breakdown), [])
                self._scans[key] = entry
                while len(self._scans) > self.max_scan_entries:
                    self._scans.popitem(last=False)
            entry[1].append((shard_index, phases))

    def pop_shard_scans(self, breakdown) -> List[Tuple[int, Dict[str, float]]]:
        """Take (and clear) the shard detail recorded for ``breakdown``."""
        with self._lock:
            entry = self._scans.pop(id(breakdown), None)
        if entry is None or entry[0]() is not breakdown:
            return []
        return sorted(entry[1])
