"""Structured event log: typed, simulated-clock-stamped records, pluggable sinks.

Telemetry across the fleet is fragmented — :class:`~repro.common.events.PhaseTimer`
breakdowns, :class:`~repro.pir.frontend.FrontendMetrics`,
:class:`~repro.control.telemetry.HeatTracker` windows and
:class:`~repro.control.rebalancer.RebalanceReport` objects each live in their
own corner.  An :class:`EventLog` is the common export path: every layer that
has something to report emits one :class:`Event` (a name, a monotonic
sequence number, a simulated-clock instant and a flat field dict) and a
chain of sinks decides what happens to it — kept in a ring buffer
(:class:`RingBufferSink`), appended to a JSONL file (:class:`JsonlSink`),
bridged into a metrics registry (the hub's job), or nothing at all.

Three properties are load-bearing:

* **Zero hot-path overhead when disabled.**  Components hold an optional
  ``events`` attribute defaulting to ``None`` and guard every emission with
  a single ``is not None`` check; an :class:`EventLog` with no sinks
  additionally short-circuits :meth:`EventLog.emit` before building the
  event object.  The instrumented data plane is bit-identical to the
  uninstrumented one by construction.
* **Simulated clock only.**  Events are stamped with the last simulated
  instant the log has seen (``now`` from the frontend observer hooks and
  any caller that has one), never with ``time.time()`` — matching the
  wall-clock ban ``tools/lint.py`` enforces for the control and shard
  layers this log instruments.  Components with no clock of their own
  (cache admissions, topology swaps) inherit the last-known instant; the
  monotonic ``seq`` disambiguates ordering within one instant.
* **Telemetry never fails the data plane.**  :meth:`EventLog.emit` catches
  every sink exception, counts it in :attr:`EventLog.dropped` and keeps the
  remaining sinks fed; :class:`JsonlSink` serialises the complete line
  *before* its single write, so a raising sink never leaves a partial line
  behind.  Combined with the async frontend's observer fault routing, a
  broken exporter can never corrupt a flush.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.common.errors import ConfigurationError


def _json_safe(value: object) -> object:
    """Coerce a field value to something ``json.dumps`` accepts.

    Scalars pass through; everything else (numpy scalars, dataclasses,
    shard specs) is rendered via ``repr`` so an exotic field can never make
    an export raise mid-flush.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return repr(value)


@dataclass(frozen=True)
class Event:
    """One structured telemetry record.

    ``now`` is a *simulated* instant (the frontend's clock, or the last one
    the log saw); ``seq`` is the log-wide monotonic sequence number that
    orders events sharing an instant.
    """

    name: str
    seq: int
    now: float
    fields: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """A JSON-safe flat rendering (the JSONL exporter's line payload)."""
        payload: Dict[str, object] = {
            "name": self.name,
            "seq": self.seq,
            "now": self.now,
        }
        for key, value in self.fields.items():
            payload[str(key)] = _json_safe(value)
        return payload


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity <= 0:
            raise ConfigurationError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._events: "deque[Event]" = deque(maxlen=capacity)

    def emit(self, event: Event) -> None:
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(list(self._events))

    def events(self) -> List[Event]:
        """The retained events, oldest first."""
        return list(self._events)

    def named(self, name: str) -> List[Event]:
        """Retained events with ``name``, oldest first."""
        return [event for event in self._events if event.name == name]

    def counts(self) -> Dict[str, int]:
        """Retained event count per name (diagnostic/report helper)."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.name] = counts.get(event.name, 0) + 1
        return counts


class JsonlSink:
    """Appends one JSON line per event to a file (or file-like handle).

    The whole line — payload plus trailing newline — is serialised *before*
    the single ``write`` call, so a handle that raises mid-export can fail
    only between complete lines, never inside one: re-reading the file
    always yields valid JSON records.

    ``max_bytes`` (path-backed sinks only) bounds the file with rotate-once
    semantics: a line that would push the current file past the bound first
    rotates it to ``<path>.1`` — overwriting any previous rotation — and
    starts fresh, so an arbitrarily long chaos run holds at most
    ``2 * max_bytes`` of export on disk.  Rotation happens only between
    complete lines; a single line larger than the bound is still written
    whole (the valid-JSON invariant wins over the byte bound).
    """

    def __init__(self, path_or_handle, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ConfigurationError("max_bytes must be positive")
        if hasattr(path_or_handle, "write"):
            if max_bytes is not None:
                raise ConfigurationError(
                    "max_bytes requires a path-backed sink (cannot rotate a handle)"
                )
            self._handle = path_or_handle
            self._owns_handle = False
            self.path = getattr(path_or_handle, "name", None)
            self.bytes_written = 0
        else:
            self.path = str(path_or_handle)
            self._handle = open(self.path, "a", encoding="utf-8")
            self._owns_handle = True
            # Appending to an existing file: the bound covers what is
            # already there, not just this process's lines.
            self.bytes_written = self._handle.tell()
        self.max_bytes = max_bytes
        self.lines_written = 0
        self.rotations = 0

    def emit(self, event: Event) -> None:
        line = json.dumps(event.as_dict(), sort_keys=True) + "\n"
        size = len(line.encode("utf-8"))
        if (
            self.max_bytes is not None
            and self.bytes_written > 0
            and self.bytes_written + size > self.max_bytes
        ):
            self._rotate()
        self._handle.write(line)
        self.bytes_written += size
        self.lines_written += 1

    def _rotate(self) -> None:
        self._handle.close()
        os.replace(self.path, self.path + ".1")
        self._handle = open(self.path, "a", encoding="utf-8")
        self.bytes_written = 0
        self.rotations += 1

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()


class EventLog:
    """The sink chain plus the shared simulated clock and sequence counter.

    ``emit`` never raises: a sink fault increments :attr:`dropped` (and is
    remembered in :attr:`last_error`) while the remaining sinks still
    receive the event — a broken exporter must never fail the retrieval
    that emitted, nor starve the healthy sinks.  Thread-safe: the sharded
    backend's thread-pool scans emit concurrently with the loop.
    """

    def __init__(self, sinks=()) -> None:
        self.sinks: List = list(sinks)
        self.dropped = 0
        self.last_error: Optional[BaseException] = None
        self._seq = 0
        self._now = 0.0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether emissions go anywhere (no sinks: emit is a no-op)."""
        return bool(self.sinks)

    @property
    def now(self) -> float:
        """The last simulated instant the log has seen."""
        return self._now

    @property
    def events_emitted(self) -> int:
        """Events built and offered to the sink chain so far."""
        return self._seq

    def advance(self, now: float) -> None:
        """Teach the log the current simulated instant (monotonic max).

        Fed from the frontend observer hooks; emitters without a clock of
        their own (cache admissions, topology swaps) stamp with this.
        """
        with self._lock:
            if now > self._now:
                self._now = now

    def emit(self, name: str, now: Optional[float] = None, **fields) -> Optional[Event]:
        """Build and export one event; never raises.

        ``now`` (when the emitter has a simulated instant) both stamps the
        event and advances the log's clock; without it the last-known
        instant is used.  Returns the event, or ``None`` when no sink is
        attached (the disabled fast path builds nothing).
        """
        if not self.sinks:
            return None
        with self._lock:
            if now is not None and now > self._now:
                self._now = now
            event = Event(name=name, seq=self._seq, now=self._now, fields=fields)
            self._seq += 1
            for sink in self.sinks:
                try:
                    sink.emit(event)
                except Exception as error:
                    self.dropped += 1
                    self.last_error = error
        return event
