"""Unified observability: structured events, metrics, tracing, and the hub.

The layers compose bottom-up — :mod:`~repro.obs.events` (what happened) →
:mod:`~repro.obs.metrics` (how often / how long) → :mod:`~repro.obs.tracing`
(where each request's simulated time went) — and
:class:`~repro.obs.hub.ObservabilityHub` wires all three into a running
fleet in one call.  On top sits the judgement layer: :mod:`~repro.obs.slo`
(streaming latency digests, declarative objectives, multi-window burn-rate
alerts) and :mod:`~repro.obs.recorder` (the always-on flight recorder that
freezes deterministic incident bundles when an alert fires).  Everything is
simulated-clock only and strictly read-only over the data plane: an
instrumented run returns bit-identical records to an uninstrumented one.
"""

from repro.obs.events import Event, EventLog, JsonlSink, RingBufferSink
from repro.obs.hub import ObservabilityHub
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import INCIDENT_SCHEMA, FlightRecorder, validate_bundle
from repro.obs.slo import (
    BurnRateRule,
    HealthSignal,
    LatencyDigest,
    SloAlert,
    SloEngine,
    SloObjective,
    SloPolicy,
    WindowedDigest,
    default_rules,
)
from repro.obs.tracing import (
    KIND_CACHE,
    KIND_PHASE,
    KIND_REQUEST,
    KIND_SERVER,
    KIND_SHARD,
    Span,
    Trace,
    Tracer,
)

__all__ = [
    "Event",
    "EventLog",
    "JsonlSink",
    "RingBufferSink",
    "ObservabilityHub",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "INCIDENT_SCHEMA",
    "FlightRecorder",
    "validate_bundle",
    "BurnRateRule",
    "HealthSignal",
    "LatencyDigest",
    "SloAlert",
    "SloEngine",
    "SloObjective",
    "SloPolicy",
    "WindowedDigest",
    "default_rules",
    "KIND_CACHE",
    "KIND_PHASE",
    "KIND_REQUEST",
    "KIND_SERVER",
    "KIND_SHARD",
    "Span",
    "Trace",
    "Tracer",
]
