"""The observability hub: one object wiring events, metrics and traces.

:class:`ObservabilityHub` is the assembly point for the three obs layers —
it owns an :class:`~repro.obs.events.EventLog` whose sink chain is a ring
buffer, a metrics bridge (folding events into a
:class:`~repro.obs.metrics.MetricsRegistry`) and an optional JSONL
exporter, plus a :class:`~repro.obs.tracing.Tracer` for per-request span
trees.  Registering the hub as a frontend observer and calling
:meth:`attach` instruments a whole fleet in one step:

* the hub's ``observe_batch`` keeps the event log's simulated clock
  current, and its ``observe_flush`` turns every completed flush into a
  ``frontend.flush`` event *and* one trace per retrieved request —
  client → server → phase (→ shard) spans whose seconds are the engine's
  own :class:`~repro.common.events.PhaseTimer` values, float-exactly;
* every replica's :class:`~repro.core.engine.QueryEngine` gets the event
  log on its ``events`` slot, every sharded backend is handed the log and
  the tracer via :meth:`~repro.shard.backend.ShardedBackend.instrument`,
  and the control plane's tracker / rebalancer / cache emit through the
  same log.

Pass a hub to :func:`repro.control.plane.controlled_fleet` (``hub=``) and
the wiring happens inside the builder.  Everything stays strictly
read-only with respect to the data plane: the hub only ever observes
settled results, so an instrumented run returns bit-identical records
(``smoke --traced`` asserts this end to end).
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.events import Event, EventLog, JsonlSink, RingBufferSink
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SloEngine, SloPolicy
from repro.obs.tracing import KIND_CACHE, KIND_SERVER, KIND_SHARD, Tracer

#: Buckets for flush batch sizes (requests per flush, not seconds).
_BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class _MetricsBridge:
    """An event sink that folds events into the hub's registry.

    Sits in the sink chain like any exporter; a fold fault is caught by
    :meth:`EventLog.emit` (counted in ``dropped``) like any sink fault.
    """

    def __init__(self, hub: "ObservabilityHub") -> None:
        self._hub = hub

    def emit(self, event: Event) -> None:
        self._hub._fold_event(event)


def _request_latencies(observation) -> List[float]:
    """Simulated end-to-end seconds for every request retired by a flush.

    Scanned requests: the slowest expected replica answer, preferring the
    engine's ``simulated_seconds`` and falling back to the PhaseTimer total,
    then to the flush makespan when a backend reports neither.  Cache hits
    and dedup followers: 0.0 — they spent no simulated pipeline time.
    """
    fallback = max(observation.makespans, default=0.0)
    latencies: List[float] = []
    scanned_ids = set()
    for request_id, _index, expected in observation.scanned:
        scanned_ids.add(request_id)
        worst = 0.0
        missing = True
        for query_id, server_id in expected:
            detail = observation.details.get((query_id, server_id))
            if detail is None:
                continue
            seconds = detail.simulated_seconds
            if seconds is None and detail.breakdown is not None:
                seconds = detail.breakdown.total
            if seconds is not None:
                worst = max(worst, float(seconds))
                missing = False
        latencies.append(fallback if missing else worst)
    for request_id, _index in observation.batch:
        if request_id not in scanned_ids:
            latencies.append(0.0)
    return latencies


class ObservabilityHub:
    """Sinks + registry + tracer behind one frontend-observer facade."""

    def __init__(
        self,
        ring_capacity: int = 2048,
        jsonl_path=None,
        max_traces: int = 512,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        slo: Optional[SloPolicy] = None,
        recorder_capacity: int = 256,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(max_traces=max_traces)
        self.ring = RingBufferSink(capacity=ring_capacity)
        self.jsonl = JsonlSink(jsonl_path) if jsonl_path is not None else None
        # The flight recorder is always on: bounded, cheap, and the thing
        # incident bundles are cut from after the fact.
        self.recorder = FlightRecorder(capacity=recorder_capacity)
        sinks = [self.ring, _MetricsBridge(self), self.recorder]
        if self.jsonl is not None:
            sinks.append(self.jsonl)
        self.events = EventLog(sinks)
        #: The judgement layer; ``None`` keeps the hub purely descriptive.
        self.slo = SloEngine(slo, events=self.events) if slo is not None else None
        self.recorder.bind(registry=self.registry, slo=self.slo)
        if self.slo is not None:
            self.slo.recorder = self.recorder

        # Pre-registered families: a snapshot taken before any traffic
        # already shows the full schema (unlabeled counters render 0).
        metric = self.registry
        self._flushes = metric.counter(
            "repro_flushes_total", "Completed frontend flushes", ("reason",)
        )
        self._requests = metric.counter(
            "repro_requests_total", "Requests retired through flushes"
        )
        self._cache_hits = metric.counter(
            "repro_cache_hits_total", "Requests served from the hot-record cache"
        )
        self._deduped = metric.counter(
            "repro_dedup_suppressed_total", "Duplicate requests collapsed in-batch"
        )
        self._batch_sizes = metric.histogram(
            "repro_flush_batch_size",
            "Requests per flushed batch",
            buckets=_BATCH_SIZE_BUCKETS,
        )
        self._makespans = metric.histogram(
            "repro_flush_makespan_seconds", "Simulated makespan per flush"
        )
        self._shard_scans = metric.counter(
            "repro_shard_scans_total", "Per-shard scans executed", ("shard",)
        )
        self._scan_seconds = metric.histogram(
            "repro_shard_scan_seconds", "Simulated seconds per shard scan"
        )
        self._engine_batches = metric.counter(
            "repro_engine_batches_total", "Engine batch evaluations", ("server",)
        )
        self._answer_seconds = metric.histogram(
            "repro_engine_answer_seconds", "Simulated seconds per engine answer"
        )
        self._window_rolls = metric.counter(
            "repro_heat_window_rolls_total", "Heat telemetry windows completed"
        )
        self._rebalance_passes = metric.counter(
            "repro_rebalance_passes_total", "Rebalancer passes completed"
        )
        self._rebalance_splits = metric.counter(
            "repro_rebalance_splits_total", "Shard splits applied"
        )
        self._rebalance_merges = metric.counter(
            "repro_rebalance_merges_total", "Shard merges applied"
        )
        self._rebalance_migrations = metric.counter(
            "repro_rebalance_migrations_total", "Shard kind migrations applied"
        )
        self._topology_version = metric.gauge(
            "repro_topology_version", "Current shard plan version"
        )
        self._cache_admissions = metric.counter(
            "repro_cache_admissions_total", "Hot-record cache admissions"
        )
        self._cache_evictions = metric.counter(
            "repro_cache_evictions_total", "Hot-record cache evictions"
        )
        self._cache_invalidations = metric.counter(
            "repro_cache_invalidations_total", "Hot-record cache records invalidated"
        )
        self._cache_rejected = metric.counter(
            "repro_cache_rejected_cold_total", "Cache admissions refused (cold shard)"
        )
        self._replicas = metric.gauge(
            "repro_replicas", "Live replica members per trust domain"
        )
        self._autoscale_actions = metric.counter(
            "repro_autoscale_actions_total",
            "Autoscaler replica-count changes",
            ("direction",),
        )
        self._replica_adds = metric.counter(
            "repro_replica_adds_total", "Replica members added per trust domain"
        )
        self._replica_drains = metric.counter(
            "repro_replica_drains_total", "Replica members drained per trust domain"
        )
        self._rebalance_suppressed = metric.counter(
            "repro_rebalance_suppressed_total",
            "Reshapes/migrations vetoed by cost-aware damping",
        )
        self._request_latency = metric.histogram(
            "repro_request_latency_seconds",
            "Simulated end-to-end latency per retired request",
        )
        self._slo_alerts = metric.counter(
            "repro_slo_alerts_total",
            "SLO burn-rate alert transitions",
            ("objective", "severity", "state"),
        )
        self._slo_burning = metric.gauge(
            "repro_slo_burning", "Currently active SLO alerts"
        )

    # -- the frontend observer protocol -------------------------------------------

    def observe_batch(self, indices, now: float) -> None:
        """Keep the event log's simulated clock current (every flush)."""
        self.events.advance(now)

    def observe_flush(self, observation) -> None:
        """Fold one settled flush into events, metrics, traces and SLOs."""
        self.events.emit(
            "frontend.flush",
            now=observation.now,
            reason=observation.reason,
            requests=len(observation.batch),
            scanned=len(observation.scanned),
            cache_hits=observation.cache_hits,
            deduped=observation.deduped,
            makespan=max(observation.makespans, default=0.0),
        )
        self._record_traces(observation)
        self._record_slo(observation)

    def _record_slo(self, observation) -> None:
        """Per-request latencies into the digest windows + alert lifecycle.

        A scanned request costs its slowest replica answer (replicas run in
        parallel), read from the same per-detail seconds the traces use;
        cache hits and dedup followers spent zero simulated pipeline time.
        """
        latencies = _request_latencies(observation)
        for seconds in latencies:
            self._request_latency.observe(seconds)
        if self.slo is None:
            return
        for seconds in latencies:
            self.slo.record_request(seconds, observation.now)
        self.slo.evaluate(observation.now)

    # -- wiring ---------------------------------------------------------------------

    def attach(self, frontend, plane=None):
        """Instrument a frontend (and optionally its control plane) in place.

        Appends the hub to the frontend's observers (idempotent), hands the
        event log to every replica engine, instruments every sharded
        backend with the log and the tracer, and wires the control plane's
        tracker / rebalancer / cache.  Returns the frontend for chaining.
        """
        if self not in frontend.observers:
            frontend.observers.append(self)
        for replica in getattr(frontend, "replicas", ()):
            # A replica slot may be a single server or a ReplicaGroup of
            # identical members (elastic fleets) — instrument every member.
            for member in getattr(replica, "members", None) or (replica,):
                engine = getattr(member, "engine", None)
                if engine is not None and hasattr(engine, "events"):
                    engine.events = self.events
                instrument = getattr(
                    getattr(member, "backend", None), "instrument", None
                )
                if instrument is not None:
                    instrument(events=self.events, tracer=self.tracer)
        if hasattr(frontend, "events"):
            # FleetRouter's replica.added / replica.drained emissions.
            frontend.events = self.events
        if plane is not None:
            plane.tracker.events = self.events
            if plane.rebalancer is not None:
                plane.rebalancer.events = self.events
            if plane.cache is not None:
                plane.cache.events = self.events
            if getattr(plane, "autoscaler", None) is not None:
                plane.autoscaler.events = self.events
            if self.slo is not None and hasattr(plane, "health_source"):
                # Close the loop: control passes consult the SLO verdict.
                plane.health_source = self.slo
        return frontend

    def close(self) -> None:
        """Close the JSONL exporter, if one is attached."""
        if self.jsonl is not None:
            self.jsonl.close()

    # -- event → metrics folding ----------------------------------------------------

    def _fold_event(self, event: Event) -> None:
        fields = event.fields
        name = event.name
        if name == "frontend.flush":
            self._flushes.inc(reason=fields.get("reason", "?"))
            self._requests.inc(fields.get("requests", 0))
            self._cache_hits.inc(fields.get("cache_hits", 0))
            self._deduped.inc(fields.get("deduped", 0))
            self._batch_sizes.observe(fields.get("requests", 0))
            self._makespans.observe(fields.get("makespan", 0.0))
        elif name == "shard.scan":
            self._shard_scans.inc(shard=fields.get("shard", "?"))
            self._scan_seconds.observe(fields.get("seconds", 0.0))
        elif name == "engine.batch":
            self._engine_batches.inc(server=fields.get("server", "?"))
        elif name == "engine.answer":
            self._answer_seconds.observe(fields.get("seconds", 0.0))
        elif name == "heat.window_rolled":
            self._window_rolls.inc(fields.get("rolled", 1))
        elif name == "rebalance.pass":
            self._rebalance_passes.inc()
            self._rebalance_splits.inc(fields.get("splits", 0))
            self._rebalance_merges.inc(fields.get("merges", 0))
            self._rebalance_migrations.inc(fields.get("migrations", 0))
            self._rebalance_suppressed.inc(fields.get("suppressed", 0))
            self._topology_version.set(fields.get("plan_version", 0))
        elif name == "autoscale.action":
            self._autoscale_actions.inc(direction=fields.get("direction", "?"))
            self._replicas.set(fields.get("replicas", 0))
        elif name == "replica.added":
            self._replica_adds.inc()
            self._replicas.set(fields.get("replicas", 0))
        elif name == "replica.drained":
            self._replica_drains.inc()
            self._replicas.set(fields.get("replicas", 0))
        elif name == "topology.applied":
            self._topology_version.set(fields.get("version", 0))
        elif name == "cache.admit":
            self._cache_admissions.inc()
        elif name == "cache.evict":
            self._cache_evictions.inc()
        elif name == "cache.invalidate":
            self._cache_invalidations.inc(fields.get("dropped", 1))
        elif name == "cache.reject_cold":
            self._cache_rejected.inc()
        elif name == "slo.alert":
            self._slo_alerts.inc(
                objective=fields.get("objective", "?"),
                severity=fields.get("severity", "?"),
                state=fields.get("state", "?"),
            )
            self._slo_burning.set(fields.get("active", 0))

    # -- flush → traces -------------------------------------------------------------

    def _record_traces(self, observation) -> None:
        """One trace per request of the flush: the paper's pipeline, per query.

        Scanned requests get the full tree — a server span per replica
        (seconds accumulated from the engine's PhaseTimer, so the span
        total equals ``PhaseTimer.total`` float-exactly), phase leaves
        under each, and per-shard scan spans popped from the tracer's side
        channel (parallel detail: shard seconds do not sum into the
        server).  Requests served by the cache or as dedup followers get a
        zero-cost marker trace — they spent no simulated pipeline time.
        """
        tracer = self.tracer
        scanned_ids = set()
        for request_id, index, expected in observation.scanned:
            scanned_ids.add(request_id)
            trace = tracer.start_trace(
                f"req-{request_id}",
                f"retrieve[{index}]",
                now=observation.now,
                index=index,
            )
            root = trace.root
            for query_id, server_id in expected:
                server = root.child(
                    f"server-{server_id}",
                    kind=KIND_SERVER,
                    query_id=query_id,
                    server_id=server_id,
                )
                detail = observation.details.get((query_id, server_id))
                if detail is None:
                    continue
                if detail.simulated_seconds is not None:
                    server.labels["engine_seconds"] = detail.simulated_seconds
                if detail.breakdown is not None:
                    server.add_phases(detail.breakdown)
                    for shard_index, phases in tracer.pop_shard_scans(
                        detail.breakdown
                    ):
                        shard = server.child(
                            f"shard-{shard_index}", kind=KIND_SHARD, shard=shard_index
                        )
                        shard.add_phases(phases)
                elif detail.simulated_seconds is not None:
                    # Backends without per-phase breakdowns (CPU analytic
                    # batches, the reference server) still get a total.
                    server.seconds = float(detail.simulated_seconds)
            # Replicas run in parallel: the request costs its slowest server.
            root.seconds = max(
                (span.seconds for span in root.find(KIND_SERVER)), default=0.0
            )
        for request_id, index in observation.batch:
            if request_id in scanned_ids:
                continue
            trace = tracer.start_trace(
                f"req-{request_id}",
                f"retrieve[{index}]",
                now=observation.now,
                index=index,
            )
            if not trace.root.children:
                if index in observation.cached_indices:
                    trace.root.child("cache-hit", kind=KIND_CACHE)
                else:
                    trace.root.child("dedup-follower", kind=KIND_CACHE)

    # -- reporting ------------------------------------------------------------------

    def report(self, top_n: int = 5) -> str:
        """A plain-text snapshot: event counts, metrics, slowest traces."""
        lines: List[str] = ["== events =="]
        counts = self.ring.counts()
        if not counts:
            lines.append("(none)")
        for name in sorted(counts):
            lines.append(f"{name:28s} {counts[name]}")
        if self.events.dropped:
            lines.append(
                f"dropped: {self.events.dropped} (last: {self.events.last_error!r})"
            )
        lines.append("")
        lines.append("== metrics ==")
        lines.append(self.registry.render())
        lines.append("")
        lines.append("== latency quantiles (bucket estimates) ==")
        quantile_rows = 0
        for name in (
            "repro_request_latency_seconds",
            "repro_flush_makespan_seconds",
            "repro_engine_answer_seconds",
        ):
            histogram = self.registry.get(name)
            if histogram is None or histogram.count() == 0:
                continue
            p50 = histogram.quantile(0.50)
            p99 = histogram.quantile(0.99)
            lines.append(f"{name:34s} p50={p50:.6f}s p99={p99:.6f}s")
            quantile_rows += 1
        if not quantile_rows:
            lines.append("(none)")
        if self.slo is not None:
            lines.append("")
            lines.append("== slo ==")
            lines.extend(self.slo.describe())
        lines.append("")
        lines.append("== flight recorder ==")
        lines.extend(self.recorder.describe())
        lines.append("")
        lines.append(f"== slowest traces (top {top_n}) ==")
        slowest = self.tracer.slowest(top_n)
        if not slowest:
            lines.append("(none)")
        for trace in slowest:
            lines.extend(trace.render())
        return "\n".join(lines)
