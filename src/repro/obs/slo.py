"""Streaming latency digests, SLO objectives, and burn-rate alerting.

PR 7 gave the fleet raw telemetry (events, metrics, traces); nothing yet
*judged* it.  This module is that judgement layer, deliberately separate
from the data plane (RAFDA's application-logic/distribution-policy split):
it observes request latencies read-only, holds declarative objectives, and
feeds verdicts — :class:`HealthSignal` — back into the control plane.

Three pieces:

* :class:`LatencyDigest` — a dependency-free, fixed-size streaming quantile
  digest (merging-centroid style).  Exact for small streams (``n`` up to the
  centroid budget it reproduces ``numpy.percentile(..)`` linear
  interpolation bit-for-bit), bounded rank error for large ones, with
  compression biased to keep the tails sharp (p95/p99 are what SLOs ask
  about).  :class:`WindowedDigest` buckets digests on the **simulated**
  clock so rolling-window quantiles fall out of cheap merges.
* :class:`SloPolicy` / :class:`SloObjective` / :class:`BurnRateRule` — the
  declarative surface: availability and latency-percentile objectives plus
  Google-SRE style multi-window multi-burn-rate alert rules (a fast pair
  that pages quickly on hard outages, a slow pair that catches simmering
  budget leaks).
* :class:`SloEngine` — rolling error-budget accounting over the windowed
  counters, alert lifecycle (fire / resolve as structured ``slo.alert``
  events through the existing :class:`~repro.obs.events.EventLog`), and the
  :meth:`SloEngine.health` signal the autoscaler and rebalancer consult.

Everything here runs on the injected simulated clock only — ``tools/lint.py``
bans wall-clock reads under ``src/repro/obs/`` — so alert sequences are
deterministic and replayable.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError


# ---------------------------------------------------------------------------
# Streaming quantile digest
# ---------------------------------------------------------------------------


class LatencyDigest:
    """Fixed-size streaming quantile estimator (merging-centroid digest).

    Values accumulate into a small buffer; when it fills, the buffer is
    merge-sorted into a bounded list of ``(mean, count)`` centroids and the
    list is compressed back under ``max_centroids`` by repeatedly merging
    the adjacent pair whose combined weight sits closest to the middle of
    the distribution — a t-digest-style bias that keeps tail centroids
    light, so p95/p99 stay accurate while p50 absorbs the lossiness.

    Accuracy contract (pinned by ``tests/test_slo.py`` against
    ``numpy.percentile``):

    * ``n <= max_centroids`` — no compression ever happens, and
      :meth:`quantile` reproduces numpy's linear interpolation exactly.
    * larger streams — the estimate's *rank* error stays within about
      ``200 / max_centroids`` percentile points (≈ 3 points at the default
      budget of 64) even on adversarial shapes (constant, bimodal,
      heavy-tail); min and max are always exact.
    """

    def __init__(self, max_centroids: int = 64) -> None:
        if max_centroids < 8:
            raise ConfigurationError("max_centroids must be at least 8")
        self.max_centroids = int(max_centroids)
        self._means: List[float] = []
        self._counts: List[int] = []
        self._buffer: List[Tuple[float, int]] = []
        #: False until a compression merges two distinct values; while False
        #: every centroid is an exact value with its exact multiplicity.
        self._compressed = False
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def add(self, value: float, count: int = 1) -> None:
        """Fold ``count`` observations of ``value`` into the digest."""
        value = float(value)
        if count < 1:
            raise ConfigurationError("count must be a positive integer")
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._buffer.append((value, int(count)))
        self.count += int(count)
        if len(self._buffer) >= self.max_centroids:
            self._flush_buffer()

    def merge(self, other: "LatencyDigest") -> None:
        """Fold another digest's centroids into this one (window merges)."""
        other._flush_buffer()
        # A compressed source hands over approximate centroids, so the
        # merged digest loses the exact-stream guarantee too.
        self._compressed = self._compressed or other._compressed
        for mean, count in zip(other._means, other._counts):
            self.add(mean, count)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) of the stream.

        While the digest has never compressed, every centroid is an exact
        value with its exact multiplicity, so the target rank
        ``q * (count - 1)`` is resolved over the expanded stream — this *is*
        numpy's ``percentile(..., method="linear")``, duplicates included.
        After compression each centroid anchors its mean at the middle of
        the rank span it covers and the target is interpolated between
        bracketing anchors, clamping to the exact min/max at the extremes.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile q must be within [0, 1]")
        if self.count == 0:
            raise ConfigurationError("empty digest has no quantiles")
        self._flush_buffer()
        assert self.min is not None and self.max is not None
        if q <= 0.0 or self.count == 1:
            return self.min if q <= 0.0 else (self.max if q >= 1.0 else self.min)
        if q >= 1.0:
            return self.max
        target = q * (self.count - 1)
        if not self._compressed:
            # Exact path: centroid i holds ranks [cum, cum + count - 1] of
            # the sorted stream, all equal to its mean.
            cum = 0
            prev_rank, prev_mean = 0, self.min
            for mean, count in zip(self._means, self._counts):
                if target <= cum + count - 1:
                    if target >= cum:
                        return mean
                    frac = (target - prev_rank) / (cum - prev_rank)
                    return prev_mean + (mean - prev_mean) * frac
                prev_rank, prev_mean = cum + count - 1, mean
                cum += count
            return self.max
        # Anchor ranks: centroid i covers ranks [cum, cum + count); its mean
        # stands for the middle rank cum + (count - 1) / 2.
        prev_rank, prev_mean = 0.0, self.min
        cum = 0
        for mean, count in zip(self._means, self._counts):
            rank = cum + (count - 1) / 2.0
            if target <= rank:
                if rank == prev_rank:
                    return mean
                frac = (target - prev_rank) / (rank - prev_rank)
                return prev_mean + (mean - prev_mean) * frac
            prev_rank, prev_mean = rank, mean
            cum += count
        last_rank = self.count - 1
        if last_rank == prev_rank:
            return self.max
        frac = (target - prev_rank) / (last_rank - prev_rank)
        return prev_mean + (self.max - prev_mean) * frac

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (count, min/max, headline quantiles)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    # -- internals ------------------------------------------------------------------

    def _flush_buffer(self) -> None:
        if not self._buffer:
            return
        self._buffer.sort()
        means, counts = self._means, self._counts
        for mean, count in self._buffer:
            pos = bisect.bisect_left(means, mean)
            if pos < len(means) and means[pos] == mean:
                counts[pos] += count
            else:
                means.insert(pos, mean)
                counts.insert(pos, count)
        self._buffer = []
        self._compress()

    def _compress(self) -> None:
        means, counts = self._means, self._counts
        total = sum(counts)
        # Floor that keeps the cost finite at the very ends of the
        # distribution without drowning the tail bias.
        floor = 1.0 / (4.0 * self.max_centroids * self.max_centroids)
        while len(means) > self.max_centroids:
            self._compressed = True
            best_pos, best_cost = 0, None
            cum = 0
            for i in range(len(means) - 1):
                combined = counts[i] + counts[i + 1]
                q_mid = (cum + combined / 2.0) / total
                cost = combined / (q_mid * (1.0 - q_mid) + floor)
                if best_cost is None or cost < best_cost:
                    best_pos, best_cost = i, cost
                cum += counts[i]
            i = best_pos
            combined = counts[i] + counts[i + 1]
            means[i] = (means[i] * counts[i] + means[i + 1] * counts[i + 1]) / combined
            counts[i] = combined
            del means[i + 1]
            del counts[i + 1]


class WindowedDigest:
    """Latency digests bucketed on the simulated clock.

    Observations land in fixed-width time buckets (one small digest each);
    a rolling-window quantile merges the buckets covering the window into a
    scratch digest.  Buckets older than ``horizon_seconds`` are pruned, so
    state stays bounded no matter how long the run is.
    """

    def __init__(
        self,
        bucket_seconds: float,
        horizon_seconds: float,
        max_centroids: int = 64,
    ) -> None:
        if bucket_seconds <= 0:
            raise ConfigurationError("bucket_seconds must be positive")
        if horizon_seconds < bucket_seconds:
            raise ConfigurationError("horizon_seconds must cover at least one bucket")
        self.bucket_seconds = float(bucket_seconds)
        self.horizon_seconds = float(horizon_seconds)
        self.max_centroids = int(max_centroids)
        self._buckets: Deque[Tuple[int, LatencyDigest]] = deque()

    def observe(self, value: float, now: float) -> None:
        epoch = int(now // self.bucket_seconds)
        if not self._buckets or self._buckets[-1][0] != epoch:
            self._buckets.append((epoch, LatencyDigest(self.max_centroids)))
            self._prune(now)
        self._buckets[-1][1].add(value)

    def digest(self, window_seconds: float, now: float) -> LatencyDigest:
        """Merged digest over buckets overlapping ``[now - window, now]``."""
        if window_seconds <= 0:
            raise ConfigurationError("window_seconds must be positive")
        first_epoch = int((now - window_seconds) // self.bucket_seconds)
        merged = LatencyDigest(self.max_centroids)
        for epoch, digest in self._buckets:
            if epoch >= first_epoch:
                merged.merge(digest)
        return merged

    def quantile(self, q: float, window_seconds: float, now: float) -> Optional[float]:
        """Window quantile, or ``None`` when the window holds no samples."""
        merged = self.digest(window_seconds, now)
        if merged.count == 0:
            return None
        return merged.quantile(q)

    def _prune(self, now: float) -> None:
        first_live = int((now - self.horizon_seconds) // self.bucket_seconds)
        while self._buckets and self._buckets[0][0] < first_live:
            self._buckets.popleft()


class _WindowedCounts:
    """Good/bad request counters bucketed on the simulated clock."""

    def __init__(self, bucket_seconds: float, horizon_seconds: float) -> None:
        self.bucket_seconds = float(bucket_seconds)
        self.horizon_seconds = float(horizon_seconds)
        self._buckets: Deque[List[float]] = deque()  # [epoch, good, bad]

    def observe(self, ok: bool, now: float) -> None:
        epoch = int(now // self.bucket_seconds)
        if not self._buckets or self._buckets[-1][0] != epoch:
            self._buckets.append([epoch, 0, 0])
            first_live = int((now - self.horizon_seconds) // self.bucket_seconds)
            while self._buckets and self._buckets[0][0] < first_live:
                self._buckets.popleft()
        self._buckets[-1][1 if ok else 2] += 1

    def totals(self, window_seconds: float, now: float) -> Tuple[int, int]:
        first_epoch = int((now - window_seconds) // self.bucket_seconds)
        good = bad = 0
        for epoch, g, b in self._buckets:
            if epoch >= first_epoch:
                good += g
                bad += b
        return int(good), int(bad)


# ---------------------------------------------------------------------------
# Declarative policy surface
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SloObjective:
    """One service-level objective.

    ``latency_threshold_seconds=None`` declares an **availability**
    objective: a request is bad iff it failed.  Otherwise it is a
    **latency** objective: a request is bad iff it failed *or* took longer
    than the threshold — so ``target=0.95`` with a 5 ms threshold reads
    "95% of requests finish within 5 ms".
    """

    name: str
    target: float
    latency_threshold_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("objective name must be non-empty")
        if not 0.0 < self.target < 1.0:
            raise ConfigurationError("objective target must be within (0, 1)")
        if self.latency_threshold_seconds is not None and self.latency_threshold_seconds <= 0:
            raise ConfigurationError("latency_threshold_seconds must be positive")

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad-request fraction."""
        return 1.0 - self.target

    def is_bad(self, latency_seconds: float, ok: bool) -> bool:
        if not ok:
            return True
        if self.latency_threshold_seconds is not None:
            return latency_seconds > self.latency_threshold_seconds
        return False

    def describe(self) -> str:
        if self.latency_threshold_seconds is None:
            return f"{self.name}: availability >= {self.target:.4g}"
        return (
            f"{self.name}: {self.target:.4g} of requests within "
            f"{self.latency_threshold_seconds:.4g}s"
        )


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate alert rule (Google-SRE style).

    The alert fires only when the burn rate — bad fraction divided by the
    error budget — exceeds ``burn_threshold`` over **both** the long and the
    short window: the long window proves the problem is sustained, the
    short window proves it is still happening (and lets the alert resolve
    quickly once it is not).  ``escalate=True`` marks the rule as paging
    severity: its active alerts set :attr:`HealthSignal.fast_burn`, which
    the autoscaler treats as an immediate scale-up trigger.
    """

    severity: str
    long_window_seconds: float
    short_window_seconds: float
    burn_threshold: float
    escalate: bool = False

    def __post_init__(self) -> None:
        if not self.severity:
            raise ConfigurationError("rule severity must be non-empty")
        if self.short_window_seconds <= 0 or self.long_window_seconds <= 0:
            raise ConfigurationError("rule windows must be positive")
        if self.short_window_seconds >= self.long_window_seconds:
            raise ConfigurationError("short window must be shorter than the long window")
        if self.burn_threshold <= 0:
            raise ConfigurationError("burn_threshold must be positive")


def default_rules() -> Tuple[BurnRateRule, ...]:
    """The classic fast/slow pair, scaled for simulated-seconds workloads."""
    return (
        BurnRateRule(
            severity="fast",
            long_window_seconds=1.0,
            short_window_seconds=0.25,
            burn_threshold=8.0,
            escalate=True,
        ),
        BurnRateRule(
            severity="slow",
            long_window_seconds=4.0,
            short_window_seconds=1.0,
            burn_threshold=2.0,
        ),
    )


@dataclass(frozen=True)
class SloPolicy:
    """Everything the SLO engine needs, declared up front."""

    objectives: Tuple[SloObjective, ...]
    rules: Tuple[BurnRateRule, ...] = field(default_factory=default_rules)
    #: Width of the simulated-clock accounting buckets; must resolve the
    #: shortest alert window.
    bucket_seconds: float = 0.05
    #: Window for the headline reporting quantiles (p50/p95/p99).
    digest_window_seconds: float = 4.0
    max_centroids: int = 64

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ConfigurationError("policy needs at least one objective")
        if not self.rules:
            raise ConfigurationError("policy needs at least one burn-rate rule")
        if self.bucket_seconds <= 0:
            raise ConfigurationError("bucket_seconds must be positive")
        shortest = min(rule.short_window_seconds for rule in self.rules)
        if self.bucket_seconds > shortest:
            raise ConfigurationError(
                "bucket_seconds must not exceed the shortest alert window"
            )
        if self.digest_window_seconds <= 0:
            raise ConfigurationError("digest_window_seconds must be positive")
        names = [objective.name for objective in self.objectives]
        if len(set(names)) != len(names):
            raise ConfigurationError("objective names must be unique")

    @property
    def horizon_seconds(self) -> float:
        """How far back any window can reach (bounds retained state)."""
        longest = max(rule.long_window_seconds for rule in self.rules)
        return max(longest, self.digest_window_seconds) + self.bucket_seconds


# ---------------------------------------------------------------------------
# Alerts and health
# ---------------------------------------------------------------------------


@dataclass
class SloAlert:
    """One fired (and possibly resolved) burn-rate alert."""

    objective: str
    severity: str
    fired_at: float
    burn_rate: float
    threshold: float
    long_window_seconds: float
    short_window_seconds: float
    escalate: bool
    resolved_at: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.resolved_at is None

    def as_dict(self) -> Dict[str, object]:
        return {
            "objective": self.objective,
            "severity": self.severity,
            "fired_at": self.fired_at,
            "burn_rate": self.burn_rate,
            "threshold": self.threshold,
            "long_window_seconds": self.long_window_seconds,
            "short_window_seconds": self.short_window_seconds,
            "escalate": self.escalate,
            "resolved_at": self.resolved_at,
        }

    def describe(self) -> str:
        state = "ACTIVE" if self.active else f"resolved@{self.resolved_at:.3f}"
        return (
            f"[{self.severity}] {self.objective} burn {self.burn_rate:.2f}x"
            f" >= {self.threshold:.2f}x fired@{self.fired_at:.3f} {state}"
        )


@dataclass(frozen=True)
class HealthSignal:
    """What the control plane sees: is the service burning budget right now?

    ``fast_burn`` is the escalation bit — at least one *escalating* rule is
    active, so the autoscaler should scale up immediately instead of
    waiting out its sustain streak, and the rebalancer should hold
    cosmetic reshapes.  ``burning`` is any active alert at all.
    """

    now: float
    burning: bool
    fast_burn: bool
    active: Tuple[str, ...] = ()

    @classmethod
    def healthy(cls, now: float = 0.0) -> "HealthSignal":
        return cls(now=now, burning=False, fast_burn=False)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class SloEngine:
    """Rolling SLO accounting plus burn-rate alert lifecycle.

    Feed it one call per request (:meth:`record_request` /
    :meth:`record_failure`), then :meth:`evaluate` at whatever cadence the
    caller flushes — every transition emits a structured ``slo.alert``
    event through ``events`` and pokes the bound flight recorder so an
    incident bundle is captured at fire time.  :meth:`health` is the
    read-only verdict the control plane consumes.
    """

    def __init__(self, policy: SloPolicy, events=None) -> None:
        self.policy = policy
        self.events = events
        #: Bound by the hub: object with ``record_incident(trigger, now)``.
        self.recorder = None
        horizon = policy.horizon_seconds
        self._counts: Dict[str, _WindowedCounts] = {
            objective.name: _WindowedCounts(policy.bucket_seconds, horizon)
            for objective in policy.objectives
        }
        self._latency = WindowedDigest(
            policy.bucket_seconds, horizon, policy.max_centroids
        )
        self.active: Dict[Tuple[str, str], SloAlert] = {}
        self.history: List[SloAlert] = []
        self.requests = 0
        self.failures = 0
        self._now = 0.0

    # -- ingestion ------------------------------------------------------------------

    def record_request(self, latency_seconds: float, now: float, ok: bool = True) -> None:
        """Account one finished request at simulated time ``now``."""
        if latency_seconds < 0:
            raise ConfigurationError("latency_seconds must be non-negative")
        self._now = max(self._now, float(now))
        self.requests += 1
        if not ok:
            self.failures += 1
        else:
            self._latency.observe(latency_seconds, now)
        for objective in self.policy.objectives:
            bad = objective.is_bad(latency_seconds, ok)
            self._counts[objective.name].observe(not bad, now)

    def record_failure(self, now: float) -> None:
        """Account a request that produced no answer (latency unknowable)."""
        self.record_request(0.0, now, ok=False)

    # -- evaluation -----------------------------------------------------------------

    def burn_rate(self, objective: str, window_seconds: float, now: float) -> float:
        """Bad fraction over the window, as a multiple of the error budget."""
        counts = self._counts.get(objective)
        if counts is None:
            raise ConfigurationError(f"unknown objective: {objective!r}")
        good, bad = counts.totals(window_seconds, now)
        total = good + bad
        if total == 0:
            return 0.0
        spec = next(o for o in self.policy.objectives if o.name == objective)
        return (bad / total) / spec.budget

    def budget_remaining(self, objective: str, window_seconds: float, now: float) -> float:
        """Fraction of the window's error budget still unspent (floored at 0)."""
        return max(0.0, 1.0 - self.burn_rate(objective, window_seconds, now))

    def evaluate(self, now: float) -> List[SloAlert]:
        """Advance the alert lifecycle; returns alerts that changed state."""
        self._now = max(self._now, float(now))
        changed: List[SloAlert] = []
        for objective in self.policy.objectives:
            for rule in self.policy.rules:
                key = (objective.name, rule.severity)
                short_burn = self.burn_rate(
                    objective.name, rule.short_window_seconds, now
                )
                alert = self.active.get(key)
                if alert is None:
                    long_burn = self.burn_rate(
                        objective.name, rule.long_window_seconds, now
                    )
                    if (
                        long_burn >= rule.burn_threshold
                        and short_burn >= rule.burn_threshold
                    ):
                        alert = SloAlert(
                            objective=objective.name,
                            severity=rule.severity,
                            fired_at=now,
                            burn_rate=long_burn,
                            threshold=rule.burn_threshold,
                            long_window_seconds=rule.long_window_seconds,
                            short_window_seconds=rule.short_window_seconds,
                            escalate=rule.escalate,
                        )
                        self.active[key] = alert
                        self.history.append(alert)
                        changed.append(alert)
                        self._emit("fired", alert, long_burn, now)
                        if self.recorder is not None:
                            self.recorder.record_incident(
                                f"slo.alert:{objective.name}/{rule.severity}", now
                            )
                elif short_burn < rule.burn_threshold:
                    alert.resolved_at = now
                    del self.active[key]
                    changed.append(alert)
                    self._emit("resolved", alert, short_burn, now)
        return changed

    def _emit(self, state: str, alert: SloAlert, burn: float, now: float) -> None:
        if self.events is None:
            return
        self.events.emit(
            "slo.alert",
            now=now,
            state=state,
            objective=alert.objective,
            severity=alert.severity,
            burn_rate=burn,
            threshold=alert.threshold,
            escalate=alert.escalate,
            active=len(self.active),
        )

    # -- read-only surface ----------------------------------------------------------

    def health(self, now: Optional[float] = None) -> HealthSignal:
        """The control-plane verdict as of ``now`` (defaults to last seen)."""
        at = self._now if now is None else float(now)
        active = tuple(
            f"{alert.objective}/{alert.severity}" for alert in self.active.values()
        )
        fast = any(alert.escalate for alert in self.active.values())
        return HealthSignal(now=at, burning=bool(active), fast_burn=fast, active=active)

    def quantile(
        self, q: float, window_seconds: Optional[float] = None, now: Optional[float] = None
    ) -> Optional[float]:
        """Rolling-window latency quantile (``None`` with no samples)."""
        window = (
            self.policy.digest_window_seconds if window_seconds is None else window_seconds
        )
        return self._latency.quantile(q, window, self._now if now is None else now)

    def as_dict(self, now: Optional[float] = None) -> Dict[str, object]:
        """Deterministic JSON-safe snapshot (incident-bundle payload)."""
        at = self._now if now is None else float(now)
        objectives = []
        for objective in sorted(self.policy.objectives, key=lambda o: o.name):
            window = self.policy.digest_window_seconds
            objectives.append(
                {
                    "name": objective.name,
                    "target": objective.target,
                    "latency_threshold_seconds": objective.latency_threshold_seconds,
                    "burn_rate": self.burn_rate(objective.name, window, at),
                    "budget_remaining": self.budget_remaining(objective.name, window, at),
                }
            )
        digest = self._latency.digest(self.policy.digest_window_seconds, at)
        return {
            "now": at,
            "requests": self.requests,
            "failures": self.failures,
            "objectives": objectives,
            "latency": digest.as_dict(),
            "active_alerts": sorted(
                (alert.as_dict() for alert in self.active.values()),
                key=lambda a: (a["objective"], a["severity"]),
            ),
        }

    def describe(self) -> List[str]:
        """Human-readable report lines (CLI ``report`` / plane describe)."""
        lines = [objective.describe() for objective in self.policy.objectives]
        window = self.policy.digest_window_seconds
        for objective in self.policy.objectives:
            burn = self.burn_rate(objective.name, window, self._now)
            remaining = self.budget_remaining(objective.name, window, self._now)
            lines.append(
                f"{objective.name}: burn {burn:.2f}x budget,"
                f" {remaining:.0%} of window budget left"
            )
        for q, label in ((0.50, "p50"), (0.95, "p95"), (0.99, "p99")):
            value = self.quantile(q)
            if value is not None:
                lines.append(f"latency {label} ({window:.4g}s window): {value:.6f}s")
        if self.active:
            for alert in sorted(
                self.active.values(), key=lambda a: (a.objective, a.severity)
            ):
                lines.append(alert.describe())
        else:
            lines.append("no active alerts")
        fired = len(self.history)
        resolved = sum(1 for alert in self.history if not alert.active)
        lines.append(f"alerts fired={fired} resolved={resolved}")
        return lines
