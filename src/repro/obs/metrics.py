"""Metrics registry: counters, gauges and bucketed histograms with labels.

The aggregated counterpart of :mod:`repro.obs.events`: where the event log
records *what happened*, the registry keeps *how often and how long* in a
form cheap enough to read at any instant — counters (monotonic totals),
gauges (last-set values) and bucketed histograms (cumulative ``le`` buckets
plus sum/count), each a *family* keyed by a fixed tuple of label names.

:meth:`MetricsRegistry.render` emits a Prometheus-style text snapshot
(``# HELP`` / ``# TYPE`` headers, ``name{label="value"} number`` samples,
``_bucket``/``_sum``/``_count`` series for histograms) so a run's metrics
can be diffed, grepped, or scraped without any dependency; ``as_dict``
gives the same data as plain nested dicts for JSON artifacts and tests.

Everything is deterministic: histogram bucket bounds are fixed at
construction, samples render sorted by label values, and nothing reads a
clock — values come from the simulated timers the callers already hold.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigurationError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram buckets: simulated seconds from microseconds to tens of
#: seconds, the range every PhaseTimer in this repository actually spans.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6,
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    0.1,
    1.0,
    10.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ConfigurationError(f"invalid metric name {name!r}")
    return name


def _label_key(
    label_names: Tuple[str, ...], labels: Dict[str, object], metric: str
) -> Tuple[str, ...]:
    """The values tuple for one sample, validated against the family's names."""
    if set(labels) != set(label_names):
        raise ConfigurationError(
            f"metric {metric!r} takes labels {sorted(label_names)}, "
            f"got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in label_names)


def _render_labels(label_names: Tuple[str, ...], key: Tuple[str, ...]) -> str:
    if not label_names:
        return ""
    pairs = ",".join(
        f'{name}="{value}"' for name, value in zip(label_names, key)
    )
    return "{" + pairs + "}"


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing total, one sample per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.label_names = tuple(label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up")
        key = _label_key(self.label_names, labels, self.name)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """The total for one label set (0.0 if never incremented)."""
        return self._values.get(_label_key(self.label_names, labels, self.name), 0.0)

    def total(self) -> float:
        """The total summed across every label set."""
        return sum(self._values.values())

    def samples(self) -> List[Tuple[Dict[str, str], float]]:
        return [
            (dict(zip(self.label_names, key)), value)
            for key, value in sorted(self._values.items())
        ]

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        if not self._values and not self.label_names:
            # Unlabeled families always expose their (zero) sample, matching
            # the Prometheus client convention; labeled ones appear on use.
            lines.append(f"{self.name} 0")
        for key in sorted(self._values):
            lines.append(
                f"{self.name}{_render_labels(self.label_names, key)} "
                f"{_format_number(self._values[key])}"
            )
        return lines


class Gauge(Counter):
    """A value that can go anywhere; ``set`` replaces, ``inc`` adjusts."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = _label_key(self.label_names, labels, self.name)
        self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(self.label_names, labels, self.name)
        self._values[key] = self._values.get(key, 0.0) + amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics) per label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.label_names = tuple(label_names)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ConfigurationError("histogram buckets must be distinct and non-empty")
        self.buckets = bounds
        #: per label key: (per-bound counts, sum, count)
        self._series: Dict[Tuple[str, ...], Tuple[List[int], float, int]] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(self.label_names, labels, self.name)
        counts, total, count = self._series.get(
            key, ([0] * len(self.buckets), 0.0, 0)
        )
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                counts[position] += 1
        self._series[key] = (counts, total + float(value), count + 1)

    def snapshot(self, **labels) -> Dict[str, object]:
        """``{"count", "sum", "buckets": {le: cumulative}}`` for one label set."""
        key = _label_key(self.label_names, labels, self.name)
        counts, total, count = self._series.get(
            key, ([0] * len(self.buckets), 0.0, 0)
        )
        return {
            "count": count,
            "sum": total,
            "buckets": {bound: counts[i] for i, bound in enumerate(self.buckets)},
        }

    def count(self, **labels) -> int:
        return int(self.snapshot(**labels)["count"])

    def quantile(self, q: float, **labels) -> float:
        """Estimate the ``q``-quantile from the cumulative buckets.

        Prometheus ``histogram_quantile`` semantics: find the bucket where
        the target rank ``q * count`` lands and interpolate linearly within
        its bounds (the first bucket's lower bound is 0).  Ranks falling in
        the implicit ``+Inf`` bucket return the highest finite bound — the
        estimate cannot exceed what the buckets resolve.  For true rolling
        quantiles use the SLO engine's streaming digest; this is the cheap
        whole-run estimate rendered in the CLI ``report``.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile q must be within [0, 1]")
        key = _label_key(self.label_names, labels, self.name)
        counts, _total, count = self._series.get(
            key, ([0] * len(self.buckets), 0.0, 0)
        )
        if count == 0:
            raise ConfigurationError(
                f"histogram {self.name!r} has no observations for these labels"
            )
        target = q * count
        lower = 0.0
        previous = 0
        for position, bound in enumerate(self.buckets):
            cumulative = counts[position]
            if cumulative >= target:
                in_bucket = cumulative - previous
                if in_bucket == 0:
                    return lower
                fraction = (target - previous) / in_bucket
                return lower + (bound - lower) * fraction
            lower = bound
            previous = cumulative
        return self.buckets[-1]

    def samples(self) -> List[Tuple[Dict[str, str], Dict[str, object]]]:
        return [
            (
                dict(zip(self.label_names, key)),
                {"count": count, "sum": total},
            )
            for key, (counts, total, count) in sorted(self._series.items())
        ]

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        for key in sorted(self._series):
            counts, total, count = self._series[key]
            for position, bound in enumerate(self.buckets):
                labels = dict(zip(self.label_names, key))
                labels["le"] = _format_number(bound)
                names = tuple(list(self.label_names) + ["le"])
                values = tuple(list(key) + [labels["le"]])
                lines.append(
                    f"{self.name}_bucket{_render_labels(names, values)} "
                    f"{counts[position]}"
                )
            names = tuple(list(self.label_names) + ["le"])
            values = tuple(list(key) + ["+Inf"])
            lines.append(f"{self.name}_bucket{_render_labels(names, values)} {count}")
            lines.append(
                f"{self.name}_sum{_render_labels(self.label_names, key)} "
                f"{_format_number(total)}"
            )
            lines.append(
                f"{self.name}_count{_render_labels(self.label_names, key)} {count}"
            )
        return lines


class MetricsRegistry:
    """Create-or-fetch families by name; render the whole set at once.

    Registration is idempotent for a matching (kind, labels) signature and
    raises on a conflicting re-registration — two layers silently sharing a
    name with different label sets would corrupt each other's samples.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _register(self, cls, name: str, help: str, label_names, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.label_names != tuple(label_names):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}{existing.label_names}"
                )
            return existing
        metric = cls(name, help=help, label_names=label_names, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", label_names: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, label_names)

    def gauge(self, name: str, help: str = "", label_names: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, label_names)

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, label_names, buckets=buckets)

    def get(self, name: str):
        """The registered family, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def render(self) -> str:
        """The Prometheus-style text snapshot of every family, name-sorted."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """Nested-dict snapshot (JSON artifacts, assertions in tests)."""
        snapshot: Dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            snapshot[name] = {
                "kind": metric.kind,
                "samples": [
                    {"labels": labels, "value": value}
                    for labels, value in metric.samples()
                ],
            }
        return snapshot
