"""GGM tree helpers: correction words, level expansion, tree arithmetic."""

import numpy as np
import pytest

from repro.dpf.ggm import CorrectionWord, GGMTree, descend_one, expand_level
from repro.dpf.prf import SEED_BYTES, NumpyPRG


def _cw(seed_byte: int = 0, t_left: int = 0, t_right: int = 0) -> CorrectionWord:
    return CorrectionWord(bytes([seed_byte] * SEED_BYTES), t_left, t_right)


class TestCorrectionWord:
    def test_valid_construction(self):
        cw = _cw(7, 1, 0)
        assert cw.t_left == 1 and cw.t_right == 0
        assert cw.seed_array().shape == (SEED_BYTES,)

    def test_rejects_short_seed(self):
        with pytest.raises(ValueError):
            CorrectionWord(b"short", 0, 0)

    def test_rejects_non_bit_corrections(self):
        with pytest.raises(ValueError):
            CorrectionWord(bytes(SEED_BYTES), 2, 0)


class TestExpandLevel:
    def test_output_shapes(self):
        prg = NumpyPRG()
        seeds = np.zeros((3, SEED_BYTES), dtype=np.uint8)
        bits = np.zeros(3, dtype=np.uint8)
        child_seeds, child_bits = expand_level(prg, seeds, bits, _cw())
        assert child_seeds.shape == (6, SEED_BYTES)
        assert child_bits.shape == (6,)

    def test_children_are_interleaved(self):
        prg = NumpyPRG()
        seeds = np.arange(2 * SEED_BYTES, dtype=np.uint8).reshape(2, SEED_BYTES)
        bits = np.zeros(2, dtype=np.uint8)
        child_seeds, _ = expand_level(prg, seeds, bits, _cw())
        left, right, _, _ = NumpyPRG().expand(seeds)
        assert np.array_equal(child_seeds[0], left[0])
        assert np.array_equal(child_seeds[1], right[0])
        assert np.array_equal(child_seeds[2], left[1])
        assert np.array_equal(child_seeds[3], right[1])

    def test_correction_applied_only_when_control_set(self):
        prg_a, prg_b = NumpyPRG(), NumpyPRG()
        seeds = np.arange(SEED_BYTES, dtype=np.uint8).reshape(1, SEED_BYTES)
        correction = _cw(seed_byte=0xFF, t_left=1, t_right=1)
        plain_seeds, plain_bits = expand_level(prg_a, seeds, np.asarray([0], dtype=np.uint8), correction)
        fixed_seeds, fixed_bits = expand_level(prg_b, seeds, np.asarray([1], dtype=np.uint8), correction)
        assert np.array_equal(plain_seeds ^ 0xFF, fixed_seeds)
        assert np.array_equal(plain_bits ^ 1, fixed_bits)

    def test_rejects_mismatched_control_bits(self):
        with pytest.raises(ValueError):
            expand_level(
                NumpyPRG(),
                np.zeros((2, SEED_BYTES), dtype=np.uint8),
                np.zeros(3, dtype=np.uint8),
                _cw(),
            )

    def test_descend_one_matches_expand_level(self):
        prg = NumpyPRG()
        seed = np.arange(SEED_BYTES, dtype=np.uint8)
        correction = _cw(3, 1, 0)
        for direction in (0, 1):
            child_seed, child_bit = descend_one(NumpyPRG(), seed, 1, correction, direction)
            seeds, bits = expand_level(prg, seed.reshape(1, -1), np.asarray([1], dtype=np.uint8), correction)
            assert np.array_equal(child_seed, seeds[direction])
            assert child_bit == int(bits[direction])

    def test_descend_one_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            descend_one(NumpyPRG(), np.zeros(SEED_BYTES, dtype=np.uint8), 0, _cw(), 2)


class TestGGMTree:
    def test_leaf_and_node_counts(self):
        tree = GGMTree(depth=4)
        assert tree.num_leaves == 16
        assert tree.num_internal_nodes == 15
        assert tree.num_nodes == 31

    def test_nodes_at_level(self):
        tree = GGMTree(depth=3)
        assert [tree.nodes_at_level(level) for level in range(4)] == [1, 2, 4, 8]

    def test_nodes_at_level_out_of_range(self):
        with pytest.raises(ValueError):
            GGMTree(depth=3).nodes_at_level(4)

    def test_level_memory(self):
        assert GGMTree(depth=5).level_memory_bytes(5) == 32 * (SEED_BYTES + 1)

    def test_prg_call_counts(self):
        tree = GGMTree(depth=6)
        assert tree.prg_calls_level_by_level() == 63
        assert tree.prg_calls_branch_parallel() == 64 * 6
        assert tree.prg_calls_branch_parallel() > tree.prg_calls_level_by_level()

    def test_memory_bounded_interpolates(self):
        tree = GGMTree(depth=10)
        full = tree.prg_calls_level_by_level()
        bounded = tree.prg_calls_memory_bounded(chunk_leaves=64)
        redundant = tree.prg_calls_branch_parallel()
        assert full <= bounded <= redundant

    def test_memory_bounded_full_chunk_equals_level_by_level_plus_zero_descent(self):
        tree = GGMTree(depth=5)
        assert tree.prg_calls_memory_bounded(chunk_leaves=32) == tree.prg_calls_level_by_level()

    def test_memory_bounded_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            GGMTree(depth=3).prg_calls_memory_bounded(0)

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            GGMTree(depth=-1)
