"""Wire serialization: round-trips and malformed-input handling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ProtocolError
from repro.dpf.dpf import DPF
from repro.dpf.naive import NaiveShare
from repro.pir.messages import DPFQuery, NaiveQuery, PIRAnswer
from repro.pir.serialization import (
    deserialize_answer,
    deserialize_key,
    deserialize_query,
    serialize_answer,
    serialize_key,
    serialize_query,
    wire_sizes,
)


@pytest.fixture(scope="module")
def dpf_key():
    return DPF(domain_bits=12, seed=31).gen(1000, 1)[0]


class TestKeyRoundTrip:
    def test_round_trip_preserves_key(self, dpf_key):
        restored = deserialize_key(serialize_key(dpf_key))
        assert restored == dpf_key

    def test_round_trip_key_still_evaluates(self):
        dpf = DPF(domain_bits=9, seed=7)
        key0, key1 = dpf.gen(300, 1)
        restored0 = deserialize_key(serialize_key(key0))
        restored1 = deserialize_key(serialize_key(key1))
        combined = dpf.eval_full(restored0) ^ dpf.eval_full(restored1)
        assert combined[300] == 1 and int(combined.sum()) == 1

    def test_serialized_size_matches_key_estimate(self, dpf_key):
        blob = serialize_key(dpf_key)
        # The in-memory estimate and the wire size agree to within the header.
        assert abs(len(blob) - dpf_key.size_bytes) < 32

    def test_truncated_blob_rejected(self, dpf_key):
        blob = serialize_key(dpf_key)
        with pytest.raises(ProtocolError):
            deserialize_key(blob[:10])
        with pytest.raises(ProtocolError):
            deserialize_key(blob[:-3])

    def test_wrong_magic_rejected(self, dpf_key):
        blob = bytearray(serialize_key(dpf_key))
        blob[0:2] = b"ZZ"
        with pytest.raises(ProtocolError):
            deserialize_key(bytes(blob))

    @settings(max_examples=20, deadline=None)
    @given(
        domain_bits=st.integers(min_value=1, max_value=16),
        output_bits=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_round_trip_property(self, domain_bits, output_bits, seed):
        dpf = DPF(domain_bits, output_bits=output_bits, seed=seed)
        beta = min(3, (1 << output_bits) - 1) or 1
        key0, _ = dpf.gen(seed % dpf.domain_size, beta)
        assert deserialize_key(serialize_key(key0)) == key0


class TestQueryRoundTrip:
    def test_dpf_query(self, dpf_key):
        query = DPFQuery(query_id=17, server_id=0, key=dpf_key, num_records=4000)
        restored = deserialize_query(serialize_query(query))
        assert isinstance(restored, DPFQuery)
        assert restored.query_id == 17
        assert restored.server_id == 0
        assert restored.num_records == 4000
        assert restored.key == dpf_key

    def test_naive_query(self):
        bits = np.random.default_rng(0).integers(0, 2, 100, dtype=np.uint8)
        query = NaiveQuery(
            query_id=3, server_id=1, share=NaiveShare(server_id=1, bits=bits), num_records=100
        )
        restored = deserialize_query(serialize_query(query))
        assert isinstance(restored, NaiveQuery)
        assert np.array_equal(restored.share.bits, bits)

    def test_truncated_query_rejected(self, dpf_key):
        query = DPFQuery(query_id=1, server_id=1, key=dpf_key, num_records=4000)
        with pytest.raises(ProtocolError):
            deserialize_query(serialize_query(query)[:5])

    def test_unknown_magic_rejected(self, dpf_key):
        blob = bytearray(serialize_query(DPFQuery(query_id=1, server_id=0, key=dpf_key, num_records=10)))
        blob[0:2] = b"XX"
        with pytest.raises(ProtocolError):
            deserialize_query(bytes(blob))


class TestAnswerRoundTrip:
    def test_round_trip(self):
        answer = PIRAnswer(query_id=9, server_id=1, payload=b"\xab" * 32, simulated_seconds=0.125)
        restored = deserialize_answer(serialize_answer(answer))
        assert restored.query_id == 9
        assert restored.server_id == 1
        assert restored.payload == b"\xab" * 32
        assert restored.simulated_seconds == pytest.approx(0.125)

    def test_round_trip_without_timing(self):
        answer = PIRAnswer(query_id=0, server_id=0, payload=b"x")
        restored = deserialize_answer(serialize_answer(answer))
        assert restored.simulated_seconds is None

    def test_corrupted_length_rejected(self):
        blob = bytearray(serialize_answer(PIRAnswer(query_id=0, server_id=0, payload=b"abcd")))
        with pytest.raises(ProtocolError):
            deserialize_answer(bytes(blob[:-1]))


class TestEndToEndOverTheWire:
    def test_full_protocol_through_serialization(self, small_db):
        """Client and servers exchange only serialized bytes."""
        from repro.dpf.prf import make_prg
        from repro.pir.client import PIRClient
        from repro.pir.server import PIRServer

        client = PIRClient(small_db.num_records, small_db.record_size, seed=3, prg=make_prg("numpy"))
        servers = [PIRServer(small_db, server_id=i, prg=make_prg("numpy")) for i in range(2)]
        index = 444
        wire_queries = [serialize_query(q) for q in client.query(index)]
        wire_answers = []
        for blob in wire_queries:
            query = deserialize_query(blob)
            wire_answers.append(serialize_answer(servers[query.server_id].answer(query)))
        answers = [deserialize_answer(blob) for blob in wire_answers]
        assert client.reconstruct(answers) == small_db.record(index)

    def test_wire_sizes_helper(self, dpf_key):
        query = DPFQuery(query_id=0, server_id=0, key=dpf_key, num_records=4000)
        answer = PIRAnswer(query_id=0, server_id=0, payload=b"\x00" * 32)
        upload, download = wire_sizes(query, answer)
        assert upload > download
        assert download == len(serialize_answer(answer))
