"""Workloads: generators, traces, certificate transparency, credentials."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import GIB
from repro.workloads.certificate_transparency import CertificateTransparencyLog, build_ct_workload
from repro.workloads.credentials import (
    CompromisedCredentialCorpus,
    build_credential_workload,
    hash_credential,
)
from repro.workloads.generator import (
    DatabaseSpec,
    paper_batch_sizes,
    paper_breakdown_sizes_gib,
    paper_db_sizes_gib,
    random_hash_database,
    scaled_functional_spec,
    sha256_database,
)
from repro.workloads.traces import QueryTrace, sequential_trace, uniform_trace, zipf_trace


class TestDatabaseSpec:
    def test_from_size(self):
        spec = DatabaseSpec.from_size_gib(1.0)
        assert spec.record_size == 32
        assert spec.num_records == GIB // 32
        assert spec.size_bytes == spec.num_records * 32

    def test_from_size_bytes(self):
        assert DatabaseSpec.from_size_bytes(4096, record_size=64).num_records == 64

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            DatabaseSpec(num_records=0)
        with pytest.raises(ConfigurationError):
            DatabaseSpec.from_size_bytes(0)

    def test_scaled_functional_spec(self):
        target = DatabaseSpec.from_size_gib(8.0)
        scaled = scaled_functional_spec(target, max_records=4096)
        assert scaled.num_records == 4096
        assert scaled.record_size == target.record_size

    def test_paper_sweeps(self):
        assert paper_db_sizes_gib() == [0.5, 1.0, 2.0, 4.0, 8.0]
        assert 32.0 in paper_breakdown_sizes_gib()
        assert paper_batch_sizes()[0] == 4 and paper_batch_sizes()[-1] == 512


class TestGenerators:
    def test_random_hash_database(self):
        db = random_hash_database(DatabaseSpec(num_records=100), seed=1)
        assert db.num_records == 100 and db.record_size == 32

    def test_sha256_database_records_are_digests(self):
        import hashlib

        db = sha256_database(10, lambda i: f"entry-{i}".encode())
        assert db.record(3) == hashlib.sha256(b"entry-3").digest()

    def test_sha256_database_custom_record_size(self):
        db = sha256_database(5, lambda i: bytes([i]), record_size=16)
        assert db.record_size == 16


class TestTraces:
    def test_uniform_trace_in_range(self):
        trace = uniform_trace(100, 50, seed=1)
        assert len(trace) == 50
        assert all(0 <= i < 100 for i in trace)

    def test_zipf_trace_skewed(self):
        trace = zipf_trace(1000, 500, exponent=1.5, seed=2)
        counts = np.bincount(np.array(trace.indices), minlength=1000)
        # The most popular record should be hit far more often than the median.
        assert counts.max() >= 10

    def test_zipf_requires_exponent_above_one(self):
        with pytest.raises(ConfigurationError):
            zipf_trace(10, 5, exponent=1.0)

    def test_zipf_head_frequencies_are_not_distorted_by_wrapping(self):
        """Regression: out-of-range Zipf ranks used to be wrapped with
        ``% num_records``, folding the distribution's unbounded tail back
        onto arbitrary (often hottest) indices.  Rejection sampling keeps
        the head strictly dominant and the tail below it on a small domain,
        where the wrap distortion was most visible."""
        trace = zipf_trace(50, 20000, exponent=1.3, seed=7)
        counts = np.bincount(np.array(trace.indices), minlength=50)
        # Head ranks are strictly ordered by popularity...
        assert counts[0] > counts[1] > counts[2] > counts[3]
        # ...and no tail index beats the head (the wrap used to pile the
        # mass of every rank > 50 onto the low indices in multiples of 50).
        assert counts[5:].max() < counts[2]

    def test_zipf_small_domain_stays_in_range(self):
        trace = zipf_trace(2, 200, exponent=1.1, seed=3)
        assert set(trace.indices) <= {0, 1}
        assert len(trace) == 200

    def test_sequential_trace_wraps(self):
        trace = sequential_trace(5, 7, start=3)
        assert list(trace) == [3, 4, 0, 1, 2, 3, 4]

    def test_batches(self):
        trace = sequential_trace(100, 10)
        batches = list(trace.batches(4))
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_trace_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            QueryTrace(indices=(5,), num_records=5)

    def test_trace_rejects_zero_queries(self):
        with pytest.raises(ConfigurationError):
            uniform_trace(10, 0)


class TestCertificateTransparency:
    def test_database_and_lookup(self):
        log = CertificateTransparencyLog(num_certificates=256)
        db = log.build_database()
        assert db.num_records == 256
        digest = log.digest_of(100)
        assert log.lookup_index(digest) == 100
        assert log.lookup_index(b"\x00" * 32) is None

    def test_audit_trace_prefers_recent_certificates(self):
        log = CertificateTransparencyLog(num_certificates=1000)
        trace = log.audit_trace(200, seed=3)
        assert len(trace) == 200
        assert np.mean(np.array(trace.indices)) > 500  # skewed toward the newest entries

    def test_monitor_trace_unique(self):
        log = CertificateTransparencyLog(num_certificates=64)
        trace = log.monitor_trace(10, seed=1)
        assert len(set(trace.indices)) == 10

    def test_verify_inclusion(self):
        log, db, trace = build_ct_workload(num_certificates=128, num_audits=4, seed=5)
        index = trace.indices[0]
        assert log.verify_inclusion(db, index, db.record(index))
        assert not log.verify_inclusion(db, index, b"\x00" * 32)

    def test_out_of_range_certificate_rejected(self):
        with pytest.raises(ConfigurationError):
            CertificateTransparencyLog(num_certificates=4).digest_of(9)


class TestCredentials:
    def test_corpus_database(self):
        corpus = CompromisedCredentialCorpus(num_credentials=128)
        db = corpus.build_database()
        assert db.num_records == 128
        credential = corpus.credential_at(17)
        assert db.record(17) == hash_credential(credential)

    def test_check_trace_mixes_hits_and_misses(self):
        corpus = CompromisedCredentialCorpus(num_credentials=256)
        trace, candidates, expected = corpus.check_trace(40, hit_fraction=0.5, seed=7)
        assert len(trace) == len(candidates) == len(expected) == 40
        assert any(expected) and not all(expected)

    def test_is_compromised_verdicts(self):
        corpus, db, trace, candidates, expected = build_credential_workload(
            num_credentials=128, num_checks=20, seed=9
        )
        for index, candidate, hit in zip(trace.indices, candidates, expected):
            verdict = corpus.is_compromised(candidate, db.record(index))
            assert verdict == hit

    def test_invalid_hit_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            CompromisedCredentialCorpus(num_credentials=8).check_trace(4, hit_fraction=1.5)

    def test_hash_credential_record_size(self):
        assert len(hash_credential(b"pw", record_size=16)) == 16
