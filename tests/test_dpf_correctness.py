"""Correction-word DPF: key generation and evaluation correctness."""

import numpy as np
import pytest

from repro.common.errors import KeyMismatchError
from repro.dpf.dpf import DPF, DPFKey, EvalStats, verify_keys
from repro.dpf.prf import make_prg


class TestGen:
    def test_keys_have_expected_structure(self):
        dpf = DPF(domain_bits=8, seed=1)
        key0, key1 = dpf.gen(37, 1)
        assert key0.party == 0 and key1.party == 1
        assert len(key0.correction_words) == 8
        assert key0.correction_words == key1.correction_words
        assert key0.root_seed != key1.root_seed

    def test_key_size_grows_logarithmically(self):
        small = DPF(domain_bits=8, seed=1).gen(3)[0].size_bytes
        large = DPF(domain_bits=20, seed=1).gen(3)[0].size_bytes
        assert large > small
        assert large < 4 * small  # log-scale growth, not linear

    def test_alpha_out_of_domain_rejected(self):
        with pytest.raises(ValueError):
            DPF(domain_bits=4, seed=1).gen(16)

    def test_zero_beta_rejected(self):
        with pytest.raises(ValueError):
            DPF(domain_bits=4, seed=1).gen(3, beta=0)

    def test_beta_too_wide_rejected(self):
        with pytest.raises(ValueError):
            DPF(domain_bits=4, output_bits=4, seed=1).gen(3, beta=16)

    def test_invalid_output_bits_rejected(self):
        with pytest.raises(ValueError):
            DPF(domain_bits=4, output_bits=65)


class TestPointEval:
    @pytest.mark.parametrize("alpha", [0, 1, 100, 255])
    def test_xor_of_shares_is_point_function(self, alpha):
        dpf = DPF(domain_bits=8, seed=7)
        key0, key1 = dpf.gen(alpha, 1)
        for x in (0, alpha, 255, (alpha + 1) % 256):
            combined = dpf.eval(key0, x) ^ dpf.eval(key1, x)
            assert combined == (1 if x == alpha else 0)

    def test_point_out_of_domain_rejected(self):
        dpf = DPF(domain_bits=4, seed=1)
        key0, _ = dpf.gen(3)
        with pytest.raises(ValueError):
            dpf.eval(key0, 16)

    def test_eval_points_batch(self):
        dpf = DPF(domain_bits=6, seed=2)
        key0, _ = dpf.gen(9)
        values = dpf.eval_points(key0, [0, 9, 63])
        full = dpf.eval_full(key0)
        assert values[0] == full[0] and values[1] == full[9] and values[2] == full[63]

    def test_mismatched_key_rejected(self):
        dpf_a = DPF(domain_bits=4, seed=1)
        dpf_b = DPF(domain_bits=6, seed=1)
        key0, _ = dpf_a.gen(2)
        with pytest.raises(KeyMismatchError):
            dpf_b.eval(key0, 1)


class TestFullDomainEval:
    def test_verify_keys_helper(self):
        dpf = DPF(domain_bits=10, seed=5)
        key0, key1 = dpf.gen(517, 1)
        assert verify_keys(dpf, key0, key1, 517, 1)

    def test_full_eval_truncation(self):
        dpf = DPF(domain_bits=7, seed=3)
        key0, _ = dpf.gen(12)
        assert dpf.eval_full(key0, num_points=100).shape == (100,)

    def test_full_eval_matches_point_eval(self):
        dpf = DPF(domain_bits=8, seed=11)
        key0, _ = dpf.gen(200)
        full = dpf.eval_full(key0)
        for x in (0, 1, 37, 200, 255):
            assert full[x] == dpf.eval(key0, x)

    def test_bits_helper_returns_uint8(self):
        dpf = DPF(domain_bits=6, seed=4)
        key0, key1 = dpf.gen(10)
        bits = dpf.eval_full_bits(key0) ^ dpf.eval_full_bits(key1)
        assert bits.dtype == np.uint8
        assert bits.sum() == 1 and bits[10] == 1

    def test_bits_helper_rejects_wide_output(self):
        dpf = DPF(domain_bits=6, output_bits=8, seed=4)
        key0, _ = dpf.gen(10, beta=5)
        with pytest.raises(KeyMismatchError):
            dpf.eval_full_bits(key0)

    def test_stats_accumulation(self):
        dpf = DPF(domain_bits=8, seed=1)
        key0, _ = dpf.gen(7)
        stats = EvalStats()
        dpf.eval_full(key0, stats=stats)
        assert stats.leaves_evaluated == 256
        assert stats.prg_expansions == 255  # level-by-level: one per internal node
        assert stats.aes_block_equivalents == 2 * 255
        assert stats.peak_nodes_in_memory == 256

    def test_domain_bits_zero(self):
        dpf = DPF(domain_bits=0, seed=1)
        key0, key1 = dpf.gen(0, 1)
        assert (dpf.eval(key0, 0) ^ dpf.eval(key1, 0)) == 1


class TestPayloads:
    @pytest.mark.parametrize("output_bits,beta", [(8, 0xAB), (32, 0xDEADBEEF), (64, (1 << 63) + 5)])
    def test_wide_payloads(self, output_bits, beta):
        dpf = DPF(domain_bits=7, output_bits=output_bits, seed=9)
        alpha = 66
        key0, key1 = dpf.gen(alpha, beta)
        combined = dpf.eval_full(key0) ^ dpf.eval_full(key1)
        assert int(combined[alpha]) == beta
        assert np.count_nonzero(combined) == 1


class TestAESBackedDPF:
    def test_correctness_with_real_aes(self):
        dpf = DPF(domain_bits=5, prg=make_prg("aes"), seed=21)
        alpha = 19
        key0, key1 = dpf.gen(alpha, 1)
        combined = dpf.eval_full(key0) ^ dpf.eval_full(key1)
        expected = np.zeros(32, dtype=np.uint64)
        expected[alpha] = 1
        assert np.array_equal(combined, expected)


class TestKeyValidation:
    def test_key_rejects_wrong_seed_length(self):
        with pytest.raises(ValueError):
            DPFKey(
                party=0,
                domain_bits=0,
                root_seed=b"short",
                correction_words=(),
                final_correction=0,
            )

    def test_key_rejects_bad_party(self):
        with pytest.raises(ValueError):
            DPFKey(
                party=2,
                domain_bits=0,
                root_seed=bytes(16),
                correction_words=(),
                final_correction=0,
            )

    def test_key_rejects_wrong_correction_count(self):
        with pytest.raises(ValueError):
            DPFKey(
                party=0,
                domain_bits=3,
                root_seed=bytes(16),
                correction_words=(),
                final_correction=0,
            )
