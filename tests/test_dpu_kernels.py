"""DPU execution: tasklets, kernel launches, and the dpXOR kernel."""

import numpy as np
import pytest

from repro.common.errors import KernelError
from repro.pim.config import DPUConfig
from repro.pim.dpu import DPU
from repro.pim.kernels import DB_BUFFER, RESULT_BUFFER, SELECTOR_BUFFER, DpXorKernel, MramFillKernel
from repro.pim.tasklet import TaskletGroup
from repro.pir.xor_ops import dpxor


@pytest.fixture()
def loaded_dpu():
    """A DPU with a 128-record x 16-byte database block and a selector in MRAM."""
    rng = np.random.default_rng(5)
    database = rng.integers(0, 256, size=(128, 16), dtype=np.uint8)
    selector = rng.integers(0, 2, size=128, dtype=np.uint8)
    dpu = DPU(dpu_id=0, config=DPUConfig(tasklets=4))
    dpu.store(DB_BUFFER, database.reshape(-1))
    dpu.store(SELECTOR_BUFFER, np.packbits(selector, bitorder="big"))
    return dpu, database, selector


class TestTaskletGroup:
    def test_partition_covers_range(self):
        group = TaskletGroup(num_tasklets=4)
        ranges = group.partition(10)
        assert ranges[0] == (0, 3)
        assert ranges[-1][1] == 10
        covered = sum(stop - start for start, stop in ranges)
        assert covered == 10

    def test_partition_with_idle_tasklets(self):
        group = TaskletGroup(num_tasklets=8)
        ranges = group.partition(3)
        non_empty = [r for r in ranges if r[1] > r[0]]
        assert len(non_empty) == 3

    def test_partition_zero_items(self):
        assert all(start == stop for start, stop in TaskletGroup(4).partition(0))

    def test_rejects_zero_tasklets(self):
        with pytest.raises(KernelError):
            TaskletGroup(num_tasklets=0)

    def test_charge_record_accounting(self):
        group = TaskletGroup(num_tasklets=1)
        report = group.reports[0]
        report.charge_record(record_size=32, selected=True, overhead=10, per_word=6)
        report.charge_record(record_size=32, selected=False, overhead=10, per_word=6)
        assert report.records_processed == 2
        assert report.records_selected == 1
        assert report.instructions == 10 + 4 * 6 + 10
        assert group.total_dma_bytes == report.dma_bytes


class TestDPU:
    def test_store_and_load(self):
        dpu = DPU(0)
        data = np.arange(100, dtype=np.uint8)
        dpu.store("x", data)
        assert np.array_equal(dpu.load("x"), data)

    def test_program_loading_enforced(self):
        dpu = DPU(0)
        dpu.load_program("other-kernel")
        with pytest.raises(KernelError):
            dpu.launch(MramFillKernel(), buffer="x", size_bytes=8)

    def test_launch_advances_busy_time(self):
        dpu = DPU(0)
        dpu.load_program("mram-fill")
        report = dpu.launch(MramFillKernel(), buffer="x", size_bytes=1024, value=7)
        assert report.simulated_seconds > 0
        assert dpu.busy_seconds == pytest.approx(report.simulated_seconds)
        assert dpu.launches == 1
        assert np.array_equal(dpu.load("x"), np.full(1024, 7, dtype=np.uint8))

    def test_negative_id_rejected(self):
        with pytest.raises(KernelError):
            DPU(-1)


class TestDpXorKernel:
    def test_matches_reference_dpxor(self, loaded_dpu):
        dpu, database, selector = loaded_dpu
        report = dpu.launch(DpXorKernel(), num_records=128, record_size=16)
        assert np.array_equal(report.result, dpxor(database, selector))
        assert np.array_equal(dpu.load(RESULT_BUFFER), dpxor(database, selector))

    def test_report_accounting(self, loaded_dpu):
        dpu, database, selector = loaded_dpu
        report = dpu.launch(DpXorKernel(), num_records=128, record_size=16)
        assert report.kernel_name == "dpxor"
        assert report.tasklets_used == 4
        assert report.details["records"] == 128
        assert report.details["records_selected"] == int(selector.sum())
        assert report.instructions > 0
        assert report.dma_bytes >= 128 * 16
        assert report.simulated_seconds > 0

    def test_all_zero_selector(self):
        dpu = DPU(0, config=DPUConfig(tasklets=2))
        database = np.ones((16, 8), dtype=np.uint8)
        dpu.store(DB_BUFFER, database.reshape(-1))
        dpu.store(SELECTOR_BUFFER, np.packbits(np.zeros(16, dtype=np.uint8)))
        report = dpu.launch(DpXorKernel(), num_records=16, record_size=8)
        assert np.array_equal(report.result, np.zeros(8, dtype=np.uint8))

    def test_empty_block(self):
        dpu = DPU(0)
        report = dpu.launch(DpXorKernel(), num_records=0, record_size=8)
        assert np.array_equal(report.result, np.zeros(8, dtype=np.uint8))
        assert report.instructions == 0

    def test_tasklet_count_override(self, loaded_dpu):
        dpu, database, selector = loaded_dpu
        one = dpu.launch(DpXorKernel(), num_records=128, record_size=16, tasklets=1)
        many = dpu.launch(DpXorKernel(), num_records=128, record_size=16, tasklets=16)
        assert np.array_equal(one.result, many.result)
        # More tasklets -> better pipeline utilisation -> faster kernel.
        assert many.simulated_seconds < one.simulated_seconds

    def test_rejects_too_many_tasklets(self, loaded_dpu):
        dpu, _, _ = loaded_dpu
        with pytest.raises(KernelError):
            dpu.launch(DpXorKernel(), num_records=128, record_size=16, tasklets=32)

    def test_rejects_negative_records(self, loaded_dpu):
        dpu, _, _ = loaded_dpu
        with pytest.raises(KernelError):
            dpu.launch(DpXorKernel(), num_records=-1, record_size=16)

    def test_varied_record_sizes(self):
        rng = np.random.default_rng(9)
        for record_size in (8, 24, 32, 64):
            database = rng.integers(0, 256, size=(64, record_size), dtype=np.uint8)
            selector = rng.integers(0, 2, size=64, dtype=np.uint8)
            dpu = DPU(0, config=DPUConfig(tasklets=3))
            dpu.store(DB_BUFFER, database.reshape(-1))
            dpu.store(SELECTOR_BUFFER, np.packbits(selector, bitorder="big"))
            report = dpu.launch(DpXorKernel(), num_records=64, record_size=record_size)
            assert np.array_equal(report.result, dpxor(database, selector))


class TestMramFillKernel:
    def test_rejects_bad_value(self):
        dpu = DPU(0)
        with pytest.raises(KernelError):
            dpu.launch(MramFillKernel(), buffer="x", size_bytes=8, value=300)

    def test_rejects_zero_size(self):
        dpu = DPU(0)
        with pytest.raises(KernelError):
            dpu.launch(MramFillKernel(), buffer="x", size_bytes=0)
