"""The PR 7 observability layer: events, metrics, tracing, and the hub."""

import io
import json

import pytest

from repro.common.errors import ConfigurationError
from repro.common.events import PhaseTimer
from repro.obs import (
    EventLog,
    JsonlSink,
    MetricsRegistry,
    ObservabilityHub,
    RingBufferSink,
    Span,
    Tracer,
)
from repro.obs.tracing import KIND_CACHE, KIND_PHASE, KIND_SERVER, KIND_SHARD
from repro.pir.frontend import FlushObservation, ResultDetail


class _RaisingSink:
    def __init__(self):
        self.calls = 0

    def emit(self, event):
        self.calls += 1
        raise RuntimeError("exporter down")


class TestEventLog:
    def test_no_sinks_is_a_disabled_no_op(self):
        log = EventLog()
        assert not log.enabled
        assert log.emit("anything", now=1.0, key="value") is None
        assert log.events_emitted == 0
        # Not even the clock moves through emit's disabled fast path.
        assert log.now == 0.0

    def test_emit_stamps_clock_and_sequence(self):
        ring = RingBufferSink()
        log = EventLog([ring])
        first = log.emit("a", now=2.0)
        second = log.emit("b")  # no clock of its own: inherits the last instant
        third = log.emit("c", now=1.0)  # stale clock never rewinds the stamp
        assert [event.seq for event in (first, second, third)] == [0, 1, 2]
        assert [event.now for event in (first, second, third)] == [2.0, 2.0, 2.0]
        assert log.events_emitted == 3
        assert ring.named("b") == [second]

    def test_advance_is_a_monotonic_max(self):
        log = EventLog([RingBufferSink()])
        log.advance(5.0)
        log.advance(3.0)
        assert log.now == 5.0

    def test_sink_fault_is_counted_and_other_sinks_still_fed(self):
        ring = RingBufferSink()
        raising = _RaisingSink()
        log = EventLog([raising, ring])
        log.emit("x", now=0.5)
        log.emit("y")
        assert log.dropped == 2
        assert isinstance(log.last_error, RuntimeError)
        assert raising.calls == 2
        assert [event.name for event in ring.events()] == ["x", "y"]

    def test_event_fields_render_json_safe(self):
        class Exotic:
            def __repr__(self):
                return "Exotic()"

        log = EventLog([RingBufferSink()])
        event = log.emit("mixed", pairs=[(1, 2)], nested={"k": Exotic()}, flag=True)
        payload = event.as_dict()
        json.dumps(payload)  # must not raise
        assert payload["pairs"] == [[1, 2]]
        assert payload["nested"] == {"k": "Exotic()"}
        assert payload["flag"] is True


class TestRingBufferSink:
    def test_capacity_bounds_retention(self):
        ring = RingBufferSink(capacity=3)
        log = EventLog([ring])
        for i in range(5):
            log.emit("tick", i=i)
        assert len(ring) == 3
        assert [event.fields["i"] for event in ring.events()] == [2, 3, 4]
        assert ring.counts() == {"tick": 3}

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_handle_gets_one_complete_line_per_event(self):
        handle = io.StringIO()
        sink = JsonlSink(handle)
        log = EventLog([sink])
        log.emit("first", now=0.25, index=7)
        log.emit("second")
        lines = [json.loads(line) for line in handle.getvalue().splitlines()]
        assert sink.lines_written == 2
        assert [line["name"] for line in lines] == ["first", "second"]
        assert lines[0]["index"] == 7 and lines[0]["now"] == 0.25

    def test_path_mode_owns_and_closes_the_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        EventLog([sink]).emit("only", now=1.0)
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1 and json.loads(lines[0])["name"] == "only"

    def test_max_bytes_rotates_once_and_bounds_the_disk(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path), max_bytes=200)
        log = EventLog([sink])
        for i in range(50):
            log.emit("tick", now=float(i), i=i)
        sink.close()
        assert sink.rotations >= 2  # re-rotations overwrite the same .1 file
        rotated = tmp_path / "events.jsonl.1"
        assert rotated.exists()
        for file in (path, rotated):
            content = file.read_text()
            assert len(content.encode()) <= 200
            for line in content.splitlines():
                json.loads(line)  # every line survives rotation complete
        # Nothing beyond the live file and the single rotation target.
        assert sorted(f.name for f in tmp_path.iterdir()) == [
            "events.jsonl", "events.jsonl.1",
        ]

    def test_oversize_single_line_is_still_written_whole(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path), max_bytes=10)
        log = EventLog([sink])
        log.emit("first", now=0.0, payload="x" * 100)
        assert sink.rotations == 0  # an empty file never rotates
        log.emit("second", now=1.0)
        sink.close()
        assert sink.rotations == 1
        assert json.loads((tmp_path / "events.jsonl.1").read_text())["payload"]

    def test_append_mode_counts_preexisting_bytes_against_the_bound(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"name": "old"}\n')
        sink = JsonlSink(str(path), max_bytes=20)
        assert sink.bytes_written == len('{"name": "old"}\n')
        EventLog([sink]).emit("fresh", now=0.0)
        sink.close()
        assert sink.rotations == 1  # the old content already spent the budget

    def test_max_bytes_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JsonlSink(str(tmp_path / "e.jsonl"), max_bytes=0)
        with pytest.raises(ConfigurationError):
            JsonlSink(io.StringIO(), max_bytes=100)  # handles cannot rotate


class TestMetrics:
    def test_counter_semantics(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_things_total", "things", ("kind",))
        counter.inc(kind="a")
        counter.inc(2, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3.0
        assert counter.total() == 4.0
        with pytest.raises(ConfigurationError):
            counter.inc(-1, kind="a")
        with pytest.raises(ConfigurationError):
            counter.inc(wrong_label="a")

    def test_gauge_set_replaces(self):
        gauge = MetricsRegistry().gauge("repro_level")
        gauge.set(7)
        gauge.set(3)
        gauge.inc(1)
        assert gauge.value() == 4.0

    def test_histogram_cumulative_buckets(self):
        hist = MetricsRegistry().histogram("repro_lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.05)
        assert snap["buckets"] == {0.1: 1, 1.0: 3, 10.0: 4}

    def test_histogram_quantile_interpolates_within_buckets(self):
        hist = MetricsRegistry().histogram("repro_q", buckets=(1.0, 2.0, 4.0))
        hist.observe(0.5)
        hist.observe(3.0)
        # target 0.5*2 = 1: the whole first bucket -> 0 + (1-0)*1/1.
        assert hist.quantile(0.5) == pytest.approx(1.0)
        # target 1.98 lands in (2, 4]: 2 + 2 * (1.98-1)/1.
        assert hist.quantile(0.99) == pytest.approx(3.96)

    def test_histogram_quantile_edge_ranks(self):
        hist = MetricsRegistry().histogram("repro_q2", buckets=(1.0, 2.0))
        hist.observe(1.5)
        # Rank 0 in a leading empty bucket resolves to its lower bound.
        assert hist.quantile(0.0) == 0.0
        # Observations above every bound live in +Inf: the estimate clamps
        # to the highest finite bound.
        hist.observe(50.0)
        assert hist.quantile(1.0) == 2.0

    def test_histogram_quantile_validation(self):
        hist = MetricsRegistry().histogram("repro_q3", buckets=(1.0,))
        with pytest.raises(ConfigurationError):
            hist.quantile(1.5)
        with pytest.raises(ConfigurationError):
            hist.quantile(0.5)  # no observations yet

    def test_bad_buckets_and_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("repro_h", buckets=())
        with pytest.raises(ConfigurationError):
            registry.histogram("repro_h2", buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            registry.counter("0starts-with-digit")

    def test_registry_is_idempotent_but_rejects_conflicts(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", "x", ("kind",))
        assert registry.counter("repro_x_total", "x", ("kind",)) is first
        with pytest.raises(ConfigurationError):
            registry.counter("repro_x_total", "x", ("other",))  # label mismatch
        with pytest.raises(ConfigurationError):
            registry.gauge("repro_x_total")  # kind mismatch

    def test_render_is_prometheus_shaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_empty_total", "never incremented")
        labeled = registry.counter("repro_hits_total", "hits", ("shard",))
        labeled.inc(shard="2")
        hist = registry.histogram("repro_s", "seconds", buckets=(1.0,))
        hist.observe(0.5)
        text = registry.render()
        assert "# TYPE repro_empty_total counter" in text
        assert "repro_empty_total 0" in text  # unlabeled empties expose a zero
        assert 'repro_hits_total{shard="2"} 1' in text
        assert 'repro_s_bucket{le="1"} 1' in text
        assert 'repro_s_bucket{le="+Inf"} 1' in text
        assert "repro_s_sum 0.5" in text and "repro_s_count 1" in text

    def test_as_dict_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total").inc(3)
        snapshot = registry.as_dict()
        json.dumps(snapshot)
        assert snapshot["repro_a_total"]["samples"][0]["value"] == 3.0


class TestTracing:
    def test_add_phases_is_float_exact_against_phase_timer(self):
        timer = PhaseTimer()
        # Values chosen to make float addition order-sensitive: only the
        # same left-to-right fold lands on the same float.
        for phase, seconds in (("a", 0.1), ("b", 0.2), ("c", 0.3), ("d", 1e-9)):
            timer.record(phase, seconds)
        span = Span("server", kind=KIND_SERVER)
        span.add_phases(timer)
        assert span.seconds == timer.total
        assert [leaf.name for leaf in span.find(KIND_PHASE)] == ["a", "b", "c", "d"]
        assert span.phase_total() == timer.total

    def test_children_do_not_sum_into_the_parent(self):
        root = Span("request")
        child = root.child("server", kind=KIND_SERVER)
        child.seconds = 5.0
        assert root.seconds == 0.0

    def test_start_trace_is_get_or_create(self):
        tracer = Tracer()
        first = tracer.start_trace("req-1", "retrieve[3]", now=1.0)
        again = tracer.start_trace("req-1", "ignored", now=9.0)
        assert again is first
        assert tracer.get("req-1") is first
        assert first.started_now == 1.0

    def test_max_traces_evicts_oldest(self):
        tracer = Tracer(max_traces=2)
        for i in range(4):
            tracer.start_trace(f"req-{i}", "r", now=float(i))
        assert [trace.trace_id for trace in tracer.traces()] == ["req-2", "req-3"]
        assert tracer.traces_evicted == 2

    def test_slowest_orders_by_root_seconds(self):
        tracer = Tracer()
        for i, seconds in enumerate((0.2, 0.9, 0.1)):
            tracer.start_trace(f"req-{i}", "r").root.seconds = seconds
        assert [t.trace_id for t in tracer.slowest(2)] == ["req-1", "req-0"]

    def test_shard_side_channel_pops_once_sorted(self):
        tracer = Tracer()
        breakdown = PhaseTimer()
        tracer.record_shard_scan(breakdown, 2, {"dpxor": 0.2})
        timer = PhaseTimer()
        timer.record("dpxor", 0.1)
        tracer.record_shard_scan(breakdown, 0, timer)
        scans = tracer.pop_shard_scans(breakdown)
        assert scans == [(0, {"dpxor": 0.1}), (2, {"dpxor": 0.2})]
        assert tracer.pop_shard_scans(breakdown) == []  # popped, not peeked

    def test_side_channel_misses_return_empty(self):
        tracer = Tracer()
        assert tracer.pop_shard_scans(PhaseTimer()) == []

    def test_side_channel_is_bounded(self):
        tracer = Tracer(max_scan_entries=2)
        keep = [PhaseTimer() for _ in range(3)]  # keep all alive: distinct ids
        for i, breakdown in enumerate(keep):
            tracer.record_shard_scan(breakdown, i, {"p": 1.0})
        assert tracer.pop_shard_scans(keep[0]) == []  # oldest entry evicted
        assert tracer.pop_shard_scans(keep[2]) == [(2, {"p": 1.0})]

    def test_bounds_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Tracer(max_traces=0)
        with pytest.raises(ConfigurationError):
            Tracer(max_scan_entries=0)


def _observation(**overrides):
    base = dict(
        reason="size",
        now=1.0,
        batch=((1, 10),),
        scanned=(),
        cached_indices=frozenset(),
        cache_hits=0,
        deduped=0,
        makespans=(),
        details={},
    )
    base.update(overrides)
    return FlushObservation(**base)


class _FakeReplica:
    def __init__(self):
        self.engine = type("Engine", (), {"events": None})()
        self.instrumented = []
        backend = self

        class _Backend:
            @staticmethod
            def instrument(events=None, tracer=None):
                backend.instrumented.append((events, tracer))

        self.backend = _Backend()


class _FakeFrontend:
    def __init__(self, replicas=()):
        self.observers = []
        self.replicas = list(replicas)


class TestObservabilityHub:
    def test_events_fold_into_metrics(self):
        hub = ObservabilityHub()
        hub.events.emit("shard.scan", shard=3, seconds=0.01)
        hub.events.emit("shard.scan", shard=3, seconds=0.02)
        hub.events.emit(
            "rebalance.pass", splits=1, merges=0, migrations=2, plan_version=7
        )
        hub.events.emit("cache.admit", index=5)
        hub.events.emit("cache.invalidate", dropped=4)
        registry = hub.registry
        assert registry.get("repro_shard_scans_total").value(shard="3") == 2.0
        assert registry.get("repro_shard_scan_seconds").count() == 2
        assert registry.get("repro_rebalance_passes_total").value() == 1.0
        assert registry.get("repro_rebalance_migrations_total").value() == 2.0
        assert registry.get("repro_topology_version").value() == 7.0
        assert registry.get("repro_cache_admissions_total").value() == 1.0
        assert registry.get("repro_cache_invalidations_total").value() == 4.0
        assert hub.events.dropped == 0

    def test_observe_flush_emits_and_counts(self):
        hub = ObservabilityHub()
        hub.observe_flush(
            _observation(batch=((1, 10), (2, 10)), cache_hits=1, deduped=1)
        )
        (event,) = hub.ring.named("frontend.flush")
        assert event.fields["requests"] == 2
        assert hub.registry.get("repro_requests_total").value() == 2.0
        assert hub.registry.get("repro_cache_hits_total").value() == 1.0
        assert hub.registry.get("repro_dedup_suppressed_total").value() == 1.0
        assert hub.registry.get("repro_flushes_total").value(reason="size") == 1.0

    def test_scanned_request_gets_the_full_pipeline_tree(self):
        hub = ObservabilityHub()
        slow, fast = PhaseTimer(), PhaseTimer()
        for phase, seconds in (("host_eval", 0.1), ("dpxor", 0.3)):
            slow.record(phase, seconds)
        fast.record("dpxor", 0.05)
        hub.tracer.record_shard_scan(slow, 1, {"dpxor": 0.3})
        hub.observe_flush(
            _observation(
                scanned=((7, 42, ((0, 0), (1, 1))),),
                batch=((7, 42),),
                details={
                    (0, 0): ResultDetail(breakdown=slow, simulated_seconds=slow.total),
                    (1, 1): ResultDetail(breakdown=fast, simulated_seconds=fast.total),
                },
            )
        )
        trace = hub.tracer.get("req-7")
        assert trace is not None and trace.root.name == "retrieve[42]"
        servers = trace.root.find(KIND_SERVER)
        assert len(servers) == 2
        by_id = {span.labels["server_id"]: span for span in servers}
        assert by_id[0].seconds == slow.total  # float-exact
        assert by_id[0].labels["engine_seconds"] == slow.total
        (shard,) = by_id[0].find(KIND_SHARD)
        assert shard.labels["shard"] == 1 and shard.seconds == 0.3
        assert by_id[1].seconds == fast.total
        # Replicas run in parallel: the request costs its slowest server.
        assert trace.root.seconds == slow.total

    def test_breakdown_less_server_still_gets_a_total(self):
        hub = ObservabilityHub()
        hub.observe_flush(
            _observation(
                scanned=((3, 8, ((0, 0),)),),
                batch=((3, 8),),
                details={
                    (0, 0): ResultDetail(breakdown=None, simulated_seconds=0.125)
                },
            )
        )
        (server,) = hub.tracer.get("req-3").root.find(KIND_SERVER)
        assert server.seconds == 0.125
        assert not server.find(KIND_PHASE)

    def test_cache_hits_and_dedup_followers_get_marker_traces(self):
        hub = ObservabilityHub()
        hub.observe_flush(
            _observation(
                batch=((1, 10), (2, 11)),
                cached_indices=frozenset({10}),
                cache_hits=1,
                deduped=1,
            )
        )
        (hit,) = hub.tracer.get("req-1").root.find(KIND_CACHE)
        (follower,) = hub.tracer.get("req-2").root.find(KIND_CACHE)
        assert hit.name == "cache-hit"
        assert follower.name == "dedup-follower"
        assert hub.tracer.get("req-1").total_seconds == 0.0

    def test_attach_wires_replicas_idempotently(self):
        hub = ObservabilityHub()
        replica = _FakeReplica()
        frontend = _FakeFrontend([replica])
        assert hub.attach(frontend) is frontend
        hub.attach(frontend)
        assert frontend.observers == [hub]  # appended once
        assert replica.engine.events is hub.events
        assert replica.instrumented == [
            (hub.events, hub.tracer),
            (hub.events, hub.tracer),
        ]

    def test_report_sections(self):
        hub = ObservabilityHub()
        hub.observe_flush(_observation())
        text = hub.report(top_n=2)
        assert "== events ==" in text
        assert "frontend.flush" in text
        assert "== metrics ==" in text
        assert "repro_requests_total 1" in text
        assert "== slowest traces (top 2) ==" in text
        assert "retrieve[10]" in text

    def test_jsonl_export_through_the_hub(self, tmp_path):
        path = tmp_path / "hub.jsonl"
        hub = ObservabilityHub(jsonl_path=str(path))
        hub.observe_flush(_observation())
        hub.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == hub.events.events_emitted == 1
        assert lines[0]["name"] == "frontend.flush"
