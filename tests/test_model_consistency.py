"""Functional/analytic duality: the simulator and the estimators agree.

DESIGN.md's central claim is that the functional simulation (real buffers,
small databases) and the analytic estimators (paper-scale parameters) share
the same cost formulas.  These tests run both paths on the *same* small
configuration and require the simulated phase durations to match.
"""

import pytest

from repro.bench.estimators import IMPIREstimator
from repro.core.config import IMPIRConfig
from repro.core.impir import IMPIRServer
from repro.core.results import (
    PHASE_AGGREGATE,
    PHASE_COPY_IN,
    PHASE_COPY_OUT,
    PHASE_DPXOR,
    PHASE_EVAL,
)
from repro.cpu.cpu_pir import CPUPIRServer
from repro.dpf.prf import make_prg
from repro.pim.config import scaled_down_config
from repro.pir.client import PIRClient
from repro.pir.database import Database
from repro.workloads.generator import DatabaseSpec


@pytest.fixture(scope="module")
def setting():
    database = Database.random(4096, 32, seed=500)
    config = IMPIRConfig(pim=scaled_down_config(num_dpus=8, tasklets=16))
    spec = DatabaseSpec(num_records=database.num_records, record_size=database.record_size)
    return database, config, spec


class TestIMPIRDuality:
    def test_single_query_phase_agreement(self, setting):
        """Functional run vs analytic estimate: every phase within 20%."""
        database, config, spec = setting
        server = IMPIRServer(database, config=config, server_id=0)
        client = PIRClient(database.num_records, database.record_size, seed=1, prg=make_prg("numpy"))
        functional = server.answer(client.query(123)[0]).breakdown

        analytic = IMPIREstimator(config).query_breakdown(spec)

        for phase in (PHASE_EVAL, PHASE_COPY_IN, PHASE_DPXOR, PHASE_COPY_OUT, PHASE_AGGREGATE):
            measured = functional.get(phase)
            predicted = analytic.get(phase)
            assert measured > 0 and predicted > 0
            assert measured == pytest.approx(predicted, rel=0.20), phase

    def test_total_latency_agreement(self, setting):
        database, config, spec = setting
        server = IMPIRServer(database, config=config, server_id=0)
        client = PIRClient(database.num_records, database.record_size, seed=2, prg=make_prg("numpy"))
        functional_total = server.answer(client.query(7)[0]).latency_seconds
        analytic_total = IMPIREstimator(config).query_breakdown(spec).total
        assert functional_total == pytest.approx(analytic_total, rel=0.15)

    def test_batch_makespan_agreement(self, setting):
        database, config, spec = setting
        server = IMPIRServer(database, config=config, server_id=0)
        client = PIRClient(database.num_records, database.record_size, seed=3, prg=make_prg("numpy"))
        queries = [client.query(i * 11)[0] for i in range(8)]
        functional = server.answer_batch(queries)
        analytic = IMPIREstimator(config).batch_estimate(spec, 8)
        assert functional.latency_seconds == pytest.approx(analytic.latency_seconds, rel=0.20)
        assert functional.throughput_qps == pytest.approx(analytic.throughput_qps, rel=0.25)


class TestCPUDuality:
    def test_single_query_breakdown_agreement(self, setting):
        database, _, spec = setting
        server = CPUPIRServer(database, server_id=0, prg=make_prg("numpy"))
        client = PIRClient(database.num_records, database.record_size, seed=4, prg=make_prg("numpy"))
        functional = server.answer_with_breakdown(client.query(50)[0]).breakdown
        analytic = server.estimate_breakdown(spec.num_records, spec.record_size)
        assert functional.total == pytest.approx(analytic.total, rel=1e-9)

    def test_batch_estimate_agreement(self, setting):
        database, _, spec = setting
        server = CPUPIRServer(database, server_id=0, prg=make_prg("numpy"))
        client = PIRClient(database.num_records, database.record_size, seed=5, prg=make_prg("numpy"))
        queries = [client.query(i)[0] for i in range(4)]
        functional = server.answer_batch(queries)
        analytic = server.estimate_batch(spec.num_records, spec.record_size, 4)
        assert functional.latency_seconds == pytest.approx(analytic.latency_seconds, rel=1e-9)


class TestSelectorFractionEffect:
    def test_selected_fraction_shifts_kernel_time_slightly(self, setting):
        """The functional kernel uses the query's actual selected fraction, the
        estimator assumes 1/2 — the residual gap must stay small because DPF
        shares are balanced."""
        database, config, spec = setting
        server = IMPIRServer(database, config=config, server_id=0)
        client = PIRClient(database.num_records, database.record_size, seed=6, prg=make_prg("numpy"))
        analytic_dpxor = IMPIREstimator(config).query_breakdown(spec).get(PHASE_DPXOR)
        for index in (0, 2048, 4095):
            functional_dpxor = server.answer(client.query(index)[0]).breakdown.get(PHASE_DPXOR)
            assert functional_dpxor == pytest.approx(analytic_dpxor, rel=0.10)
