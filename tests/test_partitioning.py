"""Database/selector partitioning across DPUs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import CapacityError, ConfigurationError
from repro.common.units import MIB
from repro.core.partitioning import (
    DatabasePartitioner,
    fold_partials,
    kwargs_for_kernel,
)
from repro.pir.database import Database


@pytest.fixture()
def partitioner(small_db):
    return DatabasePartitioner(small_db)


class TestLayout:
    def test_layout_covers_database(self, partitioner, small_db):
        layout = partitioner.layout(7)
        assert layout.validate_coverage()
        assert layout.num_dpus == 7
        assert layout.num_records == small_db.num_records

    def test_max_records_per_dpu_is_ceiling(self, partitioner, small_db):
        layout = partitioner.layout(7)
        assert layout.max_records_per_dpu == -(-small_db.num_records // 7)

    def test_records_and_bytes_on_dpu(self, partitioner, small_db):
        layout = partitioner.layout(4)
        assert layout.records_on_dpu(0) == 256
        assert layout.bytes_on_dpu(0) == 256 * small_db.record_size

    def test_more_dpus_than_records(self):
        db = Database.random(3, 8, seed=1)
        layout = DatabasePartitioner(db).layout(8)
        assert layout.validate_coverage()
        assert sum(layout.records_on_dpu(i) for i in range(8)) == 3

    def test_zero_dpus_rejected(self, partitioner):
        with pytest.raises(ConfigurationError):
            partitioner.layout(0)


class TestCapacity:
    def test_fits_in_paper_mram(self, partitioner):
        layout = partitioner.layout(4)
        partitioner.check_capacity(layout, mram_bytes_per_dpu=64 * MIB)

    def test_overflow_detected(self, partitioner):
        layout = partitioner.layout(1)
        with pytest.raises(CapacityError):
            partitioner.check_capacity(layout, mram_bytes_per_dpu=1024)


class TestChunks:
    def test_database_chunks_reassemble(self, partitioner, small_db):
        layout = partitioner.layout(5)
        chunks = partitioner.database_chunks(layout)
        rebuilt = np.concatenate(chunks).reshape(small_db.num_records, small_db.record_size)
        assert np.array_equal(rebuilt, small_db.records)

    def test_selector_chunks_pack_bits(self, partitioner, small_db):
        layout = partitioner.layout(5)
        selector = np.random.default_rng(0).integers(0, 2, small_db.num_records, dtype=np.uint8)
        chunks = partitioner.selector_chunks(layout, selector)
        assert len(chunks) == 5
        rebuilt = np.concatenate(
            [
                np.unpackbits(chunk, bitorder="big")[: stop - start]
                for chunk, (start, stop) in zip(chunks, layout.bounds)
            ]
        )
        assert np.array_equal(rebuilt, selector)

    def test_selector_length_mismatch_rejected(self, partitioner):
        layout = partitioner.layout(2)
        with pytest.raises(ConfigurationError):
            partitioner.selector_chunks(layout, np.zeros(10, dtype=np.uint8))

    def test_packed_selector_bytes(self, partitioner):
        layout = partitioner.layout(4)
        total = partitioner.packed_selector_bytes(layout)
        assert total == 4 * (256 // 8)

    def test_kwargs_for_kernel(self, partitioner, small_db):
        layout = partitioner.layout(3)
        kwargs = kwargs_for_kernel(layout)
        assert len(kwargs) == 3
        assert all(kw["record_size"] == small_db.record_size for kw in kwargs)
        assert sum(kw["num_records"] for kw in kwargs) == small_db.num_records


class TestFoldPartials:
    def test_fold_matches_xor(self):
        parts = [np.array([1, 2, 3], dtype=np.uint8), np.array([3, 2, 1], dtype=np.uint8)]
        assert np.array_equal(fold_partials(parts, 3), np.array([2, 0, 2], dtype=np.uint8))

    def test_fold_rejects_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            fold_partials([np.zeros(4, dtype=np.uint8)], 3)

    @pytest.mark.parametrize("record_size", [1, 3, 7, 8, 16, 24])
    def test_fold_word_and_byte_paths_agree(self, record_size):
        # Word-aligned sizes take the uint64 fast path, odd sizes the uint8
        # fallback; both must equal the plain per-byte XOR.
        rng = np.random.default_rng(13)
        parts = [
            rng.integers(0, 256, size=record_size, dtype=np.uint8)
            for _ in range(4)
        ]
        expected = np.zeros(record_size, dtype=np.uint8)
        for part in parts:
            expected ^= part
        assert np.array_equal(fold_partials(parts, record_size), expected)


class TestPartitioningProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        num_records=st.integers(min_value=1, max_value=2000),
        num_dpus=st.integers(min_value=1, max_value=64),
    )
    def test_layout_tiles_exactly(self, num_records, num_dpus):
        db = Database.zeros(num_records, 4)
        layout = DatabasePartitioner(db).layout(num_dpus)
        assert layout.validate_coverage()
        sizes = [layout.records_on_dpu(i) for i in range(num_dpus)]
        assert sum(sizes) == num_records
        assert max(sizes) - min(sizes) <= 1
