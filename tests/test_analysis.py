"""Analysis helpers: roofline, breakdown tables, sweep metrics."""

import pytest

from repro.analysis.breakdown import BreakdownTable, compare_fraction_tables
from repro.analysis.metrics import (
    SweepSeries,
    compute_speedup,
    format_series_table,
    geometric_mean,
)
from repro.analysis.roofline import (
    KernelCharacteristics,
    RooflineModel,
    dpf_eval_characteristics,
    dpxor_characteristics,
    key_gen_characteristics,
)
from repro.common.errors import ConfigurationError
from repro.common.events import PhaseTimer
from repro.common.units import GIB


class TestRoofline:
    @pytest.fixture()
    def roofline(self):
        return RooflineModel(peak_gops=500.0, memory_bandwidth_gbps=75.0)

    def test_ridge_point(self, roofline):
        assert roofline.ridge_point == pytest.approx(500.0 / 75.0)

    def test_attainable_performance_two_regimes(self, roofline):
        assert roofline.attainable_gops(0.1) == pytest.approx(7.5)
        assert roofline.attainable_gops(100.0) == pytest.approx(500.0)

    def test_memory_bound_classification(self, roofline):
        assert roofline.is_memory_bound(0.1)
        assert not roofline.is_memory_bound(100.0)

    def test_dpxor_is_memory_bound(self, roofline):
        """The paper's Fig. 3(b): dpXOR has very low operational intensity."""
        kernel = dpxor_characteristics(GIB, 32)
        assert kernel.operational_intensity < 1.0
        assert roofline.place(kernel).memory_bound

    def test_eval_intensity_higher_than_dpxor(self):
        dpxor = dpxor_characteristics(GIB, 32)
        eval_kernel = dpf_eval_characteristics(GIB // 32)
        gen_kernel = key_gen_characteristics(25)
        assert dpxor.operational_intensity < eval_kernel.operational_intensity
        assert eval_kernel.operational_intensity < gen_kernel.operational_intensity

    def test_place_all(self, roofline):
        points = roofline.place_all([dpxor_characteristics(GIB, 32), dpf_eval_characteristics(1 << 25)])
        assert len(points) == 2
        assert all(p.attainable_gops > 0 for p in points)

    def test_ceiling_series_monotone(self, roofline):
        series = roofline.ceiling_series([0.01, 0.1, 1.0, 10.0, 100.0])
        assert series == sorted(series)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            RooflineModel(0, 10)
        with pytest.raises(ConfigurationError):
            KernelCharacteristics("x", -1, 10)
        with pytest.raises(ConfigurationError):
            dpxor_characteristics(0)


class TestBreakdownTable:
    def test_rows_and_fractions(self):
        table = BreakdownTable(["eval", "dpxor"])
        timer = PhaseTimer()
        timer.record("eval", 1.0)
        timer.record("dpxor", 3.0)
        row = table.add_row("1 GB", timer)
        assert row.total == pytest.approx(4.0)
        assert row.fractions()["dpxor"] == pytest.approx(0.75)

    def test_missing_phase_counts_as_zero(self):
        table = BreakdownTable(["eval", "dpxor", "copy"])
        row = table.add_row("x", {"eval": 2.0})
        assert row.phases["copy"] == 0.0

    def test_average_fractions(self):
        table = BreakdownTable(["a", "b"])
        table.add_row("r1", {"a": 1.0, "b": 1.0})
        table.add_row("r2", {"a": 3.0, "b": 1.0})
        average = table.average_fractions()
        assert average["a"] == pytest.approx((0.5 + 0.75) / 2)
        assert sum(average.values()) == pytest.approx(1.0)

    def test_totals_order(self):
        table = BreakdownTable(["a"])
        table.add_row("r1", {"a": 1.0})
        table.add_row("r2", {"a": 2.0})
        assert table.totals() == [1.0, 2.0]

    def test_text_rendering(self):
        table = BreakdownTable(["a", "b"])
        table.add_row("1 GB", {"a": 0.001, "b": 0.002})
        text = table.to_text()
        assert "1 GB" in text and "total" in text
        assert "a=" in table.fractions_to_text() or "%" in table.fractions_to_text()

    def test_empty_phase_order_rejected(self):
        with pytest.raises(ConfigurationError):
            BreakdownTable([])

    def test_compare_fraction_tables(self):
        diff = compare_fraction_tables({"a": 0.7, "b": 0.3}, {"a": 0.75, "b": 0.25})
        assert diff["a"] == pytest.approx(5.0)
        assert diff["b"] == pytest.approx(5.0)


class TestSweepSeries:
    def _series(self, name, values):
        series = SweepSeries(name, "db_size_gib")
        for x, (latency, throughput) in values.items():
            series.add(x, latency, throughput)
        return series

    def test_accessors(self):
        series = self._series("A", {1.0: (0.5, 64.0), 2.0: (1.0, 32.0)})
        assert series.xs == [1.0, 2.0]
        assert series.latencies == [0.5, 1.0]
        assert series.throughputs == [64.0, 32.0]
        assert series.point_at(2.0).throughput_qps == pytest.approx(32.0)

    def test_point_at_missing_x(self):
        series = self._series("A", {1.0: (0.5, 64.0)})
        with pytest.raises(KeyError):
            series.point_at(3.0)

    def test_speedup_report(self):
        fast = self._series("IM-PIR", {1.0: (0.5, 100.0), 8.0: (2.0, 16.0)})
        slow = self._series("CPU-PIR", {1.0: (1.0, 50.0), 8.0: (8.0, 4.0)})
        report = compute_speedup(fast, slow)
        assert report.throughput_speedups[1.0] == pytest.approx(2.0)
        assert report.throughput_speedups[8.0] == pytest.approx(4.0)
        assert report.max_throughput_speedup == pytest.approx(4.0)
        assert report.min_throughput_speedup == pytest.approx(2.0)
        assert report.latency_speedups[8.0] == pytest.approx(4.0)
        assert 2.0 < report.mean_throughput_speedup < 4.0

    def test_speedup_requires_same_axis(self):
        a = SweepSeries("A", "db_size_gib")
        b = SweepSeries("B", "batch_size")
        with pytest.raises(ConfigurationError):
            compute_speedup(a, b)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_format_series_table(self):
        series = self._series("A", {1.0: (0.5, 64.0)})
        text = format_series_table([series])
        assert "A" in text and "64" in text
