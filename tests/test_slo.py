"""The SLO layer: streaming digests, burn-rate alerting, the flight recorder.

The digest tests pin the accuracy contract documented on
:class:`LatencyDigest`: bit-exact agreement with ``numpy.percentile`` while
the stream fits the centroid budget, and a bounded *rank* error (about
``200 / max_centroids`` percentile points) on adversarial large streams —
constant, bimodal, heavy-tail, and sorted insertion orders.  The engine
tests drive the full alert lifecycle on a simulated clock; the recorder
tests pin bundle schema, determinism, and boundedness.
"""

import bisect
import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.obs import (
    INCIDENT_SCHEMA,
    BurnRateRule,
    EventLog,
    FlightRecorder,
    HealthSignal,
    LatencyDigest,
    MetricsRegistry,
    ObservabilityHub,
    RingBufferSink,
    SloEngine,
    SloObjective,
    SloPolicy,
    WindowedDigest,
    default_rules,
    validate_bundle,
)

QS = (0.0, 0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)


def rank_error(values, q, estimate):
    """Distance (in rank fraction) from ``q`` to the estimate's rank span.

    An estimate equal to a repeated value covers a whole span of ranks
    (a constant stream covers all of them), so the error is the distance
    from ``q`` to the nearest rank the estimate could legitimately hold.
    """
    data = sorted(values)
    n = len(data)
    lo = bisect.bisect_left(data, estimate)
    hi = bisect.bisect_right(data, estimate)
    denominator = max(n - 1, 1)
    lo_q = lo / denominator
    hi_q = max(hi - 1, lo) / denominator
    if lo_q <= q <= hi_q:
        return 0.0
    return min(abs(q - lo_q), abs(q - hi_q))


def fill(values, max_centroids=64):
    digest = LatencyDigest(max_centroids)
    for value in values:
        digest.add(value)
    return digest


class TestLatencyDigestExact:
    """n <= max_centroids: the digest IS numpy linear interpolation."""

    @pytest.mark.parametrize("n", [1, 2, 3, 10, 63, 64])
    def test_matches_numpy_for_small_streams(self, n):
        rng = np.random.default_rng(n)
        values = rng.uniform(0.0, 1.0, size=n)
        digest = fill(values)
        for q in QS:
            expected = float(np.percentile(values, q * 100, method="linear"))
            assert digest.quantile(q) == pytest.approx(expected, abs=1e-12)

    @settings(deadline=None, max_examples=60)
    @given(
        st.lists(
            st.floats(
                min_value=-1e6,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=64,
        ),
        st.sampled_from(QS),
    )
    def test_property_small_stream_exactness(self, values, q):
        digest = fill(values)
        expected = float(np.percentile(values, q * 100, method="linear"))
        assert digest.quantile(q) == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_weighted_add_equals_repeated_add(self):
        weighted = LatencyDigest()
        weighted.add(0.25, count=3)
        weighted.add(0.75, count=2)
        repeated = fill([0.25, 0.25, 0.25, 0.75, 0.75])
        for q in QS:
            assert weighted.quantile(q) == pytest.approx(repeated.quantile(q))


def adversarial_streams():
    rng = np.random.default_rng(7)
    uniform = rng.uniform(0.0, 1.0, size=5000)
    return {
        "constant": np.full(5000, 0.25),
        "uniform": uniform,
        "ascending": np.sort(uniform),
        "descending": np.sort(uniform)[::-1],
        "bimodal": rng.choice([0.001, 1.0], size=5000, p=[0.9, 0.1]),
        "heavy-tail": 1.0 + rng.pareto(1.5, size=5000),
        "tiny-n-heavy": 1.0 + np.random.default_rng(8).pareto(1.5, size=80),
    }


class TestLatencyDigestLargeStreams:
    @pytest.mark.parametrize("name", sorted(adversarial_streams()))
    def test_rank_error_is_bounded(self, name):
        values = adversarial_streams()[name]
        digest = fill(values)
        bound = 200.0 / digest.max_centroids / 100.0  # rank fraction
        for q in QS:
            err = rank_error(values, q, digest.quantile(q))
            assert err <= bound + 1e-9, f"{name} q={q}: rank error {err:.4f}"

    @pytest.mark.parametrize("name", sorted(adversarial_streams()))
    def test_min_max_are_always_exact(self, name):
        values = adversarial_streams()[name]
        digest = fill(values)
        assert digest.quantile(0.0) == float(np.min(values))
        assert digest.quantile(1.0) == float(np.max(values))

    def test_quantile_is_monotone_in_q(self):
        digest = fill(adversarial_streams()["heavy-tail"])
        estimates = [digest.quantile(q) for q in QS]
        assert estimates == sorted(estimates)

    def test_merge_preserves_count_and_bounds(self):
        values = adversarial_streams()["bimodal"]
        merged = LatencyDigest()
        for chunk in np.array_split(values, 10):
            part = fill(chunk)
            merged.merge(part)
        assert merged.count == len(values)
        bound = 200.0 / merged.max_centroids / 100.0
        for q in QS:
            # Two rounds of compression (chunk + merge) at most double the
            # centroid-resolution error.
            err = rank_error(values, q, merged.quantile(q))
            assert err <= 2 * bound + 1e-9

    def test_state_stays_bounded(self):
        digest = fill(np.random.default_rng(3).uniform(size=20000))
        digest.quantile(0.5)  # forces a buffer flush
        assert len(digest._means) <= digest.max_centroids
        assert digest._buffer == []


class TestLatencyDigestErrors:
    def test_quantile_out_of_range(self):
        digest = fill([1.0])
        with pytest.raises(ConfigurationError):
            digest.quantile(-0.1)
        with pytest.raises(ConfigurationError):
            digest.quantile(1.1)

    def test_empty_digest_has_no_quantiles(self):
        with pytest.raises(ConfigurationError):
            LatencyDigest().quantile(0.5)
        assert LatencyDigest().as_dict() == {"count": 0}

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyDigest().add(1.0, count=0)

    def test_tiny_centroid_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyDigest(max_centroids=4)

    def test_as_dict_reports_headline_quantiles(self):
        snapshot = fill([0.001, 0.002, 0.003]).as_dict()
        assert snapshot["count"] == 3
        assert snapshot["min"] == 0.001 and snapshot["max"] == 0.003
        assert set(snapshot) == {"count", "min", "max", "p50", "p95", "p99"}


class TestWindowedDigest:
    def test_window_selects_recent_buckets_only(self):
        windowed = WindowedDigest(bucket_seconds=1.0, horizon_seconds=20.0)
        windowed.observe(1.0, now=0.5)
        windowed.observe(2.0, now=10.5)
        assert windowed.quantile(0.5, window_seconds=1.0, now=10.5) == 2.0
        assert windowed.quantile(0.5, window_seconds=15.0, now=10.5) == 1.5

    def test_old_buckets_are_pruned(self):
        windowed = WindowedDigest(bucket_seconds=1.0, horizon_seconds=2.0)
        windowed.observe(1.0, now=0.0)
        windowed.observe(2.0, now=100.0)
        assert len(windowed._buckets) == 1

    def test_empty_window_is_none(self):
        windowed = WindowedDigest(bucket_seconds=1.0, horizon_seconds=4.0)
        assert windowed.quantile(0.5, window_seconds=1.0, now=0.0) is None
        windowed.observe(1.0, now=0.0)
        assert windowed.quantile(0.5, window_seconds=1.0, now=50.0) is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WindowedDigest(bucket_seconds=0.0, horizon_seconds=1.0)
        with pytest.raises(ConfigurationError):
            WindowedDigest(bucket_seconds=2.0, horizon_seconds=1.0)
        windowed = WindowedDigest(bucket_seconds=1.0, horizon_seconds=2.0)
        with pytest.raises(ConfigurationError):
            windowed.digest(window_seconds=0.0, now=0.0)


class TestObjectivesAndRules:
    def test_availability_objective_ignores_latency(self):
        objective = SloObjective("avail", target=0.999)
        assert objective.budget == pytest.approx(0.001)
        assert not objective.is_bad(100.0, ok=True)
        assert objective.is_bad(0.0, ok=False)
        assert "availability" in objective.describe()

    def test_latency_objective_counts_slow_and_failed(self):
        objective = SloObjective("lat", target=0.95, latency_threshold_seconds=0.01)
        assert not objective.is_bad(0.01, ok=True)  # at threshold: good
        assert objective.is_bad(0.011, ok=True)
        assert objective.is_bad(0.0, ok=False)
        assert "0.01s" in objective.describe()

    def test_objective_validation(self):
        with pytest.raises(ConfigurationError):
            SloObjective("", target=0.5)
        with pytest.raises(ConfigurationError):
            SloObjective("x", target=1.0)
        with pytest.raises(ConfigurationError):
            SloObjective("x", target=0.0)
        with pytest.raises(ConfigurationError):
            SloObjective("x", target=0.5, latency_threshold_seconds=0.0)

    def test_rule_validation(self):
        with pytest.raises(ConfigurationError):
            BurnRateRule("", 1.0, 0.5, 2.0)
        with pytest.raises(ConfigurationError):
            BurnRateRule("x", 1.0, 1.0, 2.0)  # short must be < long
        with pytest.raises(ConfigurationError):
            BurnRateRule("x", 0.0, -1.0, 2.0)
        with pytest.raises(ConfigurationError):
            BurnRateRule("x", 1.0, 0.5, 0.0)

    def test_default_rules_are_the_fast_slow_pair(self):
        fast, slow = default_rules()
        assert fast.escalate and not slow.escalate
        assert fast.burn_threshold > slow.burn_threshold
        assert fast.long_window_seconds < slow.long_window_seconds

    def test_policy_validation(self):
        objective = SloObjective("lat", 0.9, latency_threshold_seconds=0.01)
        with pytest.raises(ConfigurationError):
            SloPolicy(objectives=())
        with pytest.raises(ConfigurationError):
            SloPolicy(objectives=(objective,), rules=())
        with pytest.raises(ConfigurationError):
            # Buckets coarser than the shortest alert window cannot resolve it.
            SloPolicy(objectives=(objective,), bucket_seconds=0.5)
        with pytest.raises(ConfigurationError):
            SloPolicy(objectives=(objective, objective))  # duplicate names

    def test_policy_horizon_covers_the_longest_window(self):
        policy = SloPolicy(
            objectives=(SloObjective("lat", 0.9, latency_threshold_seconds=0.01),),
            digest_window_seconds=2.0,
        )
        longest = max(rule.long_window_seconds for rule in policy.rules)
        assert policy.horizon_seconds == longest + policy.bucket_seconds


def make_policy():
    return SloPolicy(
        objectives=(
            SloObjective("lat", target=0.9, latency_threshold_seconds=0.01),
            SloObjective("avail", target=0.99),
        ),
        rules=(
            BurnRateRule("fast", 1.0, 0.25, burn_threshold=8.0, escalate=True),
            BurnRateRule("slow", 4.0, 1.0, burn_threshold=2.0),
        ),
        bucket_seconds=0.05,
        digest_window_seconds=1.0,
    )


def feed(engine, start, stop, latency, step=0.02, ok=True):
    now = start
    while now < stop:
        engine.record_request(latency, now, ok=ok)
        now += step
    return now


class TestSloEngine:
    def test_healthy_traffic_never_alerts(self):
        engine = SloEngine(make_policy())
        feed(engine, 0.0, 2.0, latency=0.001)
        assert engine.evaluate(2.0) == []
        health = engine.health()
        assert not health.burning and not health.fast_burn and health.active == ()
        assert engine.budget_remaining("lat", 1.0, 2.0) == pytest.approx(1.0)

    def test_alert_fires_on_sustained_burn_and_resolves_on_recovery(self):
        ring = RingBufferSink()
        engine = SloEngine(make_policy(), events=EventLog([ring]))
        feed(engine, 0.0, 1.0, latency=0.001)
        assert engine.evaluate(1.0) == []

        # Every request breaches the 10ms threshold: burn = 1/0.1 = 10x.
        feed(engine, 1.0, 2.0, latency=0.05)
        changed = engine.evaluate(2.0)
        severities = {(a.objective, a.severity) for a in changed}
        assert ("lat", "fast") in severities
        assert engine.burn_rate("lat", 0.25, 2.0) == pytest.approx(10.0)
        assert engine.budget_remaining("lat", 0.25, 2.0) == 0.0
        health = engine.health()
        assert health.burning and health.fast_burn
        assert "lat/fast" in health.active
        # Availability saw only good requests: it never fires.
        assert all(alert.objective == "lat" for alert in engine.active.values())

        feed(engine, 2.0, 4.0, latency=0.001)
        engine.evaluate(3.0)
        engine.evaluate(4.0)
        assert engine.active == {}
        assert all(alert.resolved_at is not None for alert in engine.history)
        health = engine.health()
        assert not health.burning and not health.fast_burn

        states = [event.fields["state"] for event in ring.named("slo.alert")]
        assert states.count("fired") == len(engine.history)
        assert states.count("resolved") == len(engine.history)
        fired = ring.named("slo.alert")[0]
        assert {"objective", "severity", "burn_rate", "threshold", "escalate"} <= set(
            fired.fields
        )

    def test_short_window_alone_does_not_fire(self):
        """A brief blip breaches the short window but not the long one."""
        engine = SloEngine(make_policy())
        feed(engine, 0.0, 1.0, latency=0.001)
        feed(engine, 1.0, 1.25, latency=0.05)  # one short-window of badness
        assert engine.burn_rate("lat", 0.25, 1.25) >= 8.0
        assert engine.burn_rate("lat", 1.0, 1.25) < 8.0
        changed = engine.evaluate(1.25)
        assert all(alert.severity != "fast" for alert in changed)
        assert ("lat", "fast") not in engine.active

    def test_record_failure_burns_the_availability_budget(self):
        engine = SloEngine(make_policy())
        for step in range(10):
            engine.record_failure(now=step * 0.02)
        assert engine.failures == 10
        # budget 0.01, all bad: burn 100x.
        assert engine.burn_rate("avail", 1.0, 0.2) == pytest.approx(100.0)
        assert engine.burn_rate("lat", 1.0, 0.2) == pytest.approx(10.0)

    def test_empty_window_burns_nothing(self):
        engine = SloEngine(make_policy())
        assert engine.burn_rate("lat", 1.0, 0.0) == 0.0
        with pytest.raises(ConfigurationError):
            engine.burn_rate("nope", 1.0, 0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            SloEngine(make_policy()).record_request(-0.001, now=0.0)

    def test_rolling_quantile_tracks_the_window(self):
        engine = SloEngine(make_policy())
        feed(engine, 0.0, 1.0, latency=0.001)
        feed(engine, 1.0, 2.0, latency=0.05)
        # digest_window_seconds=1.0: only the slow second remains.
        assert engine.quantile(0.5) == pytest.approx(0.05)
        assert engine.quantile(0.5, window_seconds=10.0, now=2.0) < 0.05

    def test_fire_captures_an_incident_bundle(self):
        engine = SloEngine(make_policy())
        recorder = FlightRecorder()
        recorder.bind(slo=engine)
        engine.recorder = recorder
        feed(engine, 0.0, 2.0, latency=0.05)
        engine.evaluate(2.0)
        assert recorder.incidents
        triggers = {bundle["trigger"] for bundle in recorder.incidents}
        assert any(trigger.startswith("slo.alert:lat/") for trigger in triggers)
        for bundle in recorder.incidents:
            validate_bundle(bundle)

    def test_as_dict_is_deterministic_and_sorted(self):
        def build():
            engine = SloEngine(make_policy())
            feed(engine, 0.0, 2.0, latency=0.05)
            engine.evaluate(2.0)
            return engine.as_dict(2.0)

        first, second = build(), build()
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
        names = [objective["name"] for objective in first["objectives"]]
        assert names == sorted(names)
        assert first["active_alerts"]  # the fired alerts are in the snapshot

    def test_describe_reports_burn_and_alert_tally(self):
        engine = SloEngine(make_policy())
        feed(engine, 0.0, 2.0, latency=0.05)
        engine.evaluate(2.0)
        text = "\n".join(engine.describe())
        assert "burn" in text and "alerts fired=" in text
        assert "[fast]" in text

    def test_health_signal_healthy_constructor(self):
        signal = HealthSignal.healthy(3.0)
        assert signal.now == 3.0
        assert not signal.burning and not signal.fast_burn and signal.active == ()


class TestFlightRecorder:
    def make_log(self, recorder):
        return EventLog([recorder])

    def test_retention_is_bounded_and_oldest_first(self):
        recorder = FlightRecorder(capacity=4)
        log = self.make_log(recorder)
        for i in range(10):
            log.emit("tick", now=float(i), i=i)
        recent = recorder.recent_events()
        assert len(recent) == 4
        assert [row["i"] for row in recent] == [6, 7, 8, 9]
        assert recorder.events_seen == 10

    def test_topology_version_tracks_the_event_stream(self):
        recorder = FlightRecorder()
        log = self.make_log(recorder)
        assert recorder.topology_version == 0
        log.emit("topology.applied", now=1.0, version=3)
        assert recorder.topology_version == 3
        log.emit("rebalance.pass", now=2.0, plan_version=5)
        assert recorder.topology_version == 5
        log.emit("topology.applied", now=3.0, version="not-an-int")
        assert recorder.topology_version == 5

    def test_snapshot_is_schema_valid_and_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("demo_total").inc(3)
            engine = SloEngine(make_policy())
            feed(engine, 0.0, 1.0, latency=0.001)
            recorder = FlightRecorder()
            recorder.bind(registry=registry, slo=engine)
            log = self.make_log(recorder)
            log.emit("tick", now=0.5, i=1)
            return recorder.snapshot("manual", now=1.0)

        first, second = build(), build()
        validate_bundle(first)
        assert first["schema"] == INCIDENT_SCHEMA
        assert first["metrics"] is not None and first["slo"] is not None
        assert FlightRecorder.dump(first) == FlightRecorder.dump(second)

    def test_incidents_are_bounded(self):
        recorder = FlightRecorder(max_incidents=2)
        for i in range(3):
            recorder.record_incident(f"t{i}", now=float(i))
        assert [bundle["trigger"] for bundle in recorder.incidents] == ["t1", "t2"]

    def test_dump_to_writes_canonical_json(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record_incident("manual", now=1.0)
        path = tmp_path / "incident.json"
        text = recorder.dump_to(str(path))
        assert json.loads(path.read_text()) == json.loads(text)
        assert ": " not in text  # canonical separators, no whitespace drift

    def test_dump_to_without_incidents_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FlightRecorder().dump_to(str(tmp_path / "x.json"))

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            FlightRecorder(capacity=0)
        with pytest.raises(ConfigurationError):
            FlightRecorder(max_incidents=0)

    def test_describe_lists_incidents(self):
        recorder = FlightRecorder()
        recorder.record_incident("manual", now=1.0)
        text = "\n".join(recorder.describe())
        assert "incidents recorded 1" in text and "trigger=manual" in text


class TestValidateBundle:
    def good(self):
        return FlightRecorder().snapshot("manual", now=1.0)

    def test_rejects_non_dicts_and_missing_keys(self):
        with pytest.raises(ConfigurationError):
            validate_bundle([])
        for key in ("schema", "trigger", "now", "topology_version",
                    "active_alerts", "events"):
            bundle = self.good()
            del bundle[key]
            with pytest.raises(ConfigurationError, match=key):
                validate_bundle(bundle)

    def test_rejects_wrong_types_and_stale_schema(self):
        bundle = self.good()
        bundle["topology_version"] = "three"
        with pytest.raises(ConfigurationError):
            validate_bundle(bundle)
        bundle = self.good()
        bundle["schema"] = "repro.incident/0"
        with pytest.raises(ConfigurationError, match="schema"):
            validate_bundle(bundle)

    def test_rejects_malformed_rows(self):
        bundle = self.good()
        bundle["events"] = [{"name": "tick"}]  # missing seq/now
        with pytest.raises(ConfigurationError, match="name/seq/now"):
            validate_bundle(bundle)
        bundle = self.good()
        bundle["active_alerts"] = [{"objective": "lat"}]  # missing severity
        with pytest.raises(ConfigurationError, match="objective/severity"):
            validate_bundle(bundle)

    def test_rejects_json_unsafe_payloads(self):
        bundle = self.good()
        bundle["metrics"] = {"weird": {1, 2}}
        with pytest.raises(ConfigurationError, match="JSON-safe"):
            validate_bundle(bundle)


class TestHubWiring:
    def test_hub_builds_and_binds_the_slo_stack(self):
        hub = ObservabilityHub(slo=make_policy())
        assert isinstance(hub.slo, SloEngine)
        assert hub.slo.recorder is hub.recorder
        assert hub.recorder.slo is hub.slo
        assert hub.recorder.registry is hub.registry
        for family in (
            "repro_request_latency_seconds",
            "repro_slo_alerts_total",
            "repro_slo_burning",
        ):
            assert hub.registry.get(family) is not None

    def test_hub_without_slo_has_only_the_recorder(self):
        hub = ObservabilityHub()
        assert hub.slo is None
        assert hub.recorder is not None
        assert hub.recorder.slo is None

    def test_alert_events_fold_into_metrics(self):
        hub = ObservabilityHub(slo=make_policy())
        engine = hub.slo
        feed(engine, 0.0, 2.0, latency=0.05)
        engine.evaluate(2.0)
        counter = hub.registry.get("repro_slo_alerts_total")
        assert counter.total() >= 1
        assert hub.registry.get("repro_slo_burning").value() >= 1.0
        feed(engine, 2.0, 4.0, latency=0.001)
        engine.evaluate(4.0)
        assert hub.registry.get("repro_slo_burning").value() == 0.0

    def test_report_renders_slo_and_recorder_sections(self):
        hub = ObservabilityHub(slo=make_policy())
        feed(hub.slo, 0.0, 1.0, latency=0.001)
        text = hub.report()
        assert "== slo ==" in text
        assert "== flight recorder ==" in text
        assert "no active alerts" in text
